"""Tree-walking evaluator for the XQuery subset (+ XQUF + XRPC).

This is the "Saxon-style" execution engine of the reproduction: a direct
interpreter over the AST.  The loop-lifted relational backend
(:mod:`repro.pathfinder`) compiles a subset of the same AST to algebra
plans; both produce identical XDM results.

``execute at`` is evaluated through ``ctx.xrpc_handler`` — the paper's
"stub code" boundary: the evaluator builds a
:class:`~repro.xquery.context.RemoteCall` and the RPC layer does SOAP
marshaling, networking and unmarshaling.
"""

from __future__ import annotations

import math
from decimal import Decimal
from typing import Callable, Optional

from repro.errors import DynamicError, StaticError, TypeError_, UpdateError
from repro.xdm.atomic import (
    AtomicValue,
    boolean,
    cast,
    cast_by_name,
    general_compare_pair,
    integer,
    string,
    value_compare,
)
from repro.xdm.atomic import _compare_key  # ordering helper for 'order by'
from repro.xdm.nodes import (
    AttributeNode,
    CommentNode,
    DocumentNode,
    ElementNode,
    Node,
    NodeFactory,
    ProcessingInstructionNode,
    TextNode,
    copy_into,
)
from repro.xdm.sequence import (
    atomize,
    document_order_sort,
    effective_boolean_value,
)
from repro.xdm.structural import (
    _preceding_ranges,
    axis_window_scan,
    split_context,
    structural_index,
    tree_groups,
)
from repro.xdm.types import xs
from repro.xquery import xast as A
from repro.xquery import seqtype
from repro.xquery.context import (
    DynamicContext,
    ExecutionContext,
    RemoteCall,
    StaticContext,
    XS_NS,
)
from repro.xquery.functions import get_builtin
from repro.xquery.modules import ModuleRegistry
from repro.xquery.parser import parse_main_module
from repro.xquf.pul import (
    DeleteNode,
    InsertAfter,
    InsertBefore,
    InsertFirst,
    InsertInto,
    InsertLast,
    PendingUpdateList,
    RenameNode,
    ReplaceNode,
    ReplaceValue,
)

Sequence = list


class Evaluator:
    """Evaluates AST expressions against a dynamic context."""

    def __init__(self) -> None:
        self._dispatch: dict[type, Callable[[A.Expr, DynamicContext], Sequence]] = {
            A.Literal: self._eval_literal,
            A.VarRef: self._eval_var_ref,
            A.ContextItem: self._eval_context_item,
            A.SequenceExpr: self._eval_sequence,
            A.RangeExpr: self._eval_range,
            A.Arithmetic: self._eval_arithmetic,
            A.Unary: self._eval_unary,
            A.Comparison: self._eval_comparison,
            A.Logical: self._eval_logical,
            A.IfExpr: self._eval_if,
            A.FLWOR: self._eval_flwor,
            A.Quantified: self._eval_quantified,
            A.PathExpr: self._eval_path,
            A.FilterExpr: self._eval_filter,
            A.FunctionCall: self._eval_function_call,
            A.ExecuteAt: self._eval_execute_at,
            A.DirectElement: self._eval_direct_element,
            A.ComputedElement: self._eval_computed_element,
            A.ComputedAttribute: self._eval_computed_attribute,
            A.ComputedText: self._eval_computed_text,
            A.ComputedComment: self._eval_computed_comment,
            A.ComputedPI: self._eval_computed_pi,
            A.ComputedDocument: self._eval_computed_document,
            A.CastExpr: self._eval_cast,
            A.CastableExpr: self._eval_castable,
            A.InstanceOf: self._eval_instance_of,
            A.TreatAs: self._eval_treat_as,
            A.TypeSwitch: self._eval_typeswitch,
            A.SetOp: self._eval_set_op,
            A.InsertExpr: self._eval_insert,
            A.DeleteExpr: self._eval_delete,
            A.ReplaceExpr: self._eval_replace,
            A.RenameExpr: self._eval_rename,
        }

    def eval(self, expr: A.Expr, ctx: DynamicContext) -> Sequence:
        handler = self._dispatch.get(type(expr))
        if handler is None:
            raise DynamicError(
                "XPST0003", f"no evaluator for {type(expr).__name__}")
        return handler(expr, ctx)

    # ------------------------------------------------------------------
    # Primaries

    def _eval_literal(self, expr: A.Literal, ctx: DynamicContext) -> Sequence:
        return [expr.value]

    def _eval_var_ref(self, expr: A.VarRef, ctx: DynamicContext) -> Sequence:
        return ctx.variable(expr.name)

    def _eval_context_item(self, expr: A.ContextItem, ctx: DynamicContext) -> Sequence:
        if ctx.focus_item is None:
            raise DynamicError("XPDY0002", "context item is undefined")
        return [ctx.focus_item]

    def _eval_sequence(self, expr: A.SequenceExpr, ctx: DynamicContext) -> Sequence:
        result: Sequence = []
        for item in expr.items:
            result.extend(self.eval(item, ctx))
        return result

    def _eval_range(self, expr: A.RangeExpr, ctx: DynamicContext) -> Sequence:
        start = self._numeric_operand(expr.start, ctx, "range")
        end = self._numeric_operand(expr.end, ctx, "range")
        if start is None or end is None:
            return []
        return [integer(i) for i in range(int(start.value), int(end.value) + 1)]

    def _numeric_operand(self, expr: A.Expr, ctx: DynamicContext,
                         who: str) -> Optional[AtomicValue]:
        values = atomize(self.eval(expr, ctx))
        if not values:
            return None
        if len(values) > 1:
            raise TypeError_("XPTY0004", f"{who}: operand has more than one item")
        value = values[0]
        if value.type is xs.untypedAtomic:
            value = cast(value, xs.double)
        if not value.is_numeric:
            raise TypeError_(
                "XPTY0004", f"{who}: expected numeric, got {value.type.name}")
        return value

    # ------------------------------------------------------------------
    # Arithmetic

    def _eval_arithmetic(self, expr: A.Arithmetic, ctx: DynamicContext) -> Sequence:
        left = self._numeric_operand(expr.left, ctx, expr.op)
        right = self._numeric_operand(expr.right, ctx, expr.op)
        if left is None or right is None:
            return []
        return [_arith(expr.op, left, right)]

    def _eval_unary(self, expr: A.Unary, ctx: DynamicContext) -> Sequence:
        value = self._numeric_operand(expr.operand, ctx, "unary")
        if value is None:
            return []
        if expr.op == "-":
            return [AtomicValue(-value.value, value.type)]
        return [value]

    # ------------------------------------------------------------------
    # Comparisons / logic

    def _eval_comparison(self, expr: A.Comparison, ctx: DynamicContext) -> Sequence:
        if expr.kind == "general":
            left = atomize(self.eval(expr.left, ctx))
            right = atomize(self.eval(expr.right, ctx))
            op = {"=": "eq", "!=": "ne", "<": "lt",
                  "<=": "le", ">": "gt", ">=": "ge"}[expr.op]
            for lv in left:
                for rv in right:
                    if general_compare_pair(lv, op, rv):
                        return [boolean(True)]
            return [boolean(False)]
        if expr.kind == "value":
            left = atomize(self.eval(expr.left, ctx))
            right = atomize(self.eval(expr.right, ctx))
            if not left or not right:
                return []
            if len(left) > 1 or len(right) > 1:
                raise TypeError_(
                    "XPTY0004", "value comparison operand is not a singleton")
            return [boolean(value_compare(left[0], expr.op, right[0]))]
        # node comparison
        left_nodes = self.eval(expr.left, ctx)
        right_nodes = self.eval(expr.right, ctx)
        if not left_nodes or not right_nodes:
            return []
        if len(left_nodes) > 1 or len(right_nodes) > 1 or \
                not isinstance(left_nodes[0], Node) or \
                not isinstance(right_nodes[0], Node):
            raise TypeError_("XPTY0004", "node comparison requires single nodes")
        ln, rn = left_nodes[0], right_nodes[0]
        if expr.op == "is":
            return [boolean(ln is rn)]
        if expr.op == "<<":
            return [boolean(ln.order_key < rn.order_key)]
        return [boolean(ln.order_key > rn.order_key)]

    def _eval_logical(self, expr: A.Logical, ctx: DynamicContext) -> Sequence:
        left = effective_boolean_value(self.eval(expr.left, ctx))
        if expr.op == "and":
            if not left:
                return [boolean(False)]
            return [boolean(effective_boolean_value(self.eval(expr.right, ctx)))]
        if left:
            return [boolean(True)]
        return [boolean(effective_boolean_value(self.eval(expr.right, ctx)))]

    def _eval_if(self, expr: A.IfExpr, ctx: DynamicContext) -> Sequence:
        if effective_boolean_value(self.eval(expr.condition, ctx)):
            return self.eval(expr.then_branch, ctx)
        return self.eval(expr.else_branch, ctx)

    # ------------------------------------------------------------------
    # FLWOR

    def _eval_flwor(self, expr: A.FLWOR, ctx: DynamicContext) -> Sequence:
        tuples = [ctx.child()]
        clauses = expr.clauses
        bound_vars: set[str] = set()
        index = 0
        while index < len(clauses):
            clause = clauses[index]
            if isinstance(clause, A.ForClause):
                following = clauses[index + 1] if index + 1 < len(clauses) else None
                join = None
                if ctx.optimize_joins:
                    join = _match_hash_join(clause, following, bound_vars)
                if join is not None:
                    joined = self._hash_join_expand(clause, join, tuples, ctx)
                    if joined is not None:
                        tuples = joined
                        bound_vars.add(clause.var)
                        if clause.position_var:
                            bound_vars.add(clause.position_var)
                        index += 2  # consumed the where clause too
                        continue
                expanded: list[DynamicContext] = []
                for tup in tuples:
                    source = self.eval(clause.source, tup)
                    for position, item in enumerate(source, start=1):
                        bound = tup.child()
                        bound.variables[clause.var] = [item]
                        if clause.position_var:
                            bound.variables[clause.position_var] = [integer(position)]
                        expanded.append(bound)
                tuples = expanded
                bound_vars.add(clause.var)
                if clause.position_var:
                    bound_vars.add(clause.position_var)
            elif isinstance(clause, A.LetClause):
                rebound: list[DynamicContext] = []
                for tup in tuples:
                    bound = tup.child()
                    bound.variables[clause.var] = self.eval(clause.value, bound)
                    rebound.append(bound)
                tuples = rebound
                bound_vars.add(clause.var)
            elif isinstance(clause, A.WhereClause):
                tuples = [
                    tup for tup in tuples
                    if effective_boolean_value(self.eval(clause.condition, tup))
                ]
            elif isinstance(clause, A.OrderByClause):
                tuples = self._order_tuples(clause, tuples)
            index += 1
        result: Sequence = []
        for tup in tuples:
            result.extend(self.eval(expr.return_expr, tup))
        return result

    def _hash_join_expand(self, clause: A.ForClause, join: "_JoinSpec",
                          tuples: list[DynamicContext],
                          ctx: DynamicContext) -> Optional[list[DynamicContext]]:
        """Hash-join expansion of ``for $v in S where key($v) = probe``.

        Evaluates the loop-invariant source once, builds a hash table on
        the $v-side key, and probes it per upstream tuple — the join
        strategy MonetDB's relational backend uses for this plan shape.
        Returns None (caller falls back to nested-loop semantics) when
        key typing makes a string hash unsound.
        """
        if not tuples:
            return []
        base = tuples[0]
        source = self.eval(clause.source, base)
        table: dict[str, list[tuple[int, object]]] = {}
        for position, item in enumerate(source, start=1):
            scope = base.child()
            scope.variables[clause.var] = [item]
            keys = atomize(self.eval(join.build_expr, scope))
            for key in keys:
                if key.type not in (xs.string, xs.untypedAtomic):
                    return None
                table.setdefault(key.string_value(), []).append(
                    (position, item))
        expanded: list[DynamicContext] = []
        for tup in tuples:
            probes = atomize(self.eval(join.probe_expr, tup))
            if any(p.type not in (xs.string, xs.untypedAtomic)
                   for p in probes):
                return None
            matched: dict[int, object] = {}
            for probe in probes:
                for position, item in table.get(probe.string_value(), ()):
                    matched[position] = item
            for position in sorted(matched):
                bound = tup.child()
                bound.variables[clause.var] = [matched[position]]
                if clause.position_var:
                    bound.variables[clause.position_var] = [integer(position)]
                expanded.append(bound)
        return expanded

    def _order_tuples(self, clause: A.OrderByClause,
                      tuples: list[DynamicContext]) -> list[DynamicContext]:
        decorated = []
        for tup in tuples:
            keys = []
            for spec in clause.specs:
                values = atomize(self.eval(spec.key, tup))
                if len(values) > 1:
                    raise TypeError_(
                        "XPTY0004", "order by key is not a singleton")
                key = values[0] if values else None
                if key is not None and key.type is xs.untypedAtomic:
                    key = cast(key, xs.string)
                keys.append(key)
            decorated.append((keys, tup))

        import functools

        def compare(a, b) -> int:
            for spec, ka, kb in zip(clause.specs, a[0], b[0]):
                if ka is None and kb is None:
                    continue
                if ka is None:
                    ordering = -1 if spec.empty_least else 1
                elif kb is None:
                    ordering = 1 if spec.empty_least else -1
                else:
                    ordering = _compare_key(ka, kb)
                    if ordering == 2:  # NaN involvement: treat as equal
                        ordering = 0
                if spec.descending:
                    ordering = -ordering
                if ordering:
                    return ordering
            return 0

        decorated.sort(key=functools.cmp_to_key(compare))
        return [tup for _, tup in decorated]

    def _eval_quantified(self, expr: A.Quantified, ctx: DynamicContext) -> Sequence:
        def recurse(bindings: list[tuple[str, A.Expr]],
                    scope: DynamicContext) -> bool:
            if not bindings:
                return effective_boolean_value(self.eval(expr.satisfies, scope))
            var, source = bindings[0]
            for item in self.eval(source, scope):
                bound = scope.child()
                bound.variables[var] = [item]
                result = recurse(bindings[1:], bound)
                if expr.kind == "some" and result:
                    return True
                if expr.kind == "every" and not result:
                    return False
            return expr.kind == "every"

        return [boolean(recurse(expr.bindings, ctx))]

    # ------------------------------------------------------------------
    # Paths

    def _eval_path(self, expr: A.PathExpr, ctx: DynamicContext) -> Sequence:
        steps = list(expr.steps)
        if expr.absolute != "none":
            if ctx.focus_item is None or not isinstance(ctx.focus_item, Node):
                raise DynamicError(
                    "XPDY0002", "absolute path requires a node context item")
            current: Sequence = [ctx.focus_item.root()]
            if expr.absolute == "root-descendant":
                steps.insert(0, A.AxisStep("descendant-or-self", A.KindTest("node")))
        elif expr.start is None:
            if ctx.focus_item is None:
                raise DynamicError("XPDY0002", "relative path without context item")
            current = [ctx.focus_item]
        else:
            current = self.eval(expr.start, ctx)
        for step in _fuse_descendant_steps(steps):
            if isinstance(step, A.AxisStep):
                current = self._eval_axis_step(step, current, ctx)
            else:
                current = self._eval_expr_step(step, current, ctx)
        return current

    def _eval_expr_step(self, step: A.Expr, input_sequence: Sequence,
                        ctx: DynamicContext) -> Sequence:
        """E1/E2 where E2 is a primary/filter expression: evaluate E2 with
        each node of E1 as focus; node results are doc-order merged."""
        results: Sequence = []
        size = len(input_sequence)
        for position, item in enumerate(input_sequence, start=1):
            if not isinstance(item, Node):
                raise TypeError_(
                    "XPTY0019", "path step applied to a non-node item")
            focus = ctx.with_focus(item, position, size)
            results.extend(self.eval(step, focus))
        if all(isinstance(r, Node) for r in results):
            return document_order_sort(results)
        if any(isinstance(r, Node) for r in results):
            raise TypeError_(
                "XPTY0018", "path step mixes nodes and atomic values")
        return results

    def _eval_axis_step(self, step: A.AxisStep, input_sequence: Sequence,
                        ctx: DynamicContext) -> Sequence:
        indexed = self._try_indexed_step(step, input_sequence, ctx)
        if indexed is not None:
            return indexed
        for item in input_sequence:
            if not isinstance(item, Node):
                raise TypeError_(
                    "XPTY0019", "path step applied to a non-node item")
        if ctx.accelerator:
            return self._eval_axis_step_accel(step, input_sequence, ctx)
        # Naive reference walkers: per context node, recursive generators
        # plus a document-order sort of the pooled results.
        results: list[Node] = []
        for item in input_sequence:
            candidates = [
                node for node in _axis_nodes(item, step.axis)
                if self._node_test_matches(node, step.node_test, step.axis, ctx)
            ]
            candidates = self._apply_predicates(candidates, step.predicates, ctx)
            results.extend(candidates)
        return document_order_sort(results)

    # -- set-at-a-time axis evaluation (XPath accelerator) -----------------
    #
    # The whole context sequence is mapped through an axis as window scans
    # over the per-tree pre array: ``descendant`` is ``pre in (pre,
    # pre+size]``, ``following`` is ``pre > pre+size``, ``ancestor`` walks
    # parent chains with staircase-style early exit.  Covered context
    # nodes are pruned before scanning, so the window results are
    # duplicate-free and document-ordered *by construction* — no per-step
    # document_order_sort.  Name tests pick the tag-partitioned pre array
    # instead of testing every node.

    def _eval_axis_step_accel(self, step: A.AxisStep, input_sequence: Sequence,
                              ctx: DynamicContext) -> Sequence:
        if not input_sequence:
            return []
        results: list[Node] = []
        for root, members in tree_groups(input_sequence):
            results.extend(self._axis_over_tree(step, root, members, ctx))
        return results

    def _axis_over_tree(self, step: A.AxisStep, root: Node,
                        members: list, ctx: DynamicContext) -> list:
        index = structural_index(root)
        axis = step.axis
        ctx_pres, attr_members = split_context(index, members)

        if step.predicates:
            # Predicates are per-context (position()/last() count within
            # one context node's candidates): evaluate each context over
            # indexed candidate windows, then merge.
            results: list[Node] = []
            ordered_members = [index.nodes[p] for p in ctx_pres] + attr_members
            for node in ordered_members:
                candidates = [
                    n for n in self._axis_candidates(node, axis, index)
                    if self._node_test_matches(n, step.node_test, axis, ctx)
                ]
                results.extend(
                    self._apply_predicates(candidates, step.predicates, ctx))
            return document_order_sort(results)

        return self._axis_windows(step, index, ctx_pres, attr_members, ctx)

    def _axis_windows(self, step: A.AxisStep, index,
                      ctx_pres: list, attr_members: list,
                      ctx: DynamicContext) -> list:
        """Whole-context window scans; results doc-ordered by construction.

        Delegates to the shared staircase core in
        :func:`repro.xdm.structural.axis_window_scan`, with the node test
        bound to this context's namespace environment.
        """
        axis = step.axis
        test = step.node_test
        local = None
        if isinstance(test, A.NameTest) and test.local != "*":
            local = test.local
        match_all = isinstance(test, A.KindTest) and test.kind == "node"
        return axis_window_scan(
            index, axis, ctx_pres, attr_members,
            matches=lambda node: self._node_test_matches(node, test, axis, ctx),
            local_name=local, match_all=match_all)

    def _axis_candidates(self, node: Node, axis: str, index) -> list:
        """Per-context candidates in the reference walkers' order, but
        generated from the structural index where a window scan wins."""
        if axis in ("child", "attribute", "self", "parent",
                    "following-sibling", "preceding-sibling"):
            return _axis_nodes(node, axis)
        if isinstance(node, AttributeNode):
            owner = node.parent
            if axis in ("ancestor", "ancestor-or-self"):
                chain = [] if owner is None else [owner] + list(owner.ancestors())
                return [node] + chain if axis == "ancestor-or-self" else chain
            if axis == "descendant":
                return []
            if axis == "descendant-or-self":
                return [node]
            if owner is None:
                return []
            node = owner  # following/preceding go through the owner
        nodes = index.nodes
        sizes = index.sizes
        p = index.rank_of(node)
        if axis == "descendant":
            return nodes[p + 1:p + sizes[p] + 1]
        if axis == "descendant-or-self":
            return nodes[p:p + sizes[p] + 1]
        if axis in ("ancestor", "ancestor-or-self"):
            chain = list(node.ancestors())
            return [node] + chain if axis == "ancestor-or-self" else chain
        if axis == "following":
            return nodes[p + sizes[p] + 1:]
        if axis == "preceding":
            # Shrunk windows: the ranges between consecutive ancestor
            # ranks, reversed into the axis's nearest-first order.
            return [nodes[q]
                    for q in reversed(_preceding_ranges(index, p, None))]
        raise DynamicError("XPST0003", f"unknown axis {axis}")

    # -- equality-predicate index ------------------------------------------
    #
    # Reproduces the join detection the paper observes in Saxon (section 4,
    # Table 3): a step like ``descendant::person[@id = $pid]`` evaluated
    # repeatedly against the same tree builds a hash index once, turning a
    # per-call selection into a hash-join probe.

    def _try_indexed_step(self, step: A.AxisStep, input_sequence: Sequence,
                          ctx: DynamicContext) -> Optional[Sequence]:
        if len(input_sequence) != 1 or not isinstance(input_sequence[0], Node):
            return None
        if step.axis not in ("child", "descendant") or len(step.predicates) != 1:
            return None
        if not isinstance(step.node_test, A.NameTest) or step.node_test.local == "*":
            return None
        key_path = _indexable_predicate_key_path(step.predicates[0])
        if key_path is None:
            return None
        predicate = step.predicates[0]
        assert isinstance(predicate, A.Comparison)
        probe_values = atomize(self.eval(predicate.right, ctx))
        if not all(v.type in (xs.string, xs.untypedAtomic)
                   for v in probe_values):
            return None
        anchor = input_sequence[0]
        index = self._axis_value_index(anchor, step, key_path, ctx)
        matches: list[Node] = []
        for value in probe_values:
            matches.extend(index.get(value.string_value(), ()))
        return document_order_sort(matches)

    def _axis_value_index(self, anchor: Node, step: A.AxisStep,
                          key_path: tuple, ctx: DynamicContext) -> dict:
        assert isinstance(step.node_test, A.NameTest)
        return axis_value_index(anchor, step.axis, step.node_test, key_path,
                                ctx.static, ctx.constructor_namespaces)

    def _apply_predicates(self, items: Sequence, predicates: list[A.Expr],
                          ctx: DynamicContext) -> Sequence:
        for predicate in predicates:
            size = len(items)
            kept = []
            for position, item in enumerate(items, start=1):
                focus = ctx.with_focus(item, position, size)
                value = self.eval(predicate, focus)
                if len(value) == 1 and isinstance(value[0], AtomicValue) \
                        and value[0].is_numeric:
                    if float(value[0].value) == position:
                        kept.append(item)
                elif effective_boolean_value(value):
                    kept.append(item)
            items = kept
        return items

    def _node_test_matches(self, node: Node, test: A.NodeTest, axis: str,
                           ctx: DynamicContext) -> bool:
        return node_test_matches(node, test, axis, ctx.static,
                                 ctx.constructor_namespaces)

    def _eval_filter(self, expr: A.FilterExpr, ctx: DynamicContext) -> Sequence:
        base = self.eval(expr.base, ctx)
        return self._apply_predicates(base, expr.predicates, ctx)

    # ------------------------------------------------------------------
    # Function calls

    def _eval_function_call(self, expr: A.FunctionCall,
                            ctx: DynamicContext) -> Sequence:
        uri, local = ctx.static.resolve_function_name(expr.name)
        arity = len(expr.args)
        args = [self.eval(arg, ctx) for arg in expr.args]

        builtin = get_builtin(uri, local, arity)
        if builtin is not None:
            return builtin(args, ctx)

        decl = ctx.static.lookup_function(uri, local, arity)
        if decl is None:
            raise StaticError(
                "XPST0017", f"unknown function {expr.name}#{arity}")
        return self.call_user_function(decl, args, ctx)

    def call_user_function(self, decl: A.FunctionDecl, args: list[Sequence],
                           ctx: DynamicContext) -> Sequence:
        """Apply a user-defined function to already-evaluated arguments."""
        if decl.body is None:
            raise DynamicError(
                "XPDY0130", f"external function {decl.name} has no implementation")
        bindings: dict[str, Sequence] = {}
        for param, value in zip(decl.params, args):
            converted = seqtype.convert_value(
                value, param.seq_type, f"{decl.name}(${param.name})")
            bindings[param.name] = converted
        module_static = decl.module.static if decl.module is not None else ctx.static
        body_ctx = ctx.function_scope(module_static, bindings)
        result = self.eval(decl.body, body_ctx)
        if decl.updating:
            return result
        return seqtype.convert_value(
            result, decl.return_type, f"{decl.name}() result")

    # ------------------------------------------------------------------
    # XRPC

    def _eval_execute_at(self, expr: A.ExecuteAt, ctx: DynamicContext) -> Sequence:
        if ctx.xrpc_handler is None:
            raise DynamicError(
                "XRPC0001",
                "execute at: no XRPC handler installed in this context")
        destination_values = atomize(self.eval(expr.destination, ctx))
        if len(destination_values) != 1:
            raise TypeError_(
                "XPTY0004", "execute at: destination must be a single string")
        destination = destination_values[0].string_value()

        uri, local = ctx.static.resolve_function_name(expr.call.name)
        arity = len(expr.call.args)
        decl = ctx.static.lookup_function(uri, local, arity)
        updating = bool(decl is not None and getattr(decl, "updating", False))
        location = ctx.static.module_locations.get(uri)
        args = [self.eval(arg, ctx) for arg in expr.call.args]
        call = RemoteCall(
            destination=destination,
            module_uri=uri,
            location=location,
            function=local,
            arity=arity,
            args=args,
            updating=updating,
        )
        return ctx.xrpc_handler(call)

    # ------------------------------------------------------------------
    # Constructors

    def _eval_direct_element(self, expr: A.DirectElement,
                             ctx: DynamicContext) -> Sequence:
        factory = NodeFactory()
        return [self._build_direct_element(expr, ctx, factory)]

    def _build_direct_element(self, expr: A.DirectElement, ctx: DynamicContext,
                              factory: NodeFactory) -> ElementNode:
        # Constructor-scope namespace declarations (xmlns attributes).
        declarations: dict[str, str] = {}
        for attr_name, parts in expr.attributes:
            if attr_name == "xmlns" or attr_name.startswith("xmlns:"):
                value = "".join(p for p in parts if isinstance(p, str))
                prefix = "" if attr_name == "xmlns" else attr_name.split(":", 1)[1]
                declarations[prefix] = value
        merged = dict(ctx.constructor_namespaces)
        merged.update(declarations)

        content_ctx = ctx.child()
        content_ctx.constructor_namespaces = merged

        ns_uri = self._resolve_constructor_name(expr.name, merged, ctx,
                                                use_default=True)
        element = factory.element(expr.name, ns_uri)
        element.namespace_declarations = declarations

        for attr_name, parts in expr.attributes:
            value = self._attr_value_string(parts, content_ctx)
            if attr_name == "xmlns" or attr_name.startswith("xmlns:"):
                attr_ns: Optional[str] = "http://www.w3.org/2000/xmlns/"
            else:
                attr_ns = self._resolve_constructor_name(
                    attr_name, merged, ctx, use_default=False)
            element.set_attribute(factory.attribute(attr_name, value, attr_ns))

        content_items: Sequence = []
        for part in expr.content:
            if isinstance(part, str):
                content_items.append(_TEXT_MARKER(part))
            else:
                content_items.extend(self.eval(part, content_ctx))
        self._attach_content(element, content_items, factory)
        return element

    def _resolve_constructor_name(self, lexical: str, merged: dict[str, str],
                                  ctx: DynamicContext,
                                  use_default: bool) -> Optional[str]:
        if ":" in lexical:
            prefix = lexical.split(":", 1)[0]
            if prefix in merged:
                return merged[prefix] or None
            return ctx.static.resolve_prefix(prefix)
        if use_default:
            if "" in merged:
                return merged[""] or None
            return ctx.static.default_element_namespace
        return None

    def _attr_value_string(self, parts: list[A.ContentPart],
                           ctx: DynamicContext) -> str:
        pieces: list[str] = []
        for part in parts:
            if isinstance(part, str):
                pieces.append(part)
            else:
                values = atomize(self.eval(part, ctx))
                pieces.append(" ".join(v.string_value() for v in values))
        return "".join(pieces)

    def _attach_content(self, element: ElementNode, items: Sequence,
                        factory: NodeFactory) -> None:
        """Assemble constructor content: space-join adjacent atomics,
        copy nodes, splice documents, lift attribute nodes."""
        buffer: list[str] = []
        last_was_atomic = False
        seen_content = False

        def flush() -> None:
            nonlocal last_was_atomic
            if buffer:
                element.append(factory.text("".join(buffer)))
                buffer.clear()
            last_was_atomic = False

        for item in items:
            if isinstance(item, _TEXT_MARKER):
                buffer.append(item.text)
                last_was_atomic = False
                seen_content = True
            elif isinstance(item, AtomicValue):
                if last_was_atomic:
                    buffer.append(" ")
                buffer.append(item.string_value())
                last_was_atomic = True
                seen_content = True
            elif isinstance(item, AttributeNode):
                if seen_content:
                    raise TypeError_(
                        "XQTY0024",
                        "attribute node follows non-attribute content")
                element.set_attribute(
                    factory.attribute(item.name, item.value, item.ns_uri))
            elif isinstance(item, DocumentNode):
                flush()
                seen_content = True
                for child in item.children:
                    element.append(copy_into(child, factory))
            elif isinstance(item, Node):
                flush()
                seen_content = True
                element.append(copy_into(item, factory))
            else:  # pragma: no cover - defensive
                raise TypeError_("XPTY0004", "unexpected constructor content")
        flush()

    def _eval_computed_element(self, expr: A.ComputedElement,
                               ctx: DynamicContext) -> Sequence:
        name = self._constructor_name(expr.name, ctx)
        factory = NodeFactory()
        ns_uri = self._resolve_constructor_name(
            name, ctx.constructor_namespaces, ctx, use_default=True)
        element = factory.element(name, ns_uri)
        items = self.eval(expr.content, ctx) if expr.content is not None else []
        self._attach_content(element, items, factory)
        return [element]

    def _eval_computed_attribute(self, expr: A.ComputedAttribute,
                                 ctx: DynamicContext) -> Sequence:
        name = self._constructor_name(expr.name, ctx)
        values = atomize(self.eval(expr.content, ctx)) if expr.content else []
        value = " ".join(v.string_value() for v in values)
        return [NodeFactory().attribute(name, value)]

    def _eval_computed_text(self, expr: A.ComputedText,
                            ctx: DynamicContext) -> Sequence:
        values = atomize(self.eval(expr.content, ctx)) if expr.content else []
        if not values and expr.content is not None:
            return []
        return [NodeFactory().text(" ".join(v.string_value() for v in values))]

    def _eval_computed_comment(self, expr: A.ComputedComment,
                               ctx: DynamicContext) -> Sequence:
        values = atomize(self.eval(expr.content, ctx)) if expr.content else []
        return [NodeFactory().comment(" ".join(v.string_value() for v in values))]

    def _eval_computed_pi(self, expr: A.ComputedPI,
                          ctx: DynamicContext) -> Sequence:
        target = self._constructor_name(expr.target, ctx)
        values = atomize(self.eval(expr.content, ctx)) if expr.content else []
        return [NodeFactory().processing_instruction(
            target, " ".join(v.string_value() for v in values))]

    def _eval_computed_document(self, expr: A.ComputedDocument,
                                ctx: DynamicContext) -> Sequence:
        factory = NodeFactory()
        document = factory.document()
        items = self.eval(expr.content, ctx) if expr.content is not None else []
        for item in items:
            if isinstance(item, Node):
                document.append(copy_into(item, factory))
            else:
                document.append(factory.text(item.string_value()))
        return [document]

    def _constructor_name(self, name, ctx: DynamicContext) -> str:
        if isinstance(name, str):
            return name
        values = atomize(self.eval(name, ctx))
        if len(values) != 1:
            raise TypeError_("XPTY0004", "computed constructor name not a singleton")
        return values[0].string_value()

    # ------------------------------------------------------------------
    # Type operators

    def _eval_cast(self, expr: A.CastExpr, ctx: DynamicContext) -> Sequence:
        values = atomize(self.eval(expr.operand, ctx))
        if not values:
            if expr.allow_empty:
                return []
            raise TypeError_("XPTY0004", "cast of empty sequence")
        if len(values) > 1:
            raise TypeError_("XPTY0004", "cast of multi-item sequence")
        return [cast_by_name(values[0], expr.type_name)]

    def _eval_castable(self, expr: A.CastableExpr, ctx: DynamicContext) -> Sequence:
        values = atomize(self.eval(expr.operand, ctx))
        if not values:
            return [boolean(expr.allow_empty)]
        if len(values) > 1:
            return [boolean(False)]
        try:
            cast_by_name(values[0], expr.type_name)
            return [boolean(True)]
        except Exception:
            return [boolean(False)]

    def _eval_instance_of(self, expr: A.InstanceOf, ctx: DynamicContext) -> Sequence:
        value = self.eval(expr.operand, ctx)
        return [boolean(seqtype.sequence_matches(value, expr.seq_type))]

    def _eval_treat_as(self, expr: A.TreatAs, ctx: DynamicContext) -> Sequence:
        value = self.eval(expr.operand, ctx)
        if not seqtype.sequence_matches(value, expr.seq_type):
            raise DynamicError(
                "XPDY0050",
                f"treat as {seqtype.describe(expr.seq_type)} failed")
        return value

    def _eval_typeswitch(self, expr: A.TypeSwitch, ctx: DynamicContext) -> Sequence:
        value = self.eval(expr.operand, ctx)
        for case in expr.cases:
            assert case.seq_type is not None
            if seqtype.sequence_matches(value, case.seq_type):
                return self._eval_case(case, value, ctx)
        return self._eval_case(expr.default, value, ctx)

    def _eval_case(self, case: A.TypeSwitchCase, value: Sequence,
                   ctx: DynamicContext) -> Sequence:
        scope = ctx.child()
        if case.var:
            scope.variables[case.var] = value
        return self.eval(case.body, scope)

    # ------------------------------------------------------------------
    # Set operations

    def _eval_set_op(self, expr: A.SetOp, ctx: DynamicContext) -> Sequence:
        left = self._node_sequence(self.eval(expr.left, ctx), expr.op)
        right = self._node_sequence(self.eval(expr.right, ctx), expr.op)
        right_ids = {id(node) for node in right}
        left_ids = {id(node) for node in left}
        if expr.op == "union":
            return document_order_sort(left + right)
        if expr.op == "intersect":
            return document_order_sort(
                [node for node in left if id(node) in right_ids])
        return document_order_sort(
            [node for node in left if id(node) not in right_ids])

    def _node_sequence(self, sequence: Sequence, who: str) -> list[Node]:
        for item in sequence:
            if not isinstance(item, Node):
                raise TypeError_("XPTY0004", f"{who} operand contains atomics")
        return sequence

    # ------------------------------------------------------------------
    # XQUF updating expressions

    def _pul(self, ctx: DynamicContext) -> PendingUpdateList:
        if ctx.pul is None:
            ctx.pul = PendingUpdateList()
        return ctx.pul

    def _eval_insert(self, expr: A.InsertExpr, ctx: DynamicContext) -> Sequence:
        source = self.eval(expr.source, ctx)
        content: list[Node] = []
        factory = NodeFactory()
        for item in source:
            if isinstance(item, Node):
                content.append(copy_into(item, factory))
            else:
                content.append(factory.text(item.string_value()))
        target = self._single_target(expr.target, ctx, "insert")
        primitive_cls = {
            "into": InsertInto,
            "first": InsertFirst,
            "last": InsertLast,
            "before": InsertBefore,
            "after": InsertAfter,
        }[expr.position]
        self._pul(ctx).add(primitive_cls(target, content))
        return []

    def _eval_delete(self, expr: A.DeleteExpr, ctx: DynamicContext) -> Sequence:
        targets = self.eval(expr.target, ctx)
        pul = self._pul(ctx)
        for target in targets:
            if not isinstance(target, Node):
                raise UpdateError("XUTY0007", "delete target must be nodes")
            pul.add(DeleteNode(target))
        return []

    def _eval_replace(self, expr: A.ReplaceExpr, ctx: DynamicContext) -> Sequence:
        target = self._single_target(expr.target, ctx, "replace")
        if expr.value_of:
            values = atomize(self.eval(expr.replacement, ctx))
            text = " ".join(v.string_value() for v in values)
            self._pul(ctx).add(ReplaceValue(target, text))
            return []
        replacement_items = self.eval(expr.replacement, ctx)
        factory = NodeFactory()
        replacement: list[Node] = []
        for item in replacement_items:
            if isinstance(item, Node):
                replacement.append(copy_into(item, factory))
            else:
                replacement.append(factory.text(item.string_value()))
        self._pul(ctx).add(ReplaceNode(target, replacement))
        return []

    def _eval_rename(self, expr: A.RenameExpr, ctx: DynamicContext) -> Sequence:
        target = self._single_target(expr.target, ctx, "rename")
        values = atomize(self.eval(expr.new_name, ctx))
        if len(values) != 1:
            raise UpdateError("XUTY0012", "rename name must be a single value")
        self._pul(ctx).add(RenameNode(target, values[0].string_value()))
        return []

    def _single_target(self, expr: A.Expr, ctx: DynamicContext,
                       who: str) -> Node:
        targets = self.eval(expr, ctx)
        if len(targets) != 1 or not isinstance(targets[0], Node):
            raise UpdateError(
                "XUTY0008", f"{who} target must be exactly one node")
        return targets[0]


# ---------------------------------------------------------------------------
# Arithmetic helper


def _arith(op: str, left: AtomicValue, right: AtomicValue) -> AtomicValue:
    lv, rv = left.value, right.value
    use_double = left.type in (xs.double, xs.float) or \
        right.type in (xs.double, xs.float)
    if use_double:
        lf, rf = float(lv), float(rv)
        try:
            if op == "+":
                return AtomicValue(lf + rf, xs.double)
            if op == "-":
                return AtomicValue(lf - rf, xs.double)
            if op == "*":
                return AtomicValue(lf * rf, xs.double)
            if op == "div":
                if rf == 0:
                    inf = math.inf if lf > 0 else (-math.inf if lf < 0 else math.nan)
                    return AtomicValue(inf, xs.double)
                return AtomicValue(lf / rf, xs.double)
            if op == "idiv":
                if rf == 0:
                    raise DynamicError("FOAR0001", "integer division by zero")
                return AtomicValue(int(lf / rf), xs.integer)
            if op == "mod":
                if rf == 0:
                    return AtomicValue(math.nan, xs.double)
                return AtomicValue(math.fmod(lf, rf), xs.double)
        except OverflowError as exc:
            raise DynamicError("FOAR0002", "numeric overflow") from exc

    both_integer = left.type.derives_from(xs.integer) and \
        right.type.derives_from(xs.integer)
    ld = Decimal(str(lv)) if not isinstance(lv, Decimal) else lv
    rd = Decimal(str(rv)) if not isinstance(rv, Decimal) else rv
    if op == "+":
        result = ld + rd
    elif op == "-":
        result = ld - rd
    elif op == "*":
        result = ld * rd
    elif op == "div":
        if rd == 0:
            raise DynamicError("FOAR0001", "division by zero")
        result = ld / rd
        return AtomicValue(result, xs.decimal)
    elif op == "idiv":
        if rd == 0:
            raise DynamicError("FOAR0001", "integer division by zero")
        return AtomicValue(int(ld / rd), xs.integer)
    elif op == "mod":
        if rd == 0:
            raise DynamicError("FOAR0001", "modulus by zero")
        quotient = int(ld / rd)
        return AtomicValue(
            ld - rd * quotient,
            xs.integer if both_integer else xs.decimal)
    else:  # pragma: no cover - parser restricts ops
        raise DynamicError("XPST0003", f"unknown operator {op}")
    if both_integer:
        return AtomicValue(int(result), xs.integer)
    return AtomicValue(result, xs.decimal)


# ---------------------------------------------------------------------------
# FLWOR equi-join rewriting
#
# ``for $p in ..., $ca in <path> where $p/k1 = $ca/k2 return ...`` expands a
# cartesian product before filtering — O(|p|·|ca|).  MonetDB executes this
# relationally as a join; we rewrite the where-condition into a predicate on
# the second for's source path, where the equality-predicate index turns it
# into a hash-join probe per tuple.  The rewrite preserves semantics exactly
# (the same general comparison is evaluated for the same pairs).


def _free_variables(expr: A.Expr) -> set[str]:
    """Names of variables referenced anywhere inside *expr*."""
    names: set[str] = set()

    def walk(node) -> None:
        if isinstance(node, A.VarRef):
            names.add(node.name)
            return
        if isinstance(node, (list, tuple)):
            for entry in node:
                walk(entry)
            return
        if not isinstance(node, (A.Expr, A.AxisStep, A.TypeSwitchCase,
                                 A.ForClause, A.LetClause, A.WhereClause,
                                 A.OrderByClause, A.OrderSpec)):
            return
        for value in vars(node).values():
            if isinstance(value, (A.Expr, A.AxisStep, list, tuple,
                                  A.TypeSwitchCase)):
                walk(value)
    walk(expr)
    return names


class _JoinSpec:
    """Matched hash-join: key expression on the for-var + probe side."""

    __slots__ = ("build_expr", "probe_expr")

    def __init__(self, build_expr: A.Expr, probe_expr: A.Expr) -> None:
        self.build_expr = build_expr
        self.probe_expr = probe_expr


def _match_hash_join(clause: A.ForClause, following,
                     bound_vars: set[str]) -> Optional[_JoinSpec]:
    """Detect ``for $v in S where f($v) = g(earlier-vars)``.

    Conditions for soundness:
    * the where clause immediately follows the for clause;
    * the condition is a general ``=`` comparison with one side
      referencing only ``$v`` and the other side not referencing ``$v``;
    * the for's source does not depend on variables bound earlier in the
      same FLWOR (so it can be evaluated once).
    """
    if not isinstance(following, A.WhereClause):
        return None
    condition = following.condition
    if not isinstance(condition, A.Comparison) or condition.op != "=" \
            or condition.kind != "general":
        return None
    if _free_variables(clause.source) & bound_vars:
        return None
    left_vars = _free_variables(condition.left)
    right_vars = _free_variables(condition.right)
    var = clause.var
    if var in left_vars and var not in right_vars \
            and left_vars == {var}:
        return _JoinSpec(build_expr=condition.left,
                         probe_expr=condition.right)
    if var in right_vars and var not in left_vars \
            and right_vars == {var}:
        return _JoinSpec(build_expr=condition.right,
                         probe_expr=condition.left)
    return None


# ---------------------------------------------------------------------------
# Path optimization helpers


def node_test_matches(node: Node, test: A.NodeTest, axis: str,
                      static: StaticContext,
                      constructor_namespaces: Optional[dict] = None) -> bool:
    """Does *node* satisfy a step's node test on the given axis?

    Standalone so both the interpreter and the loop-lifting compiler's
    algebra axis-step operator share one name/kind-test semantics
    (principal node kind, wildcards, namespace resolution).
    """
    if isinstance(test, A.KindTest):
        if test.kind == "node":
            return True
        kind_map = {
            "text": TextNode,
            "comment": CommentNode,
            "element": ElementNode,
            "attribute": AttributeNode,
            "document": DocumentNode,
            "processing-instruction": ProcessingInstructionNode,
        }
        cls = kind_map.get(test.kind)
        if cls is None or not isinstance(node, cls):
            return False
        if test.name:
            if isinstance(node, (ElementNode, AttributeNode)):
                return node.local_name == test.name.split(":")[-1]
            if isinstance(node, ProcessingInstructionNode):
                return node.target == test.name
        return True
    # NameTest: principal node kind depends on the axis.
    if axis == "attribute":
        if not isinstance(node, AttributeNode):
            return False
    else:
        if not isinstance(node, ElementNode):
            return False
    if test.local != "*" and node.local_name != test.local:
        return False
    if test.prefix == "*" or test.local == "*" and test.prefix is None:
        return True
    if test.prefix is None:
        if axis == "attribute":
            return node.ns_uri is None
        return node.ns_uri == static.default_element_namespace
    wanted = (constructor_namespaces or {}).get(test.prefix)
    if wanted is None:
        wanted = static.resolve_prefix(test.prefix)
    return node.ns_uri == wanted


def _fuse_descendant_steps(steps: list) -> list:
    """Fuse ``descendant-or-self::node()/child::T`` into ``descendant::T``.

    The classic `//name` peephole: avoids materialising every node of the
    tree as an intermediate result.
    """
    fused: list = []
    index = 0
    while index < len(steps):
        step = steps[index]
        next_step = steps[index + 1] if index + 1 < len(steps) else None
        if (isinstance(step, A.AxisStep)
                and step.axis == "descendant-or-self"
                and isinstance(step.node_test, A.KindTest)
                and step.node_test.kind == "node"
                and not step.predicates
                and isinstance(next_step, A.AxisStep)
                and next_step.axis == "child"
                and all(_statically_boolean(p) for p in next_step.predicates)):
            fused.append(A.AxisStep("descendant", next_step.node_test,
                                    next_step.predicates))
            index += 2
            continue
        fused.append(step)
        index += 1
    return fused


def _statically_boolean(predicate: A.Expr) -> bool:
    """True if a predicate can never yield a number (so it filters by EBV
    and cannot be positional). Required for the `//T[p]` fusion to be
    semantics-preserving: ``descendant::T[1]`` and
    ``descendant-or-self::node()/child::T[1]`` number differently.
    """
    if isinstance(predicate, (A.Comparison, A.Logical, A.Quantified)):
        return True
    if isinstance(predicate, A.PathExpr):
        return bool(predicate.steps) or predicate.absolute != "none"
    if isinstance(predicate, A.FunctionCall):
        return predicate.name.split(":")[-1] in (
            "not", "empty", "exists", "contains", "starts-with", "ends-with",
            "boolean", "true", "false", "matches", "deep-equal",
            "doc-available")
    return False


def _is_fn_call(expr: A.Expr, local: str) -> bool:
    """Zero-argument call of the built-in *local* (``fn:`` or bare)."""
    return (isinstance(expr, A.FunctionCall) and not expr.args
            and expr.name.split(":")[-1] == local)


def _positional_operand(expr: A.Expr) -> Optional[tuple]:
    if isinstance(expr, A.Literal) and expr.value.is_numeric:
        return ("lit", float(expr.value.value))
    if _is_fn_call(expr, "last"):
        return ("last",)
    return None


_OP_NORMALIZE = {"=": "eq", "!=": "ne", "<": "lt", "<=": "le",
                 ">": "gt", ">=": "ge",
                 "eq": "eq", "ne": "ne", "lt": "lt", "le": "le",
                 "gt": "gt", "ge": "ge"}

#: position() on the *right* of the comparison mirrors the operator.
_OP_FLIP = {"eq": "eq", "ne": "ne", "lt": "gt", "le": "ge",
            "gt": "lt", "ge": "le"}


def positional_predicate_spec(predicate: A.Expr) -> Optional[tuple]:
    """Recognize the statically positional predicate shapes.

    Returns a spec tuple — ``("literal", n)`` for a numeric literal
    predicate, ``("last",)`` for bare ``last()``, or ``("pos-cmp", op,
    operand)`` for a ``position()`` comparison where *operand* is
    ``("lit", n)`` or ``("last",)`` and *op* is normalized to
    ``eq/ne/lt/le/gt/ge`` — or None when the predicate is not one of
    these shapes (it then filters by its runtime value as usual).
    Shared by the interpreter and the pathfinder compiler so both rank
    windows identically.
    """
    if isinstance(predicate, A.Literal) and predicate.value.is_numeric:
        return ("literal", float(predicate.value.value))
    if _is_fn_call(predicate, "last"):
        return ("last",)
    if isinstance(predicate, A.Comparison) \
            and predicate.kind in ("general", "value"):
        op = _OP_NORMALIZE.get(predicate.op)
        if op is None:
            return None
        if _is_fn_call(predicate.left, "position"):
            operand = _positional_operand(predicate.right)
            if operand is not None:
                return ("pos-cmp", op, operand)
        if _is_fn_call(predicate.right, "position"):
            operand = _positional_operand(predicate.left)
            if operand is not None:
                return ("pos-cmp", _OP_FLIP[op], operand)
    return None


def positional_spec_keep(spec: tuple, position: int, count: int) -> bool:
    """Does the item at 1-based *position* in a *count*-item window
    survive *spec*?  Float comparisons mirror XPath numeric predicate
    semantics (``[1.5]`` keeps nothing)."""
    kind = spec[0]
    if kind == "literal":
        return position == spec[1]
    if kind == "last":
        return position == count
    op = spec[1]
    target = float(count) if spec[2] == ("last",) else spec[2][1]
    if op == "eq":
        return position == target
    if op == "ne":
        return position != target
    if op == "lt":
        return position < target
    if op == "le":
        return position <= target
    if op == "gt":
        return position > target
    return position >= target


def _indexable_predicate_key_path(predicate: A.Expr) -> Optional[tuple]:
    """If *predicate* is ``relative-path = expr`` with the path made of
    plain child/attribute name steps, return the path as a hashable key.

    The returned tuple contains ``("child", local)`` / ``("attribute",
    local)`` entries; None means the predicate is not indexable.
    """
    if not isinstance(predicate, A.Comparison) or predicate.op != "=" \
            or predicate.kind != "general":
        return None
    path = predicate.left
    if not isinstance(path, A.PathExpr) or path.absolute != "none":
        return None
    if path.start is not None and not isinstance(path.start, A.ContextItem):
        return None  # './buyer/@person' is fine; '$x/y' is not
    key: list[tuple[str, str]] = []
    for step in path.steps:
        if not isinstance(step, A.AxisStep) or step.predicates:
            return None
        if step.axis == "self" and isinstance(step.node_test, A.KindTest):
            continue  # leading ./ is a no-op
        if step.axis not in ("child", "attribute"):
            return None
        if not isinstance(step.node_test, A.NameTest) or \
                step.node_test.local == "*":
            return None
        key.append((step.axis, step.node_test.local))
    if not key:
        return None
    return tuple(key)


def axis_value_index(anchor: Node, axis: str, node_test: "A.NameTest",
                     key_path: tuple, static: StaticContext,
                     constructor_namespaces: Optional[dict] = None) -> dict:
    """Equality-predicate value index for one (anchor, axis, test, key path).

    Maps each key-path string value to the matching axis nodes — the
    hash-join probe side of ``step[path = value]``.  Cached on the
    tree's :class:`~repro.xdm.structural.StructuralIndex` under the
    anchor's *pre rank* within the current index generation — stable for
    the index's lifetime (the index pins the tree's nodes, so no
    ``id()`` reuse) — and any tree mutation replaces the index, dropping
    stale value indexes with it.  Shared by the interpreter's indexed
    step and the algebra layer's lifted predicate path.
    """
    structure = structural_index(anchor.root())
    anchor_pre = structure.rank_of_opt(anchor)
    cache_key = (anchor_pre, axis, node_test.prefix, node_test.local, key_path)
    if anchor_pre is not None:
        cached = structure.value_indexes.get(cache_key)
        if cached is not None:
            return cached
    index: dict = {}
    for node in _axis_nodes(anchor, axis):
        if not node_test_matches(node, node_test, axis, static,
                                 constructor_namespaces):
            continue
        for value in _walk_key_path(node, key_path):
            index.setdefault(value, []).append(node)
    if anchor_pre is not None:
        structure.value_indexes[cache_key] = index
    return index


def _walk_key_path(node: Node, key_path: tuple) -> list[str]:
    """Evaluate an indexable key path, returning string values."""
    current = [node]
    for axis, local in key_path:
        advanced: list[Node] = []
        for item in current:
            if axis == "child":
                advanced.extend(
                    child for child in item.children
                    if isinstance(child, ElementNode)
                    and child.local_name == local)
            else:
                advanced.extend(
                    attribute for attribute in item.attributes
                    if attribute.local_name == local)
        current = advanced
    return [item.string_value() for item in current]


# ---------------------------------------------------------------------------
# Axes


def _axis_nodes(node: Node, axis: str):
    if axis == "child":
        return list(node.children)
    if axis == "descendant":
        return list(node.descendants(include_self=False))
    if axis == "descendant-or-self":
        return list(node.descendants(include_self=True))
    if axis == "attribute":
        return list(node.attributes)
    if axis == "self":
        return [node]
    if axis == "parent":
        return [node.parent] if node.parent is not None else []
    if axis == "ancestor":
        return list(node.ancestors())
    if axis == "ancestor-or-self":
        return [node] + list(node.ancestors())
    if axis == "following-sibling":
        return list(node.following_siblings())
    if axis == "preceding-sibling":
        return list(node.preceding_siblings())
    if axis == "following":
        return list(node.following())
    if axis == "preceding":
        return list(node.preceding())
    raise DynamicError("XPST0003", f"unknown axis {axis}")


class _TEXT_MARKER:
    """Wrapper distinguishing literal constructor text from atomics."""

    __slots__ = ("text",)

    def __init__(self, text: str) -> None:
        self.text = text


# ---------------------------------------------------------------------------
# Compiled queries / convenience entry points


class CompiledQuery:
    """A parsed main module bound to its imports — ready to execute.

    This is the unit the MonetDB-style *function cache* stores: compiling
    (parsing + binding) happens once, execution many times.
    """

    def __init__(self, source: str,
                 registry: Optional[ModuleRegistry] = None) -> None:
        self.source = source
        self.ast = parse_main_module(source)
        self.registry = registry or ModuleRegistry()
        self.static = StaticContext()
        for decl in self.ast.namespaces:
            self.static.declare_namespace(decl.prefix, decl.uri)
        for imp in self.ast.imports:
            module = self.registry.load(imp.uri, imp.locations)
            self.static.declare_namespace(imp.prefix, imp.uri)
            if imp.locations:
                self.static.module_locations[imp.uri] = imp.locations[0]
            self.static.functions.update(module.exported_functions())
        for option in self.ast.options:
            self.static.options[option.name] = option.value
        # Main-module local function declarations.
        self._local_functions: list[A.FunctionDecl] = []
        for decl in self.ast.functions:
            uri, local = self.static.resolve_function_name(decl.name)
            decl.namespace_uri = uri
            decl.local_name = local
            self.static.register_function(uri, local, len(decl.params), decl)
            self._local_functions.append(decl)

    @property
    def options(self) -> dict[str, str]:
        return self.static.options

    def execute(
        self,
        doc_resolver=None,
        variables: Optional[dict[str, Sequence]] = None,
        xrpc_handler=None,
        context_item=None,
        put_store=None,
        optimize_joins: bool = True,
        accelerator: bool = True,
    ) -> tuple[Sequence, PendingUpdateList]:
        """Deprecated keyword-style shim over :meth:`run`.

        Prefer ``run(ExecutionContext(...))`` — this signature survives
        for existing callers and forwards unchanged.
        """
        return self.run(ExecutionContext(
            doc_resolver=doc_resolver,
            variables=variables,
            xrpc_handler=xrpc_handler,
            context_item=context_item,
            put_store=put_store,
            optimize_joins=optimize_joins,
            accelerator=accelerator,
        ))

    def run(self, context: Optional[ExecutionContext] = None,
            ) -> tuple[Sequence, PendingUpdateList]:
        """Run the query body; returns (result sequence, pending updates).

        *context* carries every execution option (see
        :class:`~repro.xquery.context.ExecutionContext`).  Updates are
        *not* applied — the caller decides when to invoke
        ``applyUpdates`` (immediately, or at 2PC commit), mirroring the
        paper's isolation rules.
        """
        options = context or ExecutionContext()
        if self.ast.body is None:
            raise DynamicError("XPDY0002", "library module has no query body")
        ctx = DynamicContext(self.static, options.variables,
                             options.doc_resolver, options.xrpc_handler)
        ctx.pul = PendingUpdateList()
        ctx.put_store = options.put_store
        ctx.optimize_joins = options.optimize_joins
        ctx.accelerator = options.accelerator
        if options.context_item is not None:
            ctx.focus_item = options.context_item
            ctx.focus_position = 1
            ctx.focus_size = 1
        evaluator = Evaluator()
        for var_decl in self.ast.variables:
            if var_decl.value is not None:
                value = evaluator.eval(var_decl.value, ctx)
                ctx.variables[var_decl.name] = seqtype.convert_value(
                    value, var_decl.seq_type, f"${var_decl.name}")
            elif var_decl.name not in ctx.variables:
                raise DynamicError(
                    "XPDY0002", f"external variable ${var_decl.name} not bound")
        result = evaluator.eval(self.ast.body, ctx)
        return result, ctx.pul


def evaluate_query(
    source: str,
    registry: Optional[ModuleRegistry] = None,
    doc_resolver=None,
    variables: Optional[dict[str, Sequence]] = None,
    xrpc_handler=None,
    context_item=None,
    apply_pending_updates: bool = True,
    put_store=None,
    accelerator: bool = True,
    incremental_updates: bool = True,
) -> Sequence:
    """One-shot convenience: compile, execute, (optionally) apply updates."""
    from repro.xquf.pul import apply_updates

    compiled = CompiledQuery(source, registry)
    result, pul = compiled.execute(
        doc_resolver=doc_resolver,
        variables=variables,
        xrpc_handler=xrpc_handler,
        context_item=context_item,
        put_store=put_store,
        accelerator=accelerator,
    )
    if apply_pending_updates and pul:
        apply_updates(pul, incremental=incremental_updates)
    return result
