"""SequenceType matching and the XQuery function conversion rules.

Used for function parameter/return conversion, ``instance of``,
``treat as`` and ``typeswitch``.  The paper notes that XRPC requires the
*caller* to perform parameter up-casting; these are the rules that
casting follows.
"""

from __future__ import annotations


from repro.errors import TypeError_
from repro.xdm.atomic import AtomicValue, cast
from repro.xdm.nodes import (
    AttributeNode,
    CommentNode,
    DocumentNode,
    ElementNode,
    Node,
    ProcessingInstructionNode,
    TextNode,
)
from repro.xdm.sequence import atomize
from repro.xdm.types import XSType, xs
from repro.xquery import xast as A

_KIND_CLASSES = {
    "node": Node,
    "element": ElementNode,
    "attribute": AttributeNode,
    "document": DocumentNode,
    "text": TextNode,
    "comment": CommentNode,
    "processing-instruction": ProcessingInstructionNode,
}


def _occurrence_ok(count: int, occurrence: str) -> bool:
    if occurrence == "":
        return count == 1
    if occurrence == "?":
        return count <= 1
    if occurrence == "+":
        return count >= 1
    return True  # "*"


def item_matches(item: object, item_type: A.ItemType) -> bool:
    """Does a single item match an ItemType?"""
    if item_type.kind == "item":
        return True
    if item_type.kind == "empty":
        return False
    if item_type.kind == "atomic":
        if not isinstance(item, AtomicValue):
            return False
        assert item_type.atomic_type is not None
        return item.type.derives_from(item_type.atomic_type)
    cls = _KIND_CLASSES.get(item_type.kind)
    if cls is None or not isinstance(item, cls):
        return False
    if item_type.name and item_type.name != "*":
        if isinstance(item, (ElementNode, AttributeNode)):
            wanted = item_type.name.split(":")[-1]
            return item.local_name == wanted
        if isinstance(item, ProcessingInstructionNode):
            return item.target == item_type.name
    return True


def sequence_matches(sequence: list, seq_type: A.SequenceType) -> bool:
    """``instance of`` semantics."""
    if seq_type.item_type.kind == "empty":
        return not sequence
    if not _occurrence_ok(len(sequence), seq_type.occurrence):
        return False
    return all(item_matches(item, seq_type.item_type) for item in sequence)


def _promotable(source: XSType, target: XSType) -> bool:
    """Numeric / URI type promotion per the function conversion rules."""
    if target is xs.double:
        return source.is_numeric
    if target is xs.float:
        return source.derives_from(xs.decimal)
    if target is xs.string:
        return source.derives_from(xs.anyURI)
    return False


def convert_value(sequence: list, seq_type: A.SequenceType, who: str) -> list:
    """Apply the function conversion rules to *sequence* for *seq_type*.

    Atomic expected types atomize the argument, cast untypedAtomic and
    apply numeric promotion; node kinds are checked structurally.

    Raises
    ------
    TypeError_
        code ``XPTY0004`` when the value cannot be converted.
    """
    item_type = seq_type.item_type

    if item_type.kind == "empty":
        if sequence:
            raise TypeError_("XPTY0004", f"{who}: expected empty-sequence()")
        return []

    if item_type.kind == "atomic":
        target = item_type.atomic_type
        assert target is not None
        converted: list = []
        for value in atomize(sequence):
            if value.type is xs.untypedAtomic and target is not xs.untypedAtomic:
                converted.append(cast(value, target))
            elif value.type.derives_from(target):
                converted.append(value)
            elif _promotable(value.type, target):
                converted.append(cast(value, target))
            else:
                raise TypeError_(
                    "XPTY0004",
                    f"{who}: cannot convert {value.type.name} to {target.name}")
        sequence = converted
    elif item_type.kind != "item":
        for item in sequence:
            if not item_matches(item, item_type):
                kind = item.kind if isinstance(item, Node) else type(item).__name__
                raise TypeError_(
                    "XPTY0004",
                    f"{who}: expected {item_type.kind}(), got {kind}")

    if not _occurrence_ok(len(sequence), seq_type.occurrence):
        raise TypeError_(
            "XPTY0004",
            f"{who}: cardinality {len(sequence)} does not match "
            f"occurrence {seq_type.occurrence or 'exactly-one'!r}")
    return sequence


def describe(seq_type: A.SequenceType) -> str:
    """Human-readable rendering, e.g. ``"element()*"`` (for messages)."""
    item_type = seq_type.item_type
    if item_type.kind == "empty":
        return "empty-sequence()"
    if item_type.kind == "atomic":
        assert item_type.atomic_type is not None
        base: str = item_type.atomic_type.name
    elif item_type.kind == "item":
        base = "item()"
    else:
        inner = item_type.name or ""
        base = f"{item_type.kind}({inner})"
    return base + seq_type.occurrence
