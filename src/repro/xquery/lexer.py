"""XQuery lexer.

XQuery is not lexically regular — keywords are contextual and direct XML
constructors embed a different token language — so this lexer is a lazy
cursor the parser drives: :meth:`Lexer.next` produces the next token from
the current position, and the parser can save/restore positions for
backtracking, or take over raw character scanning inside direct
constructors.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.errors import StaticError


def source_location(text: str, pos: int) -> tuple[int, int]:
    """1-based ``(line, column)`` of character offset *pos* in *text*.

    The shared offset→location mapping: the lexer's own errors, the
    parser's AST position stamps (:attr:`repro.xquery.xast.Expr.pos`)
    and the static analyzer's diagnostics all render through it, so
    every surface reports the same ``line:column`` for the same spot.
    """
    consumed = text[:pos]
    line = consumed.count("\n") + 1
    column = pos - (consumed.rfind("\n") + 1) + 1
    return line, column


# Longest-match symbol table (order matters only within same first char).
_SYMBOLS = [
    ":=", "<<", ">>", "!=", "<=", ">=", "//", "..",
    "{", "}", "(", ")", "[", "]", ";", ",", ".", "@", "|",
    "+", "-", "*", "/", "=", "<", ">", "?", ":",
]


@dataclass
class Token:
    kind: str   # NAME VAR STRING INTEGER DECIMAL DOUBLE SYMBOL EOF
    value: str
    pos: int

    def is_symbol(self, symbol: str) -> bool:
        return self.kind == "SYMBOL" and self.value == symbol

    def is_name(self, name: str) -> bool:
        return self.kind == "NAME" and self.value == name


def _is_ncname_start(ch: str) -> bool:
    return ch.isalpha() or ch == "_"


def _is_ncname_char(ch: str) -> bool:
    return ch.isalnum() or ch in "_-."


class Lexer:
    """Lazy tokenizer over XQuery source text."""

    def __init__(self, text: str) -> None:
        self.text = text
        self.pos = 0
        self.length = len(text)

    # -- errors ------------------------------------------------------------

    def location(self, pos: Optional[int] = None) -> tuple[int, int]:
        return source_location(self.text, self.pos if pos is None else pos)

    def error(self, message: str, pos: Optional[int] = None) -> StaticError:
        """A :class:`StaticError` carrying the uniform ``(at line:column)``
        suffix plus structured ``line``/``column`` attributes."""
        line, column = self.location(pos)
        return StaticError("XPST0003", message, line=line, column=column)

    # -- raw access (for direct constructors) -------------------------------

    def save(self) -> int:
        return self.pos

    def restore(self, pos: int) -> None:
        self.pos = pos

    def raw_peek(self, offset: int = 0) -> str:
        index = self.pos + offset
        return self.text[index] if index < self.length else ""

    def raw_advance(self, count: int = 1) -> None:
        self.pos += count

    def raw_startswith(self, token: str) -> bool:
        return self.text.startswith(token, self.pos)

    # -- whitespace / comments ---------------------------------------------

    def skip_trivia(self) -> None:
        """Skip whitespace and (nested) ``(: ... :)`` comments."""
        while self.pos < self.length:
            ch = self.text[self.pos]
            if ch in " \t\r\n":
                self.pos += 1
            elif self.text.startswith("(:", self.pos):
                depth = 1
                self.pos += 2
                while self.pos < self.length and depth > 0:
                    if self.text.startswith("(:", self.pos):
                        depth += 1
                        self.pos += 2
                    elif self.text.startswith(":)", self.pos):
                        depth -= 1
                        self.pos += 2
                    else:
                        self.pos += 1
                if depth > 0:
                    raise self.error("unterminated comment")
            else:
                break

    # -- tokens --------------------------------------------------------------

    def peek(self) -> Token:
        saved = self.pos
        token = self.next()
        self.pos = saved
        return token

    def next(self) -> Token:
        self.skip_trivia()
        if self.pos >= self.length:
            return Token("EOF", "", self.pos)
        start = self.pos
        ch = self.text[self.pos]

        if ch == "$":
            self.pos += 1
            name = self._read_qname()
            return Token("VAR", name, start)

        if ch in "'\"":
            return Token("STRING", self._read_string_literal(ch, start), start)

        if ch.isdigit() or (ch == "." and self.raw_peek(1).isdigit()):
            return self._read_number(start)

        if _is_ncname_start(ch):
            name = self._read_qname()
            return Token("NAME", name, start)

        for symbol in _SYMBOLS:
            if self.text.startswith(symbol, self.pos):
                # '..' must not swallow the start of a number like '.5'
                self.pos += len(symbol)
                return Token("SYMBOL", symbol, start)

        raise self.error(f"unexpected character {ch!r}")

    def _read_qname(self) -> str:
        start = self.pos
        if self.pos >= self.length or not _is_ncname_start(self.text[self.pos]):
            raise self.error("expected name")
        self.pos += 1
        while self.pos < self.length and _is_ncname_char(self.text[self.pos]):
            self.pos += 1
        # Optional single ':NCName' suffix for QNames (but not '::' axes).
        if (self.raw_peek() == ":" and self.raw_peek(1) != ":"
                and self.raw_peek(1) and (_is_ncname_start(self.raw_peek(1))
                                          or self.raw_peek(1) == "*")):
            self.pos += 1
            if self.raw_peek() == "*":
                self.pos += 1
            else:
                self.pos += 1
                while self.pos < self.length and _is_ncname_char(self.text[self.pos]):
                    self.pos += 1
        return self.text[start:self.pos]

    def _read_string_literal(self, quote: str,
                             start: Optional[int] = None) -> str:
        self.pos += 1
        pieces: list[str] = []
        while True:
            if self.pos >= self.length:
                raise self.error("unterminated string literal", start)
            ch = self.text[self.pos]
            if ch == quote:
                if self.raw_peek(1) == quote:  # doubled quote = escape
                    pieces.append(quote)
                    self.pos += 2
                    continue
                self.pos += 1
                return "".join(pieces)
            if ch == "&":
                pieces.append(self._read_entity())
                continue
            pieces.append(ch)
            self.pos += 1

    def _read_entity(self) -> str:
        end = self.text.find(";", self.pos)
        if end < 0:
            raise self.error("unterminated entity reference")
        entity = self.text[self.pos + 1:end]
        self.pos = end + 1
        table = {"lt": "<", "gt": ">", "amp": "&", "apos": "'", "quot": '"'}
        if entity in table:
            return table[entity]
        if entity.startswith("#x") or entity.startswith("#X"):
            return chr(int(entity[2:], 16))
        if entity.startswith("#"):
            return chr(int(entity[1:]))
        raise self.error(f"unknown entity &{entity};")

    def _read_number(self, start: int) -> Token:
        kind = "INTEGER"
        while self.pos < self.length and self.text[self.pos].isdigit():
            self.pos += 1
        if self.raw_peek() == "." and self.raw_peek(1) != ".":
            kind = "DECIMAL"
            self.pos += 1
            while self.pos < self.length and self.text[self.pos].isdigit():
                self.pos += 1
        if self.raw_peek() in ("e", "E"):
            lookahead = 1
            if self.raw_peek(1) in ("+", "-"):
                lookahead = 2
            if self.raw_peek(lookahead).isdigit():
                kind = "DOUBLE"
                self.pos += lookahead + 1
                while self.pos < self.length and self.text[self.pos].isdigit():
                    self.pos += 1
        text = self.text[start:self.pos]
        if self.pos < self.length and _is_ncname_start(self.text[self.pos]):
            raise self.error(f"invalid number literal {text!r}", start)
        return Token(kind, text, start)
