"""Builtin function library (fn:*, xs:* constructors, xrpc:* helpers).

Builtins are Python callables with signature ``(args, ctx) -> sequence``
where ``args`` is a list of already-evaluated XDM sequences.  They are
resolved by ``(namespace, local-name, arity)``; a few (``fn:concat``)
are variadic.

The ``xrpc:host`` / ``xrpc:path`` helpers from section 5 of the paper
are included: they split ``xrpc://host[:port]/path`` URIs for the
advanced-pushdown rewrite, defaulting to ``localhost`` / the unchanged
argument for non-xrpc URIs.
"""

from __future__ import annotations

import math
import re
from decimal import Decimal
from typing import Callable, Optional

from repro.errors import DynamicError, TypeError_, XQueryError
from repro.xdm.atomic import (
    AtomicValue,
    boolean,
    cast,
    double,
    integer,
    string,
    untyped,
    value_compare,
)
from repro.xdm.nodes import (
    AttributeNode,
    DocumentNode,
    ElementNode,
    Node,
    ProcessingInstructionNode,
)
from repro.xdm.sequence import (
    atomize,
    deep_equal,
    effective_boolean_value,
    is_node,
)
from repro.xdm.types import xs
from repro.xquery.context import DynamicContext, FN_NS, XRPC_NS, XS_NS

Sequence = list
Builtin = Callable[..., Sequence]

_REGISTRY: dict[tuple[str, int], Builtin] = {}
_VARIADIC: dict[str, Builtin] = {}


def _register(name: str, arities: tuple[int, ...]) -> Callable[[Builtin], Builtin]:
    def wrap(func: Builtin) -> Builtin:
        for arity in arities:
            _REGISTRY[(name, arity)] = func
        return func
    return wrap


def _register_variadic(name: str) -> Callable[[Builtin], Builtin]:
    def wrap(func: Builtin) -> Builtin:
        _VARIADIC[name] = func
        return func
    return wrap


def get_builtin(uri: str, local: str, arity: int) -> Optional[Builtin]:
    """Resolve a builtin implementation, or None."""
    if uri == FN_NS:
        direct = _REGISTRY.get((local, arity))
        if direct is not None:
            return direct
        return _VARIADIC.get(local)
    if uri == XS_NS:
        return _constructor_function(local) if arity == 1 else None
    if uri == XRPC_NS:
        return _REGISTRY.get((f"xrpc:{local}", arity))
    return None


def builtin_exists(uri: str, local: str, arity: int) -> bool:
    """Would :func:`get_builtin` resolve this (uri, local, arity)?

    The static analyzer's view of the builtin library — deliberately a
    wrapper over the same lookup the evaluator performs, so the linter
    can never disagree with the runtime about which builtins exist.
    """
    return get_builtin(uri, local, arity) is not None


def builtin_known_name(uri: str, local: str) -> bool:
    """Is *local* a builtin name in *uri* at ANY arity?

    Distinguishes "unknown function" from "known function called with
    the wrong number of arguments" in the analyzer's diagnostics.
    """
    if uri == FN_NS:
        return local in _VARIADIC \
            or any(name == local for name, _ in _REGISTRY)
    if uri == XS_NS:
        return _constructor_function(local) is not None
    if uri == XRPC_NS:
        return any(name == f"xrpc:{local}" for name, _ in _REGISTRY)
    return False


# ---------------------------------------------------------------------------
# Helpers


def _single_string(sequence: Sequence, who: str) -> str:
    values = atomize(sequence)
    if not values:
        return ""
    if len(values) > 1:
        raise TypeError_("XPTY0004", f"{who} expects a single value")
    return values[0].string_value()


def _optional_atomic(sequence: Sequence, who: str) -> Optional[AtomicValue]:
    values = atomize(sequence)
    if not values:
        return None
    if len(values) > 1:
        raise TypeError_("XPTY0004", f"{who} expects at most one value")
    return values[0]


def _numeric(value: AtomicValue) -> AtomicValue:
    if value.type is xs.untypedAtomic:
        return cast(value, xs.double)
    if not value.is_numeric:
        raise TypeError_("XPTY0004", f"expected numeric, got {value.type.name}")
    return value


def _context_node(ctx: DynamicContext, who: str) -> Node:
    item = ctx.focus_item
    if item is None:
        raise DynamicError("XPDY0002", f"{who}: no context item")
    if not isinstance(item, Node):
        raise TypeError_("XPTY0004", f"{who}: context item is not a node")
    return item


# ---------------------------------------------------------------------------
# Documents


@_register("doc", (1,))
def fn_doc(args: list[Sequence], ctx: DynamicContext) -> Sequence:
    uri = _single_string(args[0], "fn:doc")
    if not uri:
        return []
    return [ctx.resolve_doc(uri)]


@_register("doc-available", (1,))
def fn_doc_available(args: list[Sequence], ctx: DynamicContext) -> Sequence:
    uri = _single_string(args[0], "fn:doc-available")
    try:
        ctx.resolve_doc(uri)
        return [boolean(True)]
    except XQueryError:
        return [boolean(False)]


@_register("put", (2,))
def fn_put(args: list[Sequence], ctx: DynamicContext) -> Sequence:
    """fn:put — XQUF updating builtin: stores a document at a URI."""
    from repro.xquf.pul import PendingUpdateList, PutDocument
    if len(args[0]) != 1 or not is_node(args[0][0]):
        raise TypeError_("XPTY0004", "fn:put expects a single node")
    uri = _single_string(args[1], "fn:put")
    if ctx.pul is None:
        ctx.pul = PendingUpdateList()
    store = getattr(ctx, "put_store", None)
    ctx.pul.add(PutDocument(args[0][0], uri, store))
    return []


@_register("document-uri", (1,))
def fn_document_uri(args: list[Sequence], ctx: DynamicContext) -> Sequence:
    if not args[0]:
        return []
    node = args[0][0]
    if isinstance(node, DocumentNode) and node.uri:
        return [AtomicValue(node.uri, xs.anyURI)]
    return []


@_register("root", (0, 1))
def fn_root(args: list[Sequence], ctx: DynamicContext) -> Sequence:
    if args:
        if not args[0]:
            return []
        node = args[0][0]
        if not isinstance(node, Node):
            raise TypeError_("XPTY0004", "fn:root expects a node")
    else:
        node = _context_node(ctx, "fn:root")
    return [node.root()]


# ---------------------------------------------------------------------------
# Sequences


@_register("count", (1,))
def fn_count(args: list[Sequence], ctx: DynamicContext) -> Sequence:
    return [integer(len(args[0]))]


@_register("empty", (1,))
def fn_empty(args: list[Sequence], ctx: DynamicContext) -> Sequence:
    return [boolean(not args[0])]


@_register("exists", (1,))
def fn_exists(args: list[Sequence], ctx: DynamicContext) -> Sequence:
    return [boolean(bool(args[0]))]


@_register("not", (1,))
def fn_not(args: list[Sequence], ctx: DynamicContext) -> Sequence:
    return [boolean(not effective_boolean_value(args[0]))]


@_register("boolean", (1,))
def fn_boolean(args: list[Sequence], ctx: DynamicContext) -> Sequence:
    return [boolean(effective_boolean_value(args[0]))]


@_register("true", (0,))
def fn_true(args: list[Sequence], ctx: DynamicContext) -> Sequence:
    return [boolean(True)]


@_register("false", (0,))
def fn_false(args: list[Sequence], ctx: DynamicContext) -> Sequence:
    return [boolean(False)]


@_register("data", (1,))
def fn_data(args: list[Sequence], ctx: DynamicContext) -> Sequence:
    return list(atomize(args[0]))


@_register("distinct-values", (1,))
def fn_distinct_values(args: list[Sequence], ctx: DynamicContext) -> Sequence:
    seen: list[AtomicValue] = []
    for value in atomize(args[0]):
        if value.type is xs.untypedAtomic:
            value = cast(value, xs.string)
        duplicate = False
        for existing in seen:
            try:
                if value_compare(existing, "eq", value):
                    duplicate = True
                    break
            except XQueryError:
                continue
        if not duplicate:
            seen.append(value)
    return seen


@_register("reverse", (1,))
def fn_reverse(args: list[Sequence], ctx: DynamicContext) -> Sequence:
    return list(reversed(args[0]))


@_register("subsequence", (2, 3))
def fn_subsequence(args: list[Sequence], ctx: DynamicContext) -> Sequence:
    source = args[0]
    start = round(float(_numeric(_optional_atomic(args[1], "fn:subsequence")).value))
    if len(args) == 3:
        length = round(float(_numeric(
            _optional_atomic(args[2], "fn:subsequence")).value))
        end = start + length
    else:
        end = len(source) + 1
    return [item for position, item in enumerate(source, start=1)
            if start <= position < end]


@_register("insert-before", (3,))
def fn_insert_before(args: list[Sequence], ctx: DynamicContext) -> Sequence:
    source, position_seq, inserts = args
    position = int(_numeric(_optional_atomic(position_seq, "fn:insert-before")).value)
    position = max(1, min(position, len(source) + 1))
    return source[:position - 1] + inserts + source[position - 1:]


@_register("remove", (2,))
def fn_remove(args: list[Sequence], ctx: DynamicContext) -> Sequence:
    position = int(_numeric(_optional_atomic(args[1], "fn:remove")).value)
    return [item for index, item in enumerate(args[0], start=1)
            if index != position]


@_register("index-of", (2,))
def fn_index_of(args: list[Sequence], ctx: DynamicContext) -> Sequence:
    target = _optional_atomic(args[1], "fn:index-of")
    if target is None:
        return []
    result = []
    for index, value in enumerate(atomize(args[0]), start=1):
        try:
            if value.type is xs.untypedAtomic:
                value = cast(value, xs.string)
            if value_compare(value, "eq", target):
                result.append(integer(index))
        except XQueryError:
            continue
    return result


@_register("exactly-one", (1,))
def fn_exactly_one(args: list[Sequence], ctx: DynamicContext) -> Sequence:
    if len(args[0]) != 1:
        raise DynamicError("FORG0005", "fn:exactly-one: sequence length != 1")
    return args[0]


@_register("zero-or-one", (1,))
def fn_zero_or_one(args: list[Sequence], ctx: DynamicContext) -> Sequence:
    if len(args[0]) > 1:
        raise DynamicError("FORG0003", "fn:zero-or-one: more than one item")
    return args[0]


@_register("one-or-more", (1,))
def fn_one_or_more(args: list[Sequence], ctx: DynamicContext) -> Sequence:
    if not args[0]:
        raise DynamicError("FORG0004", "fn:one-or-more: empty sequence")
    return args[0]


@_register("deep-equal", (2,))
def fn_deep_equal(args: list[Sequence], ctx: DynamicContext) -> Sequence:
    return [boolean(deep_equal(args[0], args[1]))]


@_register("unordered", (1,))
def fn_unordered(args: list[Sequence], ctx: DynamicContext) -> Sequence:
    return args[0]


# ---------------------------------------------------------------------------
# Numerics


@_register("number", (0, 1))
def fn_number(args: list[Sequence], ctx: DynamicContext) -> Sequence:
    if args:
        value = _optional_atomic(args[0], "fn:number")
    else:
        item = ctx.focus_item
        value = atomize([item])[0] if item is not None else None
    if value is None:
        return [double(math.nan)]
    try:
        return [cast(value, xs.double)]
    except XQueryError:
        return [double(math.nan)]


def _aggregate(values: list[AtomicValue], who: str) -> list[AtomicValue]:
    return [_numeric(v) for v in values]


@_register("sum", (1, 2))
def fn_sum(args: list[Sequence], ctx: DynamicContext) -> Sequence:
    values = _aggregate(atomize(args[0]), "fn:sum")
    if not values:
        return args[1] if len(args) == 2 else [integer(0)]
    if any(v.type is xs.double or v.type is xs.float for v in values):
        return [double(sum(float(v.value) for v in values))]
    if any(v.type.derives_from(xs.decimal) and not v.type.derives_from(xs.integer)
           for v in values):
        return [AtomicValue(sum(Decimal(str(v.value)) for v in values), xs.decimal)]
    return [integer(sum(int(v.value) for v in values))]


@_register("avg", (1,))
def fn_avg(args: list[Sequence], ctx: DynamicContext) -> Sequence:
    values = _aggregate(atomize(args[0]), "fn:avg")
    if not values:
        return []
    return [double(sum(float(v.value) for v in values) / len(values))]


@_register("max", (1,))
def fn_max(args: list[Sequence], ctx: DynamicContext) -> Sequence:
    values = atomize(args[0])
    if not values:
        return []
    best = values[0]
    if best.type is xs.untypedAtomic:
        best = cast(best, xs.double)
    for value in values[1:]:
        if value.type is xs.untypedAtomic:
            value = cast(value, xs.double)
        if value_compare(value, "gt", best):
            best = value
    return [best]


@_register("min", (1,))
def fn_min(args: list[Sequence], ctx: DynamicContext) -> Sequence:
    values = atomize(args[0])
    if not values:
        return []
    best = values[0]
    if best.type is xs.untypedAtomic:
        best = cast(best, xs.double)
    for value in values[1:]:
        if value.type is xs.untypedAtomic:
            value = cast(value, xs.double)
        if value_compare(value, "lt", best):
            best = value
    return [best]


@_register("abs", (1,))
def fn_abs(args: list[Sequence], ctx: DynamicContext) -> Sequence:
    value = _optional_atomic(args[0], "fn:abs")
    if value is None:
        return []
    value = _numeric(value)
    return [AtomicValue(abs(value.value), value.type)]


@_register("floor", (1,))
def fn_floor(args: list[Sequence], ctx: DynamicContext) -> Sequence:
    value = _optional_atomic(args[0], "fn:floor")
    if value is None:
        return []
    value = _numeric(value)
    return [AtomicValue(type(value.value)(math.floor(float(value.value))), value.type)]


@_register("ceiling", (1,))
def fn_ceiling(args: list[Sequence], ctx: DynamicContext) -> Sequence:
    value = _optional_atomic(args[0], "fn:ceiling")
    if value is None:
        return []
    value = _numeric(value)
    return [AtomicValue(type(value.value)(math.ceil(float(value.value))), value.type)]


@_register("round", (1,))
def fn_round(args: list[Sequence], ctx: DynamicContext) -> Sequence:
    value = _optional_atomic(args[0], "fn:round")
    if value is None:
        return []
    value = _numeric(value)
    return [AtomicValue(
        type(value.value)(math.floor(float(value.value) + 0.5)), value.type)]


# ---------------------------------------------------------------------------
# Strings


@_register("string", (0, 1))
def fn_string(args: list[Sequence], ctx: DynamicContext) -> Sequence:
    if args:
        sequence = args[0]
    else:
        if ctx.focus_item is None:
            raise DynamicError("XPDY0002", "fn:string: no context item")
        sequence = [ctx.focus_item]
    if not sequence:
        return [string("")]
    if len(sequence) > 1:
        raise TypeError_("XPTY0004", "fn:string expects at most one item")
    item = sequence[0]
    text = item.string_value() if isinstance(item, (Node, AtomicValue)) else str(item)
    return [string(text)]


@_register_variadic("concat")
def fn_concat(args: list[Sequence], ctx: DynamicContext) -> Sequence:
    if len(args) < 2:
        raise TypeError_("XPST0017", "fn:concat requires at least two arguments")
    return [string("".join(_single_string(arg, "fn:concat") for arg in args))]


@_register("string-join", (2,))
def fn_string_join(args: list[Sequence], ctx: DynamicContext) -> Sequence:
    separator = _single_string(args[1], "fn:string-join")
    return [string(separator.join(
        v.string_value() for v in atomize(args[0])))]


@_register("substring", (2, 3))
def fn_substring(args: list[Sequence], ctx: DynamicContext) -> Sequence:
    text = _single_string(args[0], "fn:substring")
    start = round(float(_numeric(_optional_atomic(args[1], "fn:substring")).value))
    if len(args) == 3:
        length = round(float(_numeric(
            _optional_atomic(args[2], "fn:substring")).value))
        end = start + length
    else:
        end = len(text) + 1
    chars = [ch for position, ch in enumerate(text, start=1)
             if start <= position < end]
    return [string("".join(chars))]


@_register("string-length", (0, 1))
def fn_string_length(args: list[Sequence], ctx: DynamicContext) -> Sequence:
    if args:
        text = _single_string(args[0], "fn:string-length")
    else:
        text = _context_node(ctx, "fn:string-length").string_value()
    return [integer(len(text))]


@_register("normalize-space", (0, 1))
def fn_normalize_space(args: list[Sequence], ctx: DynamicContext) -> Sequence:
    if args:
        text = _single_string(args[0], "fn:normalize-space")
    else:
        text = _context_node(ctx, "fn:normalize-space").string_value()
    return [string(" ".join(text.split()))]


@_register("contains", (2,))
def fn_contains(args: list[Sequence], ctx: DynamicContext) -> Sequence:
    return [boolean(_single_string(args[1], "fn:contains")
                    in _single_string(args[0], "fn:contains"))]


@_register("starts-with", (2,))
def fn_starts_with(args: list[Sequence], ctx: DynamicContext) -> Sequence:
    return [boolean(_single_string(args[0], "fn:starts-with")
                    .startswith(_single_string(args[1], "fn:starts-with")))]


@_register("ends-with", (2,))
def fn_ends_with(args: list[Sequence], ctx: DynamicContext) -> Sequence:
    return [boolean(_single_string(args[0], "fn:ends-with")
                    .endswith(_single_string(args[1], "fn:ends-with")))]


@_register("substring-before", (2,))
def fn_substring_before(args: list[Sequence], ctx: DynamicContext) -> Sequence:
    haystack = _single_string(args[0], "fn:substring-before")
    needle = _single_string(args[1], "fn:substring-before")
    index = haystack.find(needle)
    return [string(haystack[:index] if index >= 0 else "")]


@_register("substring-after", (2,))
def fn_substring_after(args: list[Sequence], ctx: DynamicContext) -> Sequence:
    haystack = _single_string(args[0], "fn:substring-after")
    needle = _single_string(args[1], "fn:substring-after")
    index = haystack.find(needle)
    return [string(haystack[index + len(needle):] if index >= 0 else "")]


@_register("upper-case", (1,))
def fn_upper_case(args: list[Sequence], ctx: DynamicContext) -> Sequence:
    return [string(_single_string(args[0], "fn:upper-case").upper())]


@_register("lower-case", (1,))
def fn_lower_case(args: list[Sequence], ctx: DynamicContext) -> Sequence:
    return [string(_single_string(args[0], "fn:lower-case").lower())]


@_register("translate", (3,))
def fn_translate(args: list[Sequence], ctx: DynamicContext) -> Sequence:
    text = _single_string(args[0], "fn:translate")
    source_map = _single_string(args[1], "fn:translate")
    target_map = _single_string(args[2], "fn:translate")
    table = {}
    for index, ch in enumerate(source_map):
        table[ch] = target_map[index] if index < len(target_map) else None
    return [string("".join(
        table.get(ch, ch) for ch in text if table.get(ch, ch) is not None))]


@_register("matches", (2,))
def fn_matches(args: list[Sequence], ctx: DynamicContext) -> Sequence:
    text = _single_string(args[0], "fn:matches")
    pattern = _single_string(args[1], "fn:matches")
    try:
        return [boolean(re.search(pattern, text) is not None)]
    except re.error as exc:
        raise DynamicError("FORX0002", f"invalid regex {pattern!r}") from exc


@_register("replace", (3,))
def fn_replace(args: list[Sequence], ctx: DynamicContext) -> Sequence:
    text = _single_string(args[0], "fn:replace")
    pattern = _single_string(args[1], "fn:replace")
    replacement = _single_string(args[2], "fn:replace")
    try:
        return [string(re.sub(pattern, replacement, text))]
    except re.error as exc:
        raise DynamicError("FORX0002", f"invalid regex {pattern!r}") from exc


@_register("tokenize", (2,))
def fn_tokenize(args: list[Sequence], ctx: DynamicContext) -> Sequence:
    text = _single_string(args[0], "fn:tokenize")
    pattern = _single_string(args[1], "fn:tokenize")
    if not text:
        return []
    try:
        return [string(token) for token in re.split(pattern, text)]
    except re.error as exc:
        raise DynamicError("FORX0002", f"invalid regex {pattern!r}") from exc


# ---------------------------------------------------------------------------
# Context / names


@_register("position", (0,))
def fn_position(args: list[Sequence], ctx: DynamicContext) -> Sequence:
    if ctx.focus_item is None:
        raise DynamicError("XPDY0002", "fn:position: no context item")
    return [integer(ctx.focus_position)]


@_register("last", (0,))
def fn_last(args: list[Sequence], ctx: DynamicContext) -> Sequence:
    if ctx.focus_item is None:
        raise DynamicError("XPDY0002", "fn:last: no context item")
    return [integer(ctx.focus_size)]


@_register("name", (0, 1))
def fn_name(args: list[Sequence], ctx: DynamicContext) -> Sequence:
    node = _name_arg(args, ctx, "fn:name")
    if node is None:
        return [string("")]
    return [string(node.node_name or "")]


@_register("local-name", (0, 1))
def fn_local_name(args: list[Sequence], ctx: DynamicContext) -> Sequence:
    node = _name_arg(args, ctx, "fn:local-name")
    if node is None:
        return [string("")]
    if isinstance(node, (ElementNode, AttributeNode)):
        return [string(node.local_name)]
    if isinstance(node, ProcessingInstructionNode):
        return [string(node.target)]
    return [string("")]


@_register("namespace-uri", (0, 1))
def fn_namespace_uri(args: list[Sequence], ctx: DynamicContext) -> Sequence:
    node = _name_arg(args, ctx, "fn:namespace-uri")
    if isinstance(node, (ElementNode, AttributeNode)) and node.ns_uri:
        return [AtomicValue(node.ns_uri, xs.anyURI)]
    return [AtomicValue("", xs.anyURI)]


@_register("node-name", (1,))
def fn_node_name(args: list[Sequence], ctx: DynamicContext) -> Sequence:
    if not args[0]:
        return []
    node = args[0][0]
    if isinstance(node, Node) and node.node_name:
        return [AtomicValue(node.node_name, xs.QName)]
    return []


def _name_arg(args: list[Sequence], ctx: DynamicContext, who: str) -> Optional[Node]:
    if args:
        if not args[0]:
            return None
        node = args[0][0]
        if not isinstance(node, Node):
            raise TypeError_("XPTY0004", f"{who} expects a node")
        return node
    return _context_node(ctx, who)


# ---------------------------------------------------------------------------
# Errors / diagnostics


@_register("error", (0, 1, 2))
def fn_error(args: list[Sequence], ctx: DynamicContext) -> Sequence:
    code = "FOER0000"
    message = "fn:error called"
    if len(args) >= 1 and args[0]:
        code = _single_string(args[0], "fn:error")
    if len(args) >= 2:
        message = _single_string(args[1], "fn:error")
    raise DynamicError(code, message)


@_register("trace", (2,))
def fn_trace(args: list[Sequence], ctx: DynamicContext) -> Sequence:
    return args[0]


# ---------------------------------------------------------------------------
# xs:* constructor functions


def _constructor_function(local: str) -> Optional[Builtin]:
    from repro.xdm.types import is_known_type, type_by_name
    if not is_known_type(local):
        return None
    target = type_by_name(local)

    def construct(args: list[Sequence], ctx: DynamicContext) -> Sequence:
        value = _optional_atomic(args[0], f"xs:{local}")
        if value is None:
            return []
        return [cast(value, target)]

    return construct


# ---------------------------------------------------------------------------
# xrpc:* helpers (paper section 5, "Advanced Pushdown")


_XRPC_URI = re.compile(r"^xrpc://([^/]+)(/.*)?$")


@_register("xrpc:host", (1,))
def xrpc_host(args: list[Sequence], ctx: DynamicContext) -> Sequence:
    url = _single_string(args[0], "xrpc:host")
    match = _XRPC_URI.match(url)
    if match is None:
        return [string("localhost")]
    return [string(match.group(1))]


@_register("xrpc:path", (1,))
def xrpc_path(args: list[Sequence], ctx: DynamicContext) -> Sequence:
    url = _single_string(args[0], "xrpc:path")
    match = _XRPC_URI.match(url)
    if match is None:
        return [string(url)]
    path = match.group(2) or "/"
    return [string(path.lstrip("/"))]
