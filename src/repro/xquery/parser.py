"""Recursive-descent parser for the XQuery subset (+ XQUF + XRPC).

The grammar follows XQuery 1.0 with the paper's extension::

    PrimaryExpr ::= ... | FunctionCall | XRPCCall | ...
    XRPCCall    ::= "execute at" "{" ExprSingle "}" "{" FunctionCall "}"

XQuery keywords are contextual, so the parser decides between keyword
constructs and path steps by lookahead on the lazily-tokenizing
:class:`~repro.xquery.lexer.Lexer`, and switches to raw character
scanning inside direct XML constructors.
"""

from __future__ import annotations

from decimal import Decimal
from typing import Optional

from repro.xdm.atomic import AtomicValue
from repro.xdm.types import xs, type_by_name, is_known_type
from repro.xquery.lexer import Lexer, Token
from repro.xquery import xast as A

_AXES = {
    "child", "descendant", "attribute", "self", "descendant-or-self",
    "following-sibling", "following", "parent", "ancestor",
    "preceding-sibling", "preceding", "ancestor-or-self",
}

_KIND_TESTS = {
    "node", "text", "comment", "processing-instruction",
    "element", "attribute", "document-node", "schema-element",
    "schema-attribute",
}

_COMPUTED_CONSTRUCTORS = {
    "element", "attribute", "text", "comment", "document",
    "processing-instruction",
}

_GENERAL_OPS = {"=", "!=", "<", "<=", ">", ">="}
_VALUE_OPS = {"eq", "ne", "lt", "le", "gt", "ge"}
_NODE_OPS = {"is", "<<", ">>"}


def parse_main_module(source: str) -> A.QueryModule:
    """Parse a main module (prolog + query body)."""
    return _Parser(source).parse_module(expect_library=False)


def parse_library_module(source: str) -> A.QueryModule:
    """Parse a library module (``module namespace p = "uri"; ...``)."""
    return _Parser(source).parse_module(expect_library=True)


def parse_expression(source: str) -> A.Expr:
    """Parse a bare expression (used in tests and internal tooling)."""
    parser = _Parser(source)
    expr = parser.parse_expr()
    parser.expect_eof()
    return expr


class _Parser:
    def __init__(self, source: str) -> None:
        self.lexer = Lexer(source)

    # ------------------------------------------------------------------
    # Token helpers

    def peek(self) -> Token:
        return self.lexer.peek()

    def next(self) -> Token:
        return self.lexer.next()

    def accept_symbol(self, symbol: str) -> bool:
        saved = self.lexer.save()
        token = self.lexer.next()
        if token.is_symbol(symbol):
            return True
        self.lexer.restore(saved)
        return False

    def expect_symbol(self, symbol: str) -> None:
        token = self.lexer.next()
        if not token.is_symbol(symbol):
            raise self.lexer.error(
                f"expected {symbol!r}, found {token.value!r}", token.pos)

    def accept_name(self, name: str) -> bool:
        saved = self.lexer.save()
        token = self.lexer.next()
        if token.is_name(name):
            return True
        self.lexer.restore(saved)
        return False

    def expect_name(self, name: str) -> None:
        token = self.lexer.next()
        if not token.is_name(name):
            raise self.lexer.error(
                f"expected keyword {name!r}, found {token.value!r}", token.pos)

    def expect_kind(self, kind: str) -> Token:
        token = self.lexer.next()
        if token.kind != kind:
            raise self.lexer.error(
                f"expected {kind}, found {token.value!r}", token.pos)
        return token

    def expect_eof(self) -> None:
        token = self.lexer.next()
        if token.kind != "EOF":
            raise self.lexer.error(
                f"unexpected trailing input {token.value!r}", token.pos)

    def lookahead_symbol_after_name(self) -> Optional[str]:
        """Peek the symbol token following the next (NAME) token."""
        saved = self.lexer.save()
        self.lexer.next()
        token = self.lexer.next()
        self.lexer.restore(saved)
        return token.value if token.kind == "SYMBOL" else None

    # ------------------------------------------------------------------
    # Source positions

    def _mark(self) -> int:
        """Offset of the next significant token (for AST position stamps)."""
        self.lexer.skip_trivia()
        return self.lexer.pos

    def _stamp(self, node, start: int):
        # First stamp wins: nested parses run before their wrappers, so
        # a node keeps the offset of its own first token.
        if getattr(node, "pos", 0) is None:
            node.pos = start
        return node

    # ------------------------------------------------------------------
    # Modules / prolog

    def parse_module(self, expect_library: bool) -> A.QueryModule:
        module_ns: Optional[A.NamespaceDecl] = None
        namespaces: list[A.NamespaceDecl] = []
        imports: list[A.ModuleImport] = []
        schema_imports: list[A.SchemaImport] = []
        options: list[A.OptionDecl] = []
        variables: list[A.VarDecl] = []
        functions: list[A.FunctionDecl] = []

        saved = self.lexer.save()
        token = self.peek()
        if token.is_name("xquery"):
            self.next()
            self.expect_name("version")
            self.expect_kind("STRING")
            if self.accept_name("encoding"):
                self.expect_kind("STRING")
            self.expect_symbol(";")

        if self.peek().is_name("module"):
            saved = self.lexer.save()
            self.next()
            if self.accept_name("namespace"):
                prefix = self.expect_kind("NAME").value
                self.expect_symbol("=")
                uri = self.expect_kind("STRING").value
                self.expect_symbol(";")
                module_ns = A.NamespaceDecl(prefix, uri)
            else:
                self.lexer.restore(saved)

        if expect_library and module_ns is None:
            raise self.lexer.error("expected 'module namespace' declaration")

        # Prolog declarations.
        while True:
            token = self.peek()
            if token.is_name("declare"):
                saved = self.lexer.save()
                self.next()
                if not self._parse_declare(namespaces, options, variables, functions):
                    self.lexer.restore(saved)
                    break
            elif token.is_name("import"):
                self.next()
                if self.accept_name("module"):
                    imports.append(self._parse_module_import())
                elif self.accept_name("schema"):
                    schema_imports.append(self._parse_schema_import())
                else:
                    raise self.lexer.error("expected 'module' or 'schema' after import")
            else:
                break

        body: Optional[A.Expr] = None
        if module_ns is None:
            body = self.parse_expr()
            self.expect_eof()
        else:
            self.expect_eof()

        return A.QueryModule(
            kind="library" if module_ns is not None else "main",
            module_namespace=module_ns,
            namespaces=namespaces,
            imports=imports,
            schema_imports=schema_imports,
            options=options,
            variables=variables,
            functions=functions,
            body=body,
        )

    def _parse_declare(self, namespaces, options, variables, functions) -> bool:
        """Parse one `declare ...;` having consumed 'declare'.

        Returns False if the following token does not start a recognised
        declaration (the caller then backtracks: 'declare' may be a path
        step in the query body).
        """
        token = self.peek()
        if token.is_name("namespace"):
            self.next()
            prefix = self.expect_kind("NAME").value
            self.expect_symbol("=")
            uri = self.expect_kind("STRING").value
            self.expect_symbol(";")
            namespaces.append(A.NamespaceDecl(prefix, uri))
            return True
        if token.is_name("default"):
            self.next()
            which = self.next()  # element | function
            self.expect_name("namespace")
            uri = self.expect_kind("STRING").value
            self.expect_symbol(";")
            namespaces.append(A.NamespaceDecl(f"(default {which.value})", uri))
            return True
        if token.is_name("option"):
            self.next()
            name = self.expect_kind("NAME").value
            value = self.expect_kind("STRING").value
            self.expect_symbol(";")
            options.append(A.OptionDecl(name, value))
            return True
        if token.is_name("variable"):
            self.next()
            var_token = self.expect_kind("VAR")
            seq_type = A.SequenceType.zero_or_more_items()
            if self.accept_name("as"):
                seq_type = self.parse_sequence_type()
            if self.accept_name("external"):
                decl = A.VarDecl(var_token.value, seq_type, None, external=True)
            else:
                self.expect_symbol(":=")
                value = self.parse_expr_single()
                decl = A.VarDecl(var_token.value, seq_type, value)
            variables.append(self._stamp(decl, var_token.pos))
            self.expect_symbol(";")
            return True
        if token.is_name("function") or token.is_name("updating"):
            updating = False
            if token.is_name("updating"):
                self.next()
                updating = True
            self.expect_name("function")
            functions.append(self._parse_function_decl(updating))
            return True
        if token.is_name("boundary-space"):
            self.next()
            self.next()  # preserve | strip
            self.expect_symbol(";")
            return True
        if token.is_name("ordering"):
            self.next()
            self.next()  # ordered | unordered
            self.expect_symbol(";")
            return True
        if token.is_name("copy-namespaces"):
            self.next()
            self.next()
            self.expect_symbol(",")
            self.next()
            self.expect_symbol(";")
            return True
        if token.is_name("base-uri") or token.is_name("construction"):
            self.next()
            self.next()
            self.expect_symbol(";")
            return True
        return False

    def _parse_function_decl(self, updating: bool) -> A.FunctionDecl:
        name_token = self.expect_kind("NAME")
        name = name_token.value
        self.expect_symbol("(")
        params: list[A.Param] = []
        if not self.accept_symbol(")"):
            while True:
                var = self.expect_kind("VAR").value
                seq_type = A.SequenceType.zero_or_more_items()
                if self.accept_name("as"):
                    seq_type = self.parse_sequence_type()
                params.append(A.Param(var, seq_type))
                if self.accept_symbol(")"):
                    break
                self.expect_symbol(",")
        return_type = A.SequenceType.zero_or_more_items()
        if self.accept_name("as"):
            return_type = self.parse_sequence_type()
        if self.accept_name("external"):
            body: Optional[A.Expr] = None
        else:
            self.expect_symbol("{")
            body = self.parse_expr()
            self.expect_symbol("}")
        self.expect_symbol(";")
        decl = A.FunctionDecl(name, params, return_type, body, updating=updating)
        return self._stamp(decl, name_token.pos)

    def _parse_module_import(self) -> A.ModuleImport:
        self.expect_name("namespace")
        prefix = self.expect_kind("NAME").value
        self.expect_symbol("=")
        uri = self.expect_kind("STRING").value
        locations: list[str] = []
        if self.accept_name("at"):
            locations.append(self.expect_kind("STRING").value)
            while self.accept_symbol(","):
                locations.append(self.expect_kind("STRING").value)
        self.expect_symbol(";")
        return A.ModuleImport(prefix, uri, locations)

    def _parse_schema_import(self) -> A.SchemaImport:
        prefix: Optional[str] = None
        if self.accept_name("namespace"):
            prefix = self.expect_kind("NAME").value
            self.expect_symbol("=")
        uri = self.expect_kind("STRING").value
        locations: list[str] = []
        if self.accept_name("at"):
            locations.append(self.expect_kind("STRING").value)
            while self.accept_symbol(","):
                locations.append(self.expect_kind("STRING").value)
        self.expect_symbol(";")
        return A.SchemaImport(prefix, uri, locations)

    # ------------------------------------------------------------------
    # Expressions

    def parse_expr(self) -> A.Expr:
        start = self._mark()
        first = self.parse_expr_single()
        if not self.accept_symbol(","):
            return first
        items = [first, self.parse_expr_single()]
        while self.accept_symbol(","):
            items.append(self.parse_expr_single())
        return self._stamp(A.SequenceExpr(items), start)

    def parse_expr_single(self) -> A.Expr:
        start = self._mark()
        return self._stamp(self._parse_expr_single_inner(), start)

    def _parse_expr_single_inner(self) -> A.Expr:
        token = self.peek()
        if token.kind == "NAME":
            value = token.value
            if value in ("for", "let") and self._next_is_var_after(1):
                return self._parse_flwor()
            if value in ("some", "every") and self._next_is_var_after(1):
                return self._parse_quantified()
            if value == "if" and self.lookahead_symbol_after_name() == "(":
                return self._parse_if()
            if value == "typeswitch" and self.lookahead_symbol_after_name() == "(":
                return self._parse_typeswitch()
            if value == "insert" and self._next_name_is(("node", "nodes")):
                return self._parse_insert()
            if value == "delete" and self._next_name_is(("node", "nodes")):
                return self._parse_delete()
            if value == "replace" and self._next_name_is(("node", "value")):
                return self._parse_replace()
            if value == "rename" and self._next_name_is(("node",)):
                return self._parse_rename()
        return self.parse_or_expr()

    def _next_is_var_after(self, skip: int) -> bool:
        saved = self.lexer.save()
        for _ in range(skip):
            self.lexer.next()
        token = self.lexer.next()
        self.lexer.restore(saved)
        return token.kind == "VAR"

    def _next_name_is(self, names: tuple[str, ...]) -> bool:
        saved = self.lexer.save()
        self.lexer.next()
        token = self.lexer.next()
        self.lexer.restore(saved)
        return token.kind == "NAME" and token.value in names

    # -- FLWOR ---------------------------------------------------------

    def _parse_flwor(self) -> A.Expr:
        clauses: list[A.FLWORClause] = []
        while True:
            token = self.peek()
            if token.is_name("for") and self._next_is_var_after(1):
                self.next()
                while True:
                    var = self.expect_kind("VAR").value
                    position_var = None
                    if self.accept_name("at"):
                        position_var = self.expect_kind("VAR").value
                    if self.accept_name("as"):
                        self.parse_sequence_type()  # accepted, not enforced here
                    self.expect_name("in")
                    source = self.parse_expr_single()
                    clauses.append(A.ForClause(var, position_var, source))
                    if not self.accept_symbol(","):
                        break
            elif token.is_name("let") and self._next_is_var_after(1):
                self.next()
                while True:
                    var = self.expect_kind("VAR").value
                    if self.accept_name("as"):
                        self.parse_sequence_type()
                    self.expect_symbol(":=")
                    value = self.parse_expr_single()
                    clauses.append(A.LetClause(var, value))
                    if not self.accept_symbol(","):
                        break
            else:
                break

        if self.peek().is_name("where"):
            self.next()
            clauses.append(A.WhereClause(self.parse_expr_single()))

        stable = False
        if self.peek().is_name("stable"):
            self.next()
            stable = True
        if self.peek().is_name("order"):
            self.next()
            self.expect_name("by")
            specs = [self._parse_order_spec()]
            while self.accept_symbol(","):
                specs.append(self._parse_order_spec())
            clauses.append(A.OrderByClause(specs, stable=stable))

        self.expect_name("return")
        return_expr = self.parse_expr_single()
        return A.FLWOR(clauses, return_expr)

    def _parse_order_spec(self) -> A.OrderSpec:
        key = self.parse_expr_single()
        descending = False
        if self.peek().is_name("ascending"):
            self.next()
        elif self.peek().is_name("descending"):
            self.next()
            descending = True
        empty_least = True
        if self.peek().is_name("empty"):
            self.next()
            which = self.next()
            empty_least = which.value == "least"
        return A.OrderSpec(key, descending, empty_least)

    def _parse_quantified(self) -> A.Expr:
        kind = self.next().value  # some | every
        bindings: list[tuple[str, A.Expr]] = []
        while True:
            var = self.expect_kind("VAR").value
            if self.accept_name("as"):
                self.parse_sequence_type()
            self.expect_name("in")
            source = self.parse_expr_single()
            bindings.append((var, source))
            if not self.accept_symbol(","):
                break
        self.expect_name("satisfies")
        satisfies = self.parse_expr_single()
        return A.Quantified(kind, bindings, satisfies)

    def _parse_if(self) -> A.Expr:
        self.expect_name("if")
        self.expect_symbol("(")
        condition = self.parse_expr()
        self.expect_symbol(")")
        self.expect_name("then")
        then_branch = self.parse_expr_single()
        self.expect_name("else")
        else_branch = self.parse_expr_single()
        return A.IfExpr(condition, then_branch, else_branch)

    def _parse_typeswitch(self) -> A.Expr:
        self.expect_name("typeswitch")
        self.expect_symbol("(")
        operand = self.parse_expr()
        self.expect_symbol(")")
        cases: list[A.TypeSwitchCase] = []
        while self.peek().is_name("case"):
            self.next()
            var = None
            token = self.peek()
            if token.kind == "VAR":
                var = self.next().value
                self.expect_name("as")
            seq_type = self.parse_sequence_type()
            self.expect_name("return")
            body = self.parse_expr_single()
            cases.append(A.TypeSwitchCase(var, seq_type, body))
        if not cases:
            raise self.lexer.error("typeswitch requires at least one case")
        self.expect_name("default")
        default_var = None
        if self.peek().kind == "VAR":
            default_var = self.next().value
        self.expect_name("return")
        default_body = self.parse_expr_single()
        default = A.TypeSwitchCase(default_var, None, default_body)
        return A.TypeSwitch(operand, cases, default)

    # -- XQUF ------------------------------------------------------------

    def _parse_insert(self) -> A.Expr:
        self.expect_name("insert")
        self.next()  # node | nodes
        source = self.parse_expr_single()
        position = "into"
        if self.accept_name("as"):
            which = self.next()  # first | last
            position = which.value
            self.expect_name("into")
        elif self.accept_name("into"):
            position = "into"
        elif self.accept_name("before"):
            position = "before"
        elif self.accept_name("after"):
            position = "after"
        else:
            raise self.lexer.error("expected into/before/after in insert expression")
        target = self.parse_expr_single()
        return A.InsertExpr(source, target, position)

    def _parse_delete(self) -> A.Expr:
        self.expect_name("delete")
        self.next()  # node | nodes
        return A.DeleteExpr(self.parse_expr_single())

    def _parse_replace(self) -> A.Expr:
        self.expect_name("replace")
        value_of = False
        if self.accept_name("value"):
            self.expect_name("of")
            value_of = True
        self.expect_name("node")
        target = self.parse_expr_single()
        self.expect_name("with")
        replacement = self.parse_expr_single()
        return A.ReplaceExpr(target, replacement, value_of)

    def _parse_rename(self) -> A.Expr:
        self.expect_name("rename")
        self.expect_name("node")
        target = self.parse_expr_single()
        self.expect_name("as")
        new_name = self.parse_expr_single()
        return A.RenameExpr(target, new_name)

    # -- XRPC --------------------------------------------------------------

    def _parse_execute_at(self) -> A.Expr:
        start = self._mark()
        self.expect_name("execute")
        self.expect_name("at")
        self.expect_symbol("{")
        destination = self.parse_expr_single()
        self.expect_symbol("}")
        self.expect_symbol("{")
        call = self._parse_function_call_expr()
        self.expect_symbol("}")
        return self._stamp(A.ExecuteAt(destination, call), start)

    def _parse_function_call_expr(self) -> A.FunctionCall:
        name_token = self.expect_kind("NAME")
        self.expect_symbol("(")
        args: list[A.Expr] = []
        if not self.accept_symbol(")"):
            while True:
                args.append(self.parse_expr_single())
                if self.accept_symbol(")"):
                    break
                self.expect_symbol(",")
        call = A.FunctionCall(name_token.value, args)
        return self._stamp(call, name_token.pos)

    # -- binary operator ladder -------------------------------------------

    def parse_or_expr(self) -> A.Expr:
        left = self.parse_and_expr()
        while self.peek().is_name("or"):
            self.next()
            left = A.Logical("or", left, self.parse_and_expr())
        return left

    def parse_and_expr(self) -> A.Expr:
        left = self.parse_comparison_expr()
        while self.peek().is_name("and"):
            self.next()
            left = A.Logical("and", left, self.parse_comparison_expr())
        return left

    def parse_comparison_expr(self) -> A.Expr:
        left = self.parse_range_expr()
        token = self.peek()
        if token.kind == "SYMBOL" and token.value in _GENERAL_OPS:
            self.next()
            return A.Comparison("general", token.value, left, self.parse_range_expr())
        if token.kind == "SYMBOL" and token.value in _NODE_OPS:
            self.next()
            return A.Comparison("node", token.value, left, self.parse_range_expr())
        if token.kind == "NAME" and token.value in _VALUE_OPS:
            self.next()
            return A.Comparison("value", token.value, left, self.parse_range_expr())
        if token.kind == "NAME" and token.value in _NODE_OPS:
            self.next()
            return A.Comparison("node", token.value, left, self.parse_range_expr())
        return left

    def parse_range_expr(self) -> A.Expr:
        left = self.parse_additive_expr()
        if self.peek().is_name("to"):
            self.next()
            return A.RangeExpr(left, self.parse_additive_expr())
        return left

    def parse_additive_expr(self) -> A.Expr:
        left = self.parse_multiplicative_expr()
        while True:
            token = self.peek()
            if token.is_symbol("+") or token.is_symbol("-"):
                self.next()
                left = A.Arithmetic(token.value, left, self.parse_multiplicative_expr())
            else:
                return left

    def parse_multiplicative_expr(self) -> A.Expr:
        left = self.parse_union_expr()
        while True:
            token = self.peek()
            if token.is_symbol("*"):
                self.next()
                left = A.Arithmetic("*", left, self.parse_union_expr())
            elif token.kind == "NAME" and token.value in ("div", "idiv", "mod"):
                self.next()
                left = A.Arithmetic(token.value, left, self.parse_union_expr())
            else:
                return left

    def parse_union_expr(self) -> A.Expr:
        left = self.parse_intersect_expr()
        while True:
            token = self.peek()
            if token.is_symbol("|") or token.is_name("union"):
                self.next()
                left = A.SetOp("union", left, self.parse_intersect_expr())
            else:
                return left

    def parse_intersect_expr(self) -> A.Expr:
        left = self.parse_instanceof_expr()
        while True:
            token = self.peek()
            if token.kind == "NAME" and token.value in ("intersect", "except"):
                self.next()
                left = A.SetOp(token.value, left, self.parse_instanceof_expr())
            else:
                return left

    def parse_instanceof_expr(self) -> A.Expr:
        left = self.parse_treat_expr()
        if self.peek().is_name("instance"):
            self.next()
            self.expect_name("of")
            return A.InstanceOf(left, self.parse_sequence_type())
        return left

    def parse_treat_expr(self) -> A.Expr:
        left = self.parse_castable_expr()
        if self.peek().is_name("treat"):
            self.next()
            self.expect_name("as")
            return A.TreatAs(left, self.parse_sequence_type())
        return left

    def parse_castable_expr(self) -> A.Expr:
        left = self.parse_cast_expr()
        if self.peek().is_name("castable"):
            self.next()
            self.expect_name("as")
            type_name, allow_empty = self._parse_single_type()
            return A.CastableExpr(left, type_name, allow_empty)
        return left

    def parse_cast_expr(self) -> A.Expr:
        left = self.parse_unary_expr()
        if self.peek().is_name("cast"):
            self.next()
            self.expect_name("as")
            type_name, allow_empty = self._parse_single_type()
            return A.CastExpr(left, type_name, allow_empty)
        return left

    def _parse_single_type(self) -> tuple[str, bool]:
        name = self.expect_kind("NAME").value
        allow_empty = self.accept_symbol("?")
        return name, allow_empty

    def parse_unary_expr(self) -> A.Expr:
        token = self.peek()
        if token.is_symbol("-") or token.is_symbol("+"):
            self.next()
            return A.Unary(token.value, self.parse_unary_expr())
        return self.parse_path_expr()

    # -- paths ---------------------------------------------------------------

    def parse_path_expr(self) -> A.Expr:
        token = self.peek()
        if token.is_symbol("/"):
            self.next()
            if self._starts_step():
                steps = self._parse_relative_steps()
                return A.PathExpr(None, steps, absolute="root")
            return A.PathExpr(None, [], absolute="root")
        if token.is_symbol("//"):
            self.next()
            steps = self._parse_relative_steps()
            return A.PathExpr(None, steps, absolute="root-descendant")
        return self._parse_relative_path()

    def _starts_step(self) -> bool:
        token = self.peek()
        if token.kind in ("NAME", "VAR"):
            return True
        if token.kind == "SYMBOL" and token.value in ("@", "*", "..", ".", "("):
            return True
        return False

    def _parse_relative_steps(self) -> list:
        """Steps of an absolute path (after the leading ``/`` or ``//``)."""
        steps: list = list(self._parse_step_as_axis())
        self._parse_more_steps(steps)
        return steps

    def _parse_more_steps(self, steps: list) -> None:
        """Consume ``/ step`` and ``// step`` continuations onto *steps*."""
        while True:
            token = self.peek()
            if token.is_symbol("/"):
                self.next()
                steps.extend(self._parse_step_as_axis())
            elif token.is_symbol("//"):
                self.next()
                steps.append(A.AxisStep("descendant-or-self",
                                        A.KindTest("node")))
                steps.extend(self._parse_step_as_axis())
            else:
                break

    def _parse_relative_path(self) -> A.Expr:
        first = self._parse_step()
        if not (self.peek().is_symbol("/") or self.peek().is_symbol("//")):
            if isinstance(first, A.AxisStep):
                return A.PathExpr(None, [first])
            return first
        steps: list[A.AxisStep] = []
        if isinstance(first, A.AxisStep):
            start: Optional[A.Expr] = None
            steps.append(first)
        else:
            start = first
        self._parse_more_steps(steps)
        return A.PathExpr(start, steps, absolute="none")

    def _parse_step_as_axis(self) -> list:
        """A non-initial step: an axis step, or a filter/primary expression
        evaluated once per context node (general StepExpr semantics)."""
        step = self._parse_step()
        return [step]

    def _parse_step(self):
        """Returns an AxisStep (for axis steps) or an Expr (filter expr)."""
        start = self._mark()
        return self._stamp(self._parse_step_inner(), start)

    def _parse_step_inner(self):
        token = self.peek()

        if token.is_symbol(".."):
            self.next()
            return A.AxisStep("parent", A.KindTest("node"),
                              self._parse_predicates())
        if token.is_symbol("@"):
            self.next()
            node_test = self._parse_node_test()
            return A.AxisStep("attribute", node_test, self._parse_predicates())
        if token.kind == "NAME" and token.value in _AXES:
            saved = self.lexer.save()
            self.next()
            if self.lexer.raw_startswith("::"):
                self.lexer.raw_advance(2)
                node_test = self._parse_node_test()
                return A.AxisStep(token.value, node_test, self._parse_predicates())
            self.lexer.restore(saved)
        if token.kind == "NAME" and token.value.split(":")[0] in _KIND_TESTS \
                and self.lookahead_symbol_after_name() == "(" \
                and token.value in _KIND_TESTS:
            node_test = self._parse_node_test()
            axis = "attribute" if node_test.kind == "attribute" else "child"
            return A.AxisStep(axis, node_test, self._parse_predicates())
        if token.is_symbol("*"):
            node_test = self._parse_node_test()
            return A.AxisStep("child", node_test, self._parse_predicates())
        if token.kind == "NAME" and self.lookahead_symbol_after_name() != "(":
            if not self._looks_like_keyword_primary():
                name = self.next().value
                return A.AxisStep("child", _name_test_from(name),
                                  self._parse_predicates())

        # Otherwise: a primary expression, possibly with predicates.
        primary = self.parse_primary_expr()
        predicates = self._parse_predicates()
        if predicates:
            return A.FilterExpr(primary, predicates)
        return primary

    def _looks_like_keyword_primary(self) -> bool:
        """Detect keyword-led primary expressions in step position.

        Distinguishes ``text { ... }`` (computed constructor) and
        ``ordered { ... }`` from plain child-axis name tests named
        ``text`` / ``ordered``.
        """
        token = self.peek()
        if token.kind != "NAME":
            return False
        keyword = token.value
        simple_brace = _COMPUTED_CONSTRUCTORS | {"ordered", "unordered", "validate"}
        after = self.lookahead_symbol_after_name()
        if keyword in simple_brace and after == "{":
            return True
        if keyword == "execute" and self._next_name_is(("at",)):
            return True
        if keyword in ("element", "attribute", "processing-instruction"):
            saved = self.lexer.save()
            self.lexer.next()
            second = self.lexer.next()
            third = self.lexer.next()
            self.lexer.restore(saved)
            if second.kind == "NAME" and third.is_symbol("{"):
                return True
        return False

    def _parse_node_test(self) -> A.NodeTest:
        token = self.peek()
        if token.is_symbol("*"):
            self.next()
            # '*:local' — wildcard prefix with a fixed local name.
            if self.lexer.raw_peek() == ":" and self.lexer.raw_peek(1) not in (":", ""):
                self.lexer.raw_advance()
                local = self.lexer._read_qname()
                return A.NameTest("*", local)
            return A.NameTest(None, "*")
        name_token = self.expect_kind("NAME")
        name = name_token.value
        if name in _KIND_TESTS and self.peek().is_symbol("("):
            self.next()
            argument: Optional[str] = None
            inner = self.peek()
            if inner.kind == "NAME":
                argument = self.next().value
            elif inner.kind == "STRING":
                argument = self.next().value
            elif inner.is_symbol("*"):
                self.next()
                argument = None
            self.expect_symbol(")")
            kind = "document" if name == "document-node" else name
            if name == "schema-element":
                kind = "element"
            if name == "schema-attribute":
                kind = "attribute"
            return A.KindTest(kind, argument)
        return _name_test_from(name)

    def _parse_predicates(self) -> list[A.Expr]:
        predicates: list[A.Expr] = []
        while self.accept_symbol("["):
            predicates.append(self.parse_expr())
            self.expect_symbol("]")
        return predicates

    # -- primary --------------------------------------------------------------

    def parse_primary_expr(self) -> A.Expr:
        start = self._mark()
        return self._stamp(self._parse_primary_expr_inner(), start)

    def _parse_primary_expr_inner(self) -> A.Expr:
        token = self.peek()

        if token.kind == "INTEGER":
            self.next()
            return A.Literal(AtomicValue(int(token.value), xs.integer))
        if token.kind == "DECIMAL":
            self.next()
            return A.Literal(AtomicValue(Decimal(token.value), xs.decimal))
        if token.kind == "DOUBLE":
            self.next()
            return A.Literal(AtomicValue(float(token.value), xs.double))
        if token.kind == "STRING":
            self.next()
            return A.Literal(AtomicValue(token.value, xs.string))
        if token.kind == "VAR":
            self.next()
            return A.VarRef(token.value)
        if token.is_symbol("("):
            self.next()
            if self.accept_symbol(")"):
                return A.SequenceExpr([])
            expr = self.parse_expr()
            self.expect_symbol(")")
            return expr
        if token.is_symbol("."):
            self.next()
            return A.ContextItem()
        if token.is_symbol("<"):
            return self._parse_direct_constructor()
        if token.kind == "NAME":
            value = token.value
            if value == "execute" and self._next_name_is(("at",)):
                # XRPCCall is a PrimaryExpr per the paper's grammar, so
                # it composes with comparisons, arithmetic, paths, ...
                return self._parse_execute_at()
            if value in ("ordered", "unordered") \
                    and self.lookahead_symbol_after_name() == "{":
                self.next()
                self.expect_symbol("{")
                expr = self.parse_expr()
                self.expect_symbol("}")
                return expr
            if value == "validate" and self.lookahead_symbol_after_name() == "{":
                self.next()
                self.expect_symbol("{")
                expr = self.parse_expr()
                self.expect_symbol("}")
                return expr
            computed = self._try_parse_computed_constructor()
            if computed is not None:
                return computed
            if self.lookahead_symbol_after_name() == "(":
                return self._parse_function_call_expr()
        raise self.lexer.error(
            f"unexpected token {token.value!r} in expression", token.pos)

    def _try_parse_computed_constructor(self) -> Optional[A.Expr]:
        token = self.peek()
        if token.kind != "NAME" or token.value not in _COMPUTED_CONSTRUCTORS:
            return None
        saved = self.lexer.save()
        keyword = self.next().value
        name: Optional[str | A.Expr] = None

        if keyword in ("element", "attribute", "processing-instruction"):
            after = self.peek()
            if after.kind == "NAME":
                name = self.next().value
            elif after.is_symbol("{"):
                self.next()
                name = self.parse_expr()
                self.expect_symbol("}")
            else:
                self.lexer.restore(saved)
                return None

        if not self.peek().is_symbol("{"):
            self.lexer.restore(saved)
            return None
        self.next()
        content: Optional[A.Expr] = None
        if not self.peek().is_symbol("}"):
            content = self.parse_expr()
        self.expect_symbol("}")

        if keyword == "element":
            return A.ComputedElement(name, content)
        if keyword == "attribute":
            return A.ComputedAttribute(name, content)
        if keyword == "text":
            return A.ComputedText(content)
        if keyword == "comment":
            return A.ComputedComment(content)
        if keyword == "document":
            return A.ComputedDocument(content)
        return A.ComputedPI(name if name is not None else "", content)

    # -- direct constructors -----------------------------------------------

    def _parse_direct_constructor(self) -> A.Expr:
        """Parse ``<name attr="...">content</name>`` taking raw control."""
        lexer = self.lexer
        self.expect_symbol("<")
        # Name must follow immediately (no trivia skip distinction needed:
        # in primary position '<' always begins a constructor).
        name = lexer._read_qname()

        attributes: list[tuple[str, list[A.ContentPart]]] = []
        while True:
            self._skip_raw_whitespace()
            if lexer.raw_startswith("/>") or lexer.raw_startswith(">"):
                break
            attr_name = lexer._read_qname()
            self._skip_raw_whitespace()
            if lexer.raw_peek() != "=":
                raise lexer.error("expected '=' in attribute")
            lexer.raw_advance()
            self._skip_raw_whitespace()
            quote = lexer.raw_peek()
            if quote not in ("'", '"'):
                raise lexer.error("attribute value must be quoted")
            lexer.raw_advance()
            attributes.append((attr_name, self._parse_attr_value(quote)))

        if lexer.raw_startswith("/>"):
            lexer.raw_advance(2)
            return A.DirectElement(name, attributes, [])
        lexer.raw_advance(1)  # consume '>'

        content = self._parse_constructor_content(name)
        return A.DirectElement(name, attributes, content)

    def _skip_raw_whitespace(self) -> None:
        while self.lexer.raw_peek() in (" ", "\t", "\r", "\n") and self.lexer.raw_peek():
            self.lexer.raw_advance()

    def _parse_attr_value(self, quote: str) -> list[A.ContentPart]:
        lexer = self.lexer
        parts: list[A.ContentPart] = []
        buffer: list[str] = []
        while True:
            ch = lexer.raw_peek()
            if not ch:
                raise lexer.error("unterminated attribute value")
            if ch == quote:
                if lexer.raw_peek(1) == quote:
                    buffer.append(quote)
                    lexer.raw_advance(2)
                    continue
                lexer.raw_advance()
                break
            if ch == "{":
                if lexer.raw_peek(1) == "{":
                    buffer.append("{")
                    lexer.raw_advance(2)
                    continue
                lexer.raw_advance()
                if buffer:
                    parts.append("".join(buffer))
                    buffer.clear()
                parts.append(self.parse_expr())
                self.expect_symbol("}")
                continue
            if ch == "}":
                if lexer.raw_peek(1) == "}":
                    buffer.append("}")
                    lexer.raw_advance(2)
                    continue
                raise lexer.error("'}' must be escaped as '}}' in attribute value")
            if ch == "&":
                buffer.append(lexer._read_entity())
                continue
            buffer.append(ch)
            lexer.raw_advance()
        if buffer:
            parts.append("".join(buffer))
        return parts

    def _parse_constructor_content(self, name: str) -> list[A.ContentPart]:
        lexer = self.lexer
        parts: list[A.ContentPart] = []
        buffer: list[str] = []

        def flush(boundary: bool) -> None:
            """Emit buffered text; drop whitespace-only boundary text."""
            if not buffer:
                return
            text = "".join(buffer)
            buffer.clear()
            if boundary and not text.strip():
                return
            parts.append(text)

        while True:
            ch = lexer.raw_peek()
            if not ch:
                raise lexer.error(f"unterminated element constructor <{name}>")
            if lexer.raw_startswith("</"):
                flush(boundary=True)
                lexer.raw_advance(2)
                closing = lexer._read_qname()
                if closing != name:
                    raise lexer.error(
                        f"mismatched constructor end tag </{closing}>, expected </{name}>")
                self._skip_raw_whitespace()
                if lexer.raw_peek() != ">":
                    raise lexer.error("expected '>' after end tag name")
                lexer.raw_advance()
                return parts
            if lexer.raw_startswith("<!--"):
                flush(boundary=True)
                lexer.raw_advance(4)
                comment_chars = []
                while not lexer.raw_startswith("-->"):
                    if not lexer.raw_peek():
                        raise lexer.error("unterminated comment in constructor")
                    comment_chars.append(lexer.raw_peek())
                    lexer.raw_advance()
                lexer.raw_advance(3)
                parts.append(A.ComputedComment(
                    A.Literal(AtomicValue("".join(comment_chars), xs.string))))
                continue
            if lexer.raw_startswith("<![CDATA["):
                lexer.raw_advance(9)
                while not lexer.raw_startswith("]]>"):
                    if not lexer.raw_peek():
                        raise lexer.error("unterminated CDATA in constructor")
                    buffer.append(lexer.raw_peek())
                    lexer.raw_advance()
                lexer.raw_advance(3)
                continue
            if lexer.raw_startswith("<?"):
                flush(boundary=True)
                lexer.raw_advance(2)
                target = lexer._read_qname()
                pi_chars = []
                while not lexer.raw_startswith("?>"):
                    if not lexer.raw_peek():
                        raise lexer.error("unterminated PI in constructor")
                    pi_chars.append(lexer.raw_peek())
                    lexer.raw_advance()
                lexer.raw_advance(2)
                parts.append(A.ComputedPI(
                    target,
                    A.Literal(AtomicValue("".join(pi_chars).strip(), xs.string))))
                continue
            if ch == "<":
                flush(boundary=True)
                parts.append(self._parse_direct_constructor())
                continue
            if ch == "{":
                if lexer.raw_peek(1) == "{":
                    buffer.append("{")
                    lexer.raw_advance(2)
                    continue
                flush(boundary=True)
                lexer.raw_advance()
                parts.append(self.parse_expr())
                self.expect_symbol("}")
                # After the enclosed expression the lexer may have skipped
                # trivia; that's fine — whitespace between '}' and the next
                # content is boundary whitespace anyway.
                continue
            if ch == "}":
                if lexer.raw_peek(1) == "}":
                    buffer.append("}")
                    lexer.raw_advance(2)
                    continue
                raise lexer.error("'}' must be escaped as '}}' in element content")
            if ch == "&":
                buffer.append(lexer._read_entity())
                continue
            buffer.append(ch)
            lexer.raw_advance()

    # -- sequence types ---------------------------------------------------

    def parse_sequence_type(self) -> A.SequenceType:
        token = self.peek()
        if token.is_name("empty-sequence"):
            self.next()
            self.expect_symbol("(")
            self.expect_symbol(")")
            return A.SequenceType(A.ItemType("empty"))
        item_type = self._parse_item_type()
        occurrence = ""
        after = self.peek()
        if after.kind == "SYMBOL" and after.value in ("?", "*", "+"):
            self.next()
            occurrence = after.value
        return A.SequenceType(item_type, occurrence)

    def _parse_item_type(self) -> A.ItemType:
        token = self.expect_kind("NAME")
        name = token.value
        if name == "item":
            self.expect_symbol("(")
            self.expect_symbol(")")
            return A.ItemType("item")
        if name in _KIND_TESTS and self.peek().is_symbol("("):
            self.next()
            argument: Optional[str] = None
            inner = self.peek()
            if inner.kind == "NAME":
                argument = self.next().value
                # element(name, type) — ignore the type part
                if self.accept_symbol(","):
                    self.next()
            elif inner.is_symbol("*"):
                self.next()
            self.expect_symbol(")")
            kind = "document" if name == "document-node" else name
            if name in ("schema-element", "schema-attribute"):
                kind = name.split("-")[1]
            return A.ItemType(kind, name=argument)
        if is_known_type(name):
            return A.ItemType("atomic", atomic_type=type_by_name(name))
        raise self.lexer.error(f"unknown type name {name!r}", token.pos)


def _name_test_from(name: str) -> A.NameTest:
    if name == "*":
        return A.NameTest(None, "*")
    if ":" in name:
        prefix, local = name.split(":", 1)
        if prefix == "*":
            return A.NameTest("*", local)
        return A.NameTest(prefix, local)
    return A.NameTest(None, name)
