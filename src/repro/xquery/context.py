"""Static and dynamic evaluation contexts for the XQuery engine.

The static context holds namespace bindings and the function registry
(builtins + module functions); the dynamic context holds variable
bindings, the focus (context item / position / size), the document
resolver, and the two hooks the paper's architecture needs:

* ``xrpc_handler`` — invoked for ``execute at`` expressions; installed by
  the RPC layer (:mod:`repro.rpc`) or by tests.
* ``pul`` — the pending update list accumulating XQUF update primitives.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Optional, TYPE_CHECKING

from repro.errors import DynamicError, StaticError

if TYPE_CHECKING:  # pragma: no cover
    from repro.xdm.nodes import DocumentNode
    from repro.xquery import xast as A

FN_NS = "http://www.w3.org/2005/xpath-functions"
XS_NS = "http://www.w3.org/2001/XMLSchema"
XSI_NS = "http://www.w3.org/2001/XMLSchema-instance"
XML_NS = "http://www.w3.org/XML/1998/namespace"
LOCAL_NS = "http://www.w3.org/2005/xquery-local-functions"
XRPC_NS = "http://monetdb.cwi.nl/XQuery"
ENV_NS = "http://www.w3.org/2003/05/soap-envelope"

_DEFAULT_NAMESPACES = {
    "xs": XS_NS,
    "xsi": XSI_NS,
    "fn": FN_NS,
    "xml": XML_NS,
    "local": LOCAL_NS,
    "xrpc": XRPC_NS,
}


@dataclass
class RemoteCall:
    """Everything the RPC layer needs to ship one ``execute at`` call."""

    destination: str
    module_uri: str
    location: Optional[str]
    function: str            # local name
    arity: int
    args: list[list]         # one XDM sequence per parameter
    updating: bool = False


@dataclass
class ExecutionContext:
    """One options object for every prepare/execute surface.

    Historically each entry point grew its own keyword soup —
    ``doc_resolver`` vs ``xrpc_handler`` vs ``dispatch`` vs
    ``accelerator``/``optimize_joins`` — with three incompatible
    remote-call contracts.  This dataclass is the single carrier threaded
    through :class:`~repro.engine.base.Engine`,
    :class:`~repro.xquery.evaluator.CompiledQuery`,
    :class:`~repro.pathfinder.LoopLiftedQuery` and
    :class:`~repro.rpc.XRPCPeer`; the old keyword signatures remain as
    thin shims that build one of these.

    The two remote hooks serve the two plan kinds: ``dispatch`` ships a
    lifted plan's Bulk RPC groups (one call per (destination, function)
    group, ``dispatch(dest, module_uri, location, function, arity,
    calls, updating) -> results``), while ``xrpc_handler`` answers the
    interpreter's one-at-a-time ``execute at`` (takes a
    :class:`RemoteCall`).  Callers that can serve both — the peer — set
    both; local sessions leave them ``None`` and queries containing
    ``execute at`` fall back / fail exactly as before.
    """

    doc_resolver: Optional[Callable[[str], "DocumentNode"]] = None
    variables: Optional[dict[str, list]] = None
    context_item: Any = None
    dispatch: Optional[Callable[..., list]] = None
    #: Optional parallel variant of ``dispatch``: takes a list of
    #: ``(destination, module_uri, location, function, arity, calls,
    #: updating)`` tuples, returns per-request results in order — lifted
    #: plans use it to fan bulk messages out to distinct peers at once.
    dispatch_parallel: Optional[Callable[[list], list]] = None
    xrpc_handler: Optional[Callable[[RemoteCall], list]] = None
    put_store: Optional[Callable[[str, Any], None]] = None
    accelerator: bool = True
    optimize_joins: bool = True
    #: Try the loop-lifted relational plan before the tree interpreter.
    try_lifted: bool = True
    #: Apply a pending update list as soon as execution finishes (callers
    #: running 2PC flip this off and apply at commit).
    apply_updates: bool = True
    #: The query's remaining-time budget (a
    #: :class:`~repro.net.retry.Deadline`), set when the caller armed
    #: ``xrpc:timeout``/``timeout=``; the RPC layer reads it to bound
    #: every exchange, so it rides here purely for observability by
    #: other execution hooks.
    deadline: Any = None
    #: Re-encode only each update's splice region on the gapped
    #: order-key plane and patch the StructuralIndex in place (O(change)
    #: updates).  ``False`` restores the full-restamp baseline — the
    #: update-benchmark ablation.
    incremental_updates: bool = True


class StaticContext:
    """Namespace environment + function registry of one module/query."""

    def __init__(self, parent: Optional["StaticContext"] = None) -> None:
        self.namespaces: dict[str, str] = dict(_DEFAULT_NAMESPACES)
        self.default_element_namespace: Optional[str] = None
        self.default_function_namespace: str = FN_NS
        # (namespace_uri, local_name, arity) -> FunctionDecl | builtin callable
        self.functions: dict[tuple[str, str, int], Any] = {}
        self.options: dict[str, str] = {}
        self.module_locations: dict[str, str] = {}  # namespace uri -> at-hint
        if parent is not None:
            self.namespaces.update(parent.namespaces)
            self.functions.update(parent.functions)
            self.options.update(parent.options)
            self.module_locations.update(parent.module_locations)
            self.default_element_namespace = parent.default_element_namespace
            self.default_function_namespace = parent.default_function_namespace

    def declare_namespace(self, prefix: str, uri: str) -> None:
        if prefix == "(default element)":
            self.default_element_namespace = uri
        elif prefix == "(default function)":
            self.default_function_namespace = uri
        else:
            self.namespaces[prefix] = uri

    def resolve_prefix(self, prefix: str) -> str:
        try:
            return self.namespaces[prefix]
        except KeyError:
            raise StaticError("XPST0081", f"undeclared namespace prefix {prefix!r}")

    def resolve_function_name(self, lexical: str) -> tuple[str, str]:
        """Resolve a lexical function QName to (namespace uri, local)."""
        if ":" in lexical:
            prefix, local = lexical.split(":", 1)
            return self.resolve_prefix(prefix), local
        return self.default_function_namespace, lexical

    def resolve_element_name(self, lexical: str) -> tuple[Optional[str], str]:
        if ":" in lexical:
            prefix, local = lexical.split(":", 1)
            return self.resolve_prefix(prefix), local
        return self.default_element_namespace, lexical

    def lookup_function(self, uri: str, local: str, arity: int) -> Any:
        return self.functions.get((uri, local, arity))

    def register_function(self, uri: str, local: str, arity: int,
                          implementation: Any) -> None:
        self.functions[(uri, local, arity)] = implementation


class DynamicContext:
    """Run-time state of one query evaluation."""

    def __init__(
        self,
        static: StaticContext,
        variables: Optional[dict[str, list]] = None,
        doc_resolver: Optional[Callable[[str], "DocumentNode"]] = None,
        xrpc_handler: Optional[Callable[[RemoteCall], list]] = None,
    ) -> None:
        self.static = static
        self.variables: dict[str, list] = dict(variables or {})
        self.focus_item: Optional[Any] = None
        self.focus_position: int = 0
        self.focus_size: int = 0
        self.doc_resolver = doc_resolver
        self.xrpc_handler = xrpc_handler
        # XQUF pending update list; created lazily by updating expressions.
        self.pul: Optional[Any] = None
        # Store hook for fn:put (installed by the document-store layer).
        self.put_store: Optional[Callable[[str, Any], None]] = None
        # Namespace bindings from enclosing direct constructors (xmlns attrs).
        self.constructor_namespaces: dict[str, str] = {}
        # Engine capability: FLWOR equi-join hash optimization (MonetDB's
        # relational backend has it; the paper-era Saxon does not).
        self.optimize_joins = True
        # Set-at-a-time axis evaluation over the XPath-accelerator
        # structural index (window scans + staircase pruning); disabled
        # for the naive per-node reference walkers.
        self.accelerator = True
        # Depth guard against runaway recursion in user functions.
        self.call_depth = 0

    # -- derivation ------------------------------------------------------

    def child(self) -> "DynamicContext":
        """A context sharing everything but with its own variable scope."""
        derived = DynamicContext(
            self.static, self.variables, self.doc_resolver, self.xrpc_handler)
        derived.focus_item = self.focus_item
        derived.focus_position = self.focus_position
        derived.focus_size = self.focus_size
        derived.pul = self.pul
        derived.put_store = self.put_store
        derived.constructor_namespaces = self.constructor_namespaces
        derived.optimize_joins = self.optimize_joins
        derived.accelerator = self.accelerator
        derived.call_depth = self.call_depth
        return derived

    def function_scope(self, static: StaticContext,
                       variables: dict[str, list]) -> "DynamicContext":
        """Fresh scope for a user-function body: params only, no focus."""
        derived = DynamicContext(
            static, variables, self.doc_resolver, self.xrpc_handler)
        derived.pul = self.pul
        derived.put_store = self.put_store
        derived.optimize_joins = self.optimize_joins
        derived.accelerator = self.accelerator
        derived.call_depth = self.call_depth + 1
        if derived.call_depth > 512:
            raise DynamicError("FODC9999", "function recursion too deep")
        return derived

    def with_focus(self, item: Any, position: int, size: int) -> "DynamicContext":
        derived = self.child()
        derived.focus_item = item
        derived.focus_position = position
        derived.focus_size = size
        return derived

    # -- lookups -----------------------------------------------------------

    def variable(self, name: str) -> list:
        try:
            return self.variables[name]
        except KeyError:
            # Fall back to the local-name part: module-qualified globals
            # ($film:x) may be referenced with a different prefix.
            raise DynamicError("XPDY0002", f"unbound variable ${name}")

    def resolve_doc(self, uri: str) -> "DocumentNode":
        if self.doc_resolver is None:
            raise DynamicError("FODC0002", f"no document resolver for {uri!r}")
        document = self.doc_resolver(uri)
        if document is None:
            raise DynamicError("FODC0002", f"document {uri!r} not found")
        return document
