"""Abstract syntax tree for the XQuery subset (+ XQUF, + XRPC).

Every node is a small dataclass.  The module is named ``xast`` to avoid
shadowing the standard library :mod:`ast`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Union

from repro.xdm.atomic import AtomicValue
from repro.xdm.types import XSType


class Expr:
    """Base class for all expression nodes.

    ``pos`` is the character offset of the expression's first token in
    the query source, stamped by the parser (``None`` for synthesized
    nodes).  It is deliberately a plain class attribute, not a dataclass
    field: node equality and ``dataclasses.fields`` walks ignore it, and
    existing positional constructions stay valid.  Map an offset to a
    ``line:column`` pair with :func:`repro.xquery.lexer.source_location`.
    """

    pos = None  # type: Optional[int]


# ---------------------------------------------------------------------------
# Types


@dataclass
class ItemType:
    """An item type in a sequence type.

    ``kind`` is one of: ``"item"``, ``"atomic"``, ``"node"``,
    ``"element"``, ``"attribute"``, ``"document"``, ``"text"``,
    ``"comment"``, ``"processing-instruction"``, ``"empty"``.
    """

    kind: str
    atomic_type: Optional[XSType] = None
    name: Optional[str] = None  # for element(name) / attribute(name)


@dataclass
class SequenceType:
    """item type + occurrence indicator ('' | '?' | '*' | '+')."""

    item_type: ItemType
    occurrence: str = ""

    @staticmethod
    def zero_or_more_items() -> "SequenceType":
        return SequenceType(ItemType("item"), "*")


# ---------------------------------------------------------------------------
# Primary expressions


@dataclass
class Literal(Expr):
    value: AtomicValue


@dataclass
class VarRef(Expr):
    name: str  # lexical QName without the '$'


@dataclass
class ContextItem(Expr):
    pass


@dataclass
class SequenceExpr(Expr):
    """Comma operator; () is SequenceExpr([])."""

    items: list[Expr]


@dataclass
class RangeExpr(Expr):
    start: Expr
    end: Expr


@dataclass
class Arithmetic(Expr):
    op: str  # + - * div idiv mod
    left: Expr
    right: Expr


@dataclass
class Unary(Expr):
    op: str  # + -
    operand: Expr


@dataclass
class Comparison(Expr):
    kind: str  # "general" | "value" | "node"
    op: str    # = != < <= > >= eq ne lt le gt ge is << >>
    left: Expr
    right: Expr


@dataclass
class Logical(Expr):
    op: str  # "and" | "or"
    left: Expr
    right: Expr


@dataclass
class IfExpr(Expr):
    condition: Expr
    then_branch: Expr
    else_branch: Expr


# ---------------------------------------------------------------------------
# FLWOR


@dataclass
class ForClause:
    var: str
    position_var: Optional[str]
    source: Expr


@dataclass
class LetClause:
    var: str
    value: Expr


@dataclass
class WhereClause:
    condition: Expr


@dataclass
class OrderSpec:
    key: Expr
    descending: bool = False
    empty_least: bool = True


@dataclass
class OrderByClause:
    specs: list[OrderSpec]
    stable: bool = False


FLWORClause = Union[ForClause, LetClause, WhereClause, OrderByClause]


@dataclass
class FLWOR(Expr):
    clauses: list[FLWORClause]
    return_expr: Expr


@dataclass
class Quantified(Expr):
    kind: str  # "some" | "every"
    bindings: list[tuple[str, Expr]]
    satisfies: Expr


# ---------------------------------------------------------------------------
# Paths


@dataclass
class NameTest:
    """Name test; wildcard forms: ``*``, ``p:*``, ``*:local``."""

    prefix: Optional[str]
    local: str  # "*" for wildcard


@dataclass
class KindTest:
    """node() / text() / comment() / processing-instruction(t) /
    element(n) / attribute(n) / document-node()."""

    kind: str
    name: Optional[str] = None


NodeTest = Union[NameTest, KindTest]


@dataclass
class AxisStep:
    axis: str  # child, descendant, attribute, self, parent, ...
    node_test: NodeTest
    predicates: list[Expr] = field(default_factory=list)

    pos = None  # source offset (class attr, not a field — see Expr.pos)


@dataclass
class PathExpr(Expr):
    """A relative or absolute path.

    ``start`` is the expression producing the initial node sequence:
    ``None`` means the context item; the special marker ``"root"``/
    ``"root-descendant"`` (in ``absolute``) means the root of the context
    item's tree (``/`` and ``//`` prefixes).
    """

    start: Optional[Expr]
    steps: list[AxisStep]
    absolute: str = "none"  # "none" | "root" | "root-descendant"


@dataclass
class FilterExpr(Expr):
    """A primary expression followed by predicates: ``expr[pred]``."""

    base: Expr
    predicates: list[Expr]


# ---------------------------------------------------------------------------
# Functions and XRPC


@dataclass
class FunctionCall(Expr):
    name: str  # lexical QName
    args: list[Expr]


@dataclass
class ExecuteAt(Expr):
    """The XRPC extension: ``execute at { dest } { call }``."""

    destination: Expr
    call: FunctionCall


# ---------------------------------------------------------------------------
# Constructors


ContentPart = Union[str, Expr]  # literal text or enclosed expression


@dataclass
class DirectElement(Expr):
    name: str
    attributes: list[tuple[str, list[ContentPart]]]
    content: list[ContentPart]


@dataclass
class ComputedElement(Expr):
    name: Union[str, Expr]
    content: Optional[Expr]


@dataclass
class ComputedAttribute(Expr):
    name: Union[str, Expr]
    content: Optional[Expr]


@dataclass
class ComputedText(Expr):
    content: Optional[Expr]


@dataclass
class ComputedComment(Expr):
    content: Optional[Expr]


@dataclass
class ComputedPI(Expr):
    target: Union[str, Expr]
    content: Optional[Expr]


@dataclass
class ComputedDocument(Expr):
    content: Optional[Expr]


# ---------------------------------------------------------------------------
# Type operators


@dataclass
class CastExpr(Expr):
    operand: Expr
    type_name: str
    allow_empty: bool


@dataclass
class CastableExpr(Expr):
    operand: Expr
    type_name: str
    allow_empty: bool


@dataclass
class InstanceOf(Expr):
    operand: Expr
    seq_type: SequenceType


@dataclass
class TreatAs(Expr):
    operand: Expr
    seq_type: SequenceType


@dataclass
class TypeSwitchCase:
    var: Optional[str]
    seq_type: Optional[SequenceType]  # None for default
    body: Expr


@dataclass
class TypeSwitch(Expr):
    operand: Expr
    cases: list[TypeSwitchCase]
    default: TypeSwitchCase


# ---------------------------------------------------------------------------
# Set operators


@dataclass
class SetOp(Expr):
    op: str  # "union" | "intersect" | "except"
    left: Expr
    right: Expr


# ---------------------------------------------------------------------------
# XQuery Update Facility


@dataclass
class InsertExpr(Expr):
    source: Expr
    target: Expr
    position: str  # "into" | "first" | "last" | "before" | "after"


@dataclass
class DeleteExpr(Expr):
    target: Expr


@dataclass
class ReplaceExpr(Expr):
    target: Expr
    replacement: Expr
    value_of: bool


@dataclass
class RenameExpr(Expr):
    target: Expr
    new_name: Expr


# ---------------------------------------------------------------------------
# Prolog / modules


@dataclass
class Param:
    name: str
    seq_type: SequenceType


@dataclass
class FunctionDecl:
    name: str  # lexical QName
    params: list[Param]
    return_type: SequenceType
    body: Optional[Expr]  # None if external
    updating: bool = False
    # Filled during module binding:
    namespace_uri: Optional[str] = None
    local_name: Optional[str] = None
    module: object = None  # repro.xquery.modules.Module

    pos = None  # source offset (class attr, not a field — see Expr.pos)


@dataclass
class VarDecl:
    name: str
    seq_type: SequenceType
    value: Optional[Expr]
    external: bool = False

    pos = None  # source offset (class attr, not a field — see Expr.pos)


@dataclass
class NamespaceDecl:
    prefix: str
    uri: str


@dataclass
class ModuleImport:
    prefix: str
    uri: str
    locations: list[str]


@dataclass
class SchemaImport:
    prefix: Optional[str]
    uri: str
    locations: list[str]


@dataclass
class OptionDecl:
    name: str
    value: str


@dataclass
class QueryModule:
    """A parsed main or library module."""

    kind: str  # "main" | "library"
    module_namespace: Optional[NamespaceDecl]  # library modules only
    namespaces: list[NamespaceDecl]
    imports: list[ModuleImport]
    schema_imports: list[SchemaImport]
    options: list[OptionDecl]
    variables: list[VarDecl]
    functions: list[FunctionDecl]
    body: Optional[Expr]  # main modules only
