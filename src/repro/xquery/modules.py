"""XQuery library modules and the module registry.

The paper routes all remote calls through functions "defined in an
XQuery Module" (section 2): an XRPC request carries the module namespace
URI plus an ``at``-hint location so the callee can load the module.  The
:class:`ModuleRegistry` is the lookup service both sides use; it caches
compiled modules, which is precisely what makes the paper's *function
cache* effective (module translation happens once).
"""

from __future__ import annotations

from typing import Optional

from repro.errors import StaticError
from repro.xquery import xast as A
from repro.xquery.context import StaticContext
from repro.xquery.parser import parse_library_module


class Module:
    """A compiled library module."""

    def __init__(self, ast: A.QueryModule, registry: "ModuleRegistry") -> None:
        if ast.module_namespace is None:
            raise StaticError("XQST0059", "library module lacks module declaration")
        self.prefix = ast.module_namespace.prefix
        self.namespace_uri = ast.module_namespace.uri
        self.ast = ast
        self.static = StaticContext()
        self.static.declare_namespace(self.prefix, self.namespace_uri)
        for decl in ast.namespaces:
            self.static.declare_namespace(decl.prefix, decl.uri)
        # Transitive imports.
        for imp in ast.imports:
            imported = registry.load(imp.uri, imp.locations)
            self.static.declare_namespace(imp.prefix, imp.uri)
            if imp.locations:
                self.static.module_locations[imp.uri] = imp.locations[0]
            self.static.functions.update(imported.exported_functions())
        # Bind this module's own functions.
        self.functions: dict[tuple[str, int], A.FunctionDecl] = {}
        for decl in ast.functions:
            uri, local = self.static.resolve_function_name(decl.name)
            if uri != self.namespace_uri:
                raise StaticError(
                    "XQST0048",
                    f"function {decl.name} not in module namespace {self.namespace_uri}")
            decl.namespace_uri = uri
            decl.local_name = local
            decl.module = self
            key = (local, len(decl.params))
            if key in self.functions:
                raise StaticError("XQST0034", f"duplicate function {decl.name}")
            self.functions[key] = decl
            self.static.register_function(uri, local, len(decl.params), decl)
        self.variables: list[A.VarDecl] = list(ast.variables)

    def exported_functions(self) -> dict[tuple[str, str, int], A.FunctionDecl]:
        return {
            (self.namespace_uri, local, arity): decl
            for (local, arity), decl in self.functions.items()
        }

    def get_function(self, local: str, arity: int) -> Optional[A.FunctionDecl]:
        return self.functions.get((local, arity))


class ModuleRegistry:
    """Maps module locations / namespace URIs to sources and caches
    compiled :class:`Module` objects.

    In the paper's deployment the ``at``-hint is an HTTP URL
    (``http://x.example.org/film.xq``); here sources are registered
    explicitly, which stands in for fetching them.
    """

    def __init__(self) -> None:
        self._sources_by_location: dict[str, str] = {}
        self._sources_by_namespace: dict[str, str] = {}
        self._compiled: dict[str, Module] = {}  # keyed by namespace URI

    def register_source(self, source: str,
                        location: Optional[str] = None) -> Module:
        """Register a module source; returns the compiled module.

        The module is compiled eagerly so registration errors surface at
        deploy time (like MonetDB's module pre-processing).
        """
        ast = parse_library_module(source)
        assert ast.module_namespace is not None
        namespace = ast.module_namespace.uri
        self._sources_by_namespace[namespace] = source
        if location is not None:
            self._sources_by_location[location] = source
        module = Module(ast, self)
        self._compiled[namespace] = module
        return module

    def load(self, namespace_uri: str, locations: list[str]) -> Module:
        """Resolve an ``import module`` to a compiled module (cached)."""
        if namespace_uri in self._compiled:
            return self._compiled[namespace_uri]
        source = self._sources_by_namespace.get(namespace_uri)
        if source is None:
            for location in locations:
                source = self._sources_by_location.get(location)
                if source is not None:
                    break
        if source is None:
            raise StaticError(
                "XQST0059",
                f"cannot load module {namespace_uri!r} (locations: {locations})")
        ast = parse_library_module(source)
        module = Module(ast, self)
        self._compiled[namespace_uri] = module
        return module

    def by_namespace(self, namespace_uri: str) -> Optional[Module]:
        if namespace_uri in self._compiled:
            return self._compiled[namespace_uri]
        if namespace_uri in self._sources_by_namespace:
            return self.load(namespace_uri, [])
        return None
