"""A from-scratch XQuery 1.0 engine with XQUF updates and the XRPC extension.

This package implements the substrate the paper assumes: a working XQuery
processor.  It contains a lexer, a recursive-descent parser producing an
AST (:mod:`repro.xquery.xast`), static/dynamic evaluation contexts, a
builtin function library, a module system, and a tree-walking evaluator.

The XRPC language extension of the paper —
``execute at { Expr } { FunctionCall }`` — is parsed as a primary
expression and evaluated through a pluggable handler installed by the
RPC layer (:mod:`repro.rpc`).
"""

from repro.xquery.parser import parse_main_module, parse_library_module
from repro.xquery.context import StaticContext, DynamicContext, XRPC_NS, FN_NS, XS_NS
from repro.xquery.evaluator import Evaluator, evaluate_query
from repro.xquery.modules import Module, ModuleRegistry

__all__ = [
    "parse_main_module",
    "parse_library_module",
    "StaticContext",
    "DynamicContext",
    "Evaluator",
    "evaluate_query",
    "Module",
    "ModuleRegistry",
    "XRPC_NS",
    "FN_NS",
    "XS_NS",
]
