"""Unified session API: one prepare/execute surface over the engines.

The paper's XRPC design assumes a single query-service surface —
compile once into the function cache, execute many times, locally or
shipped.  This module is that surface for embedders:

* :class:`Database` — register documents, prepare and execute queries.
  Every execution goes through :meth:`repro.engine.base.Engine.execute`:
  loop-lifted relational plan first, tree-interpreter fallback with
  recorded telemetry, plans served from the bounded LRU plan cache.
* :class:`PreparedQuery` — the prepare-once/probe-many handle:
  ``execute()``, lazy ``iter()`` cursors, and ``explain()`` reporting
  plan kind, fallback reason and compile/execute timings.
* :class:`ExecutionContext` (re-exported from
  :mod:`repro.xquery.context`) — the single options object replacing the
  historical ``doc_resolver`` / ``xrpc_handler`` / ``dispatch`` /
  ``accelerator`` keyword soup, threaded through ``Engine``,
  ``CompiledQuery``, ``LoopLiftedQuery`` and ``XRPCPeer``.

A quick session::

    from repro.session import Database

    db = Database()
    db.register("films.xml", "<films><film>The Rock</film></films>")
    films = db.prepare("doc('films.xml')//film")
    films.execute()            # full result sequence
    films.explain().plan       # "lifted"
    db.stats().plan_cache_hits

``prepare``/``execute`` are thread-safe: plan- and function-cache
mutation is serialized inside the engine, and concurrent executions of
the same prepared query do not interfere (each gets a fresh dynamic
context).
"""

from __future__ import annotations

import dataclasses
import threading
from dataclasses import dataclass, field
from typing import Any, Iterator, Optional, Union

from repro.engine import Engine
from repro.engine.base import Explain
from repro.rpc.store import DocumentStore
from repro.xdm.atomic import (
    AtomicValue,
    boolean,
    double,
    integer,
    string,
)
from repro.xdm.nodes import DocumentNode, Node
from repro.xquery.context import ExecutionContext
from repro.xquery.modules import ModuleRegistry

__all__ = [
    "Database",
    "DatabaseStats",
    "ExecutionContext",
    "Explain",
    "PreparedQuery",
    "to_sequence",
]


def to_sequence(value: Any) -> list:
    """Coerce a Python value into an XDM sequence (facade variable
    bindings: ``db.execute(q, pid="person0")``)."""
    if isinstance(value, list):
        return value
    if isinstance(value, (Node, AtomicValue)):
        return [value]
    if isinstance(value, bool):
        return [boolean(value)]
    if isinstance(value, int):
        return [integer(value)]
    if isinstance(value, float):
        return [double(value)]
    if isinstance(value, str):
        return [string(value)]
    raise TypeError(
        f"cannot bind a {type(value).__name__} as an XQuery variable; "
        "pass str/int/float/bool, an XDM node or atomic, or a list of those")


@dataclass
class DatabaseStats:
    """Counters of one :class:`Database` (and its engine's caches).

    The ``reencodes_*`` / ``gap_respreads`` / ``index_patches`` /
    ``index_builds`` fields report the *process-wide*
    :data:`~repro.xdm.structural.ENCODING_STATS` totals — what the
    update path has been doing: ``reencodes_subtree`` counts O(change)
    splices, ``reencodes_full`` the whole-tree fallbacks, and
    ``index_patches`` in-place :class:`StructuralIndex` maintenance
    (versus ``index_builds`` full rebuilds).  ``fallback_reasons`` is
    the engine's per-reason histogram: stable
    :class:`~repro.pathfinder.compiler.UnsupportedExpression` code ->
    count of lifted attempts that bailed with it.
    """

    plan_cache_hits: int
    plan_cache_misses: int
    plan_cache_entries: int
    plan_cache_size: Optional[int]
    function_cache_entries: int
    executions: int
    lifted_executions: int
    interpreter_executions: int
    documents: int
    reencodes_full: int = 0
    reencodes_subtree: int = 0
    gap_respreads: int = 0
    index_patches: int = 0
    index_builds: int = 0
    fallback_reasons: dict = field(default_factory=dict)
    #: Parse-frontend telemetry (process-wide
    #: :data:`~repro.xml.stats.PARSE_STATS` totals): which backend
    #: parsed how many documents/bytes, and how often the default expat
    #: backend fell back to the pure-python reference parser.
    xml_backend: str = "expat"
    parse_documents_expat: int = 0
    parse_documents_python: int = 0
    parse_bytes_expat: int = 0
    parse_bytes_python: int = 0
    parse_fallbacks: int = 0
    #: Keyword-search telemetry (process-wide
    #: :data:`~repro.search.stats.SEARCH_STATS` totals):
    #: ``term_index_builds`` full :class:`~repro.search.index.TermIndex`
    #: materializations versus ``postings_patched`` incremental PUL-hook
    #: maintenance; ``postings_built`` postings written by full builds;
    #: ``search_queries`` posting-list plans served (lifted ``contains``
    #: prefilters and :meth:`Database.search` calls) and
    #: ``postings_hits`` the results they surfaced.
    term_index_builds: int = 0
    postings_built: int = 0
    postings_patched: int = 0
    search_queries: int = 0
    postings_hits: int = 0
    #: Fault-tolerance telemetry (process-wide
    #: :data:`~repro.net.retry.NET_STATS` totals): transport attempts,
    #: retries and give-ups, circuit-breaker transitions and fast-fails,
    #: deadline expiries, peers skipped by the partial-results policy,
    #: and faults the chaos harness injected.
    net_exchanges: int = 0
    net_retries: int = 0
    net_retry_giveups: int = 0
    net_breaker_opens: int = 0
    net_breaker_fast_fails: int = 0
    net_deadline_expired: int = 0
    net_degraded_peers: int = 0
    net_faults_injected: int = 0


class PreparedQuery:
    """A query prepared against one :class:`Database`.

    Holds the compiled plan (via the engine's plan cache) and executes
    it many times with per-call variable bindings — the paper's
    compile-once/execute-many function-cache discipline, exposed
    locally.
    """

    def __init__(self, database: "Database", source: str) -> None:
        self.database = database
        self.source = source
        # Compile eagerly: preparation errors (syntax, unknown imports)
        # surface at prepare() time, not first execute.  The first
        # execution reports what *this preparation* paid, not the
        # guaranteed plan-cache hit execute() sees after prepare().
        (self.compiled,
         self._prepare_compile_seconds,
         self._prepare_cache_hit) = database.engine.compile_with_stats(source)
        self._first_run_pending = True
        self.last_explain: Optional[Explain] = None

    # -- static analysis ----------------------------------------------------

    @property
    def analysis(self):
        """The prepare-time :class:`~repro.analysis.QueryProperties` of
        this query under the database's standard execution context
        (document resolver present, no bulk dispatch): will it lift, is
        it updating, which sites does it touch, and any semantic
        diagnostics — all without executing anything."""
        context = self.database._make_context(None, {}, None)
        return self.database.engine.analyze(self.compiled, context)

    # -- execution ---------------------------------------------------------

    def execute(self, *, variables: Optional[dict] = None,
                context_item=None, timeout: Optional[float] = None,
                **bindings) -> list:
        """Run the query; returns the full XDM result sequence.

        Variables come from ``variables`` (a name → value dict) and/or
        keyword ``bindings``; plain Python values are coerced through
        :func:`to_sequence`.  Updating queries apply their pending
        update list to the database's documents before returning.

        ``timeout`` arms a wall-clock deadline budget on the execution
        context.  A local database enforces it coarsely — the run is
        failed with :class:`~repro.errors.DeadlineExceeded` if the
        budget is exhausted when it returns; fine-grained enforcement
        (per-exchange socket timeouts, remote abandonment) lives in the
        distributed :class:`~repro.rpc.peer.XRPCPeer` path.
        """
        context = self.database._make_context(variables, bindings,
                                              context_item)
        if timeout is not None:
            from repro.net.clock import WallClock
            from repro.net.retry import Deadline
            context = dataclasses.replace(
                context, deadline=Deadline.after(timeout, WallClock()))
        result, _ = self._run(context)
        if context.deadline is not None and context.deadline.expired():
            from repro.errors import DeadlineExceeded
            from repro.net.retry import NET_STATS
            NET_STATS.bump("deadline_expired")
            raise DeadlineExceeded(
                f"query exceeded its {timeout:.3g}s deadline budget")
        return result

    def run(self, context: ExecutionContext) -> list:
        """Full-control execution under a caller-built context."""
        result, _ = self._run(context)
        return result

    def iter(self, *, variables: Optional[dict] = None,
             context_item=None, **bindings) -> Iterator:
        """Lazy cursor: execution is deferred until the first item is
        pulled, then items stream from the materialized result."""
        def cursor():
            yield from self.execute(variables=variables,
                                    context_item=context_item, **bindings)

        return cursor()

    def explain(self, *, variables: Optional[dict] = None,
                context_item=None, **bindings) -> Explain:
        """Execute and report *this call's* plan kind, fallback reason
        and timings (race-free under concurrent executions; the
        ``last_explain`` attribute is last-writer-wins)."""
        context = self.database._make_context(variables, bindings,
                                              context_item)
        _, explain = self._run(context)
        return explain

    def _run(self, context: ExecutionContext) -> tuple[list, Explain]:
        result, explain = self.database.engine.execute(self.source, context)
        with self.database._stats_lock:
            first_run = self._first_run_pending
            self._first_run_pending = False
        if first_run:
            explain = dataclasses.replace(
                explain,
                compile_seconds=self._prepare_compile_seconds,
                cache_hit=self._prepare_cache_hit)
        self.last_explain = explain
        self.database._record_execution(explain)
        return result, explain


class Database:
    """The facade: a document store plus one engine behind a single
    prepare/execute surface.

    Parameters
    ----------
    engine:
        Engine profile to execute with (default: a generic
        :class:`~repro.engine.Engine` with plan cache, accelerator and
        lifted pipeline on).
    registry:
        Module registry for ``import module`` resolution (defaults to
        the engine's).
    try_lifted:
        Attempt the loop-lifted relational plan before the interpreter
        (the default; ``False`` pins every query to the interpreter).
    xml_backend:
        Parse frontend for :meth:`register` — ``"expat"`` (C-speed,
        the default) or ``"python"`` (the reference ablation).
        ``None`` defers to ``REPRO_XML_BACKEND`` / the built-in default.
    """

    def __init__(self, engine: Optional[Engine] = None,
                 registry: Optional[ModuleRegistry] = None,
                 try_lifted: bool = True,
                 xml_backend: Optional[str] = None) -> None:
        self.engine = engine or Engine(registry=registry)
        self.registry = self.engine.registry
        self.store = DocumentStore()
        self.try_lifted = try_lifted
        self.xml_backend = xml_backend
        self._stats_lock = threading.Lock()
        self.executions = 0
        self.lifted_executions = 0
        self.interpreter_executions = 0

    # -- documents / modules ----------------------------------------------

    def register(self, uri: str,
                 content: Union[str, bytes, DocumentNode]) -> DocumentNode:
        """Load (or replace) a document under *uri*; accepts XML text
        (``str``, or encoded ``bytes`` honouring the declaration/BOM) or
        a parsed tree."""
        return self.store.register(uri, content, backend=self.xml_backend)

    def register_module(self, source: str,
                        location: Optional[str] = None) -> None:
        """Register a library module so ``import module`` resolves."""
        self.registry.register_source(source, location=location)

    # -- prepare / execute --------------------------------------------------

    def prepare(self, source: str) -> PreparedQuery:
        return PreparedQuery(self, source)

    def execute(self, source: str, *, variables: Optional[dict] = None,
                context_item=None, timeout: Optional[float] = None,
                **bindings) -> list:
        """One-shot convenience: prepare (through the plan cache) and
        execute."""
        return self.prepare(source).execute(
            variables=variables, context_item=context_item,
            timeout=timeout, **bindings)

    def iter(self, source: str, *, variables: Optional[dict] = None,
             context_item=None, **bindings) -> Iterator:
        return self.prepare(source).iter(
            variables=variables, context_item=context_item, **bindings)

    def explain(self, source: str, *, variables: Optional[dict] = None,
                context_item=None, **bindings) -> Explain:
        return self.prepare(source).explain(
            variables=variables, context_item=context_item, **bindings)

    # -- keyword search -----------------------------------------------------

    def search(self, terms, *, uri: Optional[str] = None,
               limit: Optional[int] = None, ranked: bool = False,
               on_peer_failure: str = "fail") -> list:
        """SLCA keyword search over registered documents.

        *terms* is a string or an iterable of strings; each is tokenized
        (``\\w+``, case-folded) and the query is the conjunction of all
        resulting tokens.  Hits are the smallest elements whose subtree
        (text and attribute values) contains every token and none of
        whose descendants also does — EMBANKS-style smallest lowest
        common ancestors — served from each document's lazily built
        :class:`~repro.search.index.TermIndex` posting lists.

        Results are :class:`~repro.search.index.SearchHit` records with
        ``uri`` filled; ``score`` is the term-frequency sum over the
        hit's subtree.  Default order is document registration order
        then document order within each document; ``ranked=True``
        re-sorts by descending score (stable, so ties keep that order).
        ``uri`` restricts the search to one document; ``limit`` caps the
        returned list after ordering.

        ``on_peer_failure`` mirrors
        :meth:`~repro.rpc.peer.XRPCPeer.keyword_search` for API symmetry
        — a local database holds every document itself, so there is no
        peer to skip and ``"degrade"`` never drops results here.
        """
        import dataclasses as _dataclasses

        from repro.search.index import keyword_search

        if on_peer_failure not in ("fail", "degrade"):
            raise ValueError(
                f"on_peer_failure must be 'fail' or 'degrade', "
                f"not {on_peer_failure!r}")
        if isinstance(terms, str):
            terms = [terms]
        else:
            terms = list(terms)
        uris = [uri] if uri is not None else list(self.store.uris())
        hits = []
        for document_uri in uris:
            document = self._resolve_document(document_uri)
            if document is None:
                raise KeyError(f"no document registered at {document_uri!r}")
            for hit in keyword_search(document, terms):
                hits.append(_dataclasses.replace(hit, uri=document_uri))
        if ranked:
            hits.sort(key=lambda hit: -hit.score)
        if limit is not None:
            hits = hits[:limit]
        return hits

    def stats(self) -> DatabaseStats:
        from repro.net.retry import NET_STATS
        from repro.search.stats import SEARCH_STATS
        from repro.xdm.structural import ENCODING_STATS
        from repro.xml.parser import default_backend
        from repro.xml.stats import PARSE_STATS

        cache = self.engine.cache_stats()
        encoding = ENCODING_STATS.snapshot()
        parse = PARSE_STATS.snapshot()
        search = SEARCH_STATS.snapshot()
        net = NET_STATS.snapshot()
        with self._stats_lock:
            return DatabaseStats(
                plan_cache_hits=cache["plan_cache_hits"],
                plan_cache_misses=cache["plan_cache_misses"],
                plan_cache_entries=cache["plan_cache_entries"],
                plan_cache_size=cache["plan_cache_size"],
                function_cache_entries=cache["function_cache_entries"],
                executions=self.executions,
                lifted_executions=self.lifted_executions,
                interpreter_executions=self.interpreter_executions,
                documents=sum(1 for _ in self.store.uris()),
                reencodes_full=encoding["reencodes_full"],
                reencodes_subtree=encoding["reencodes_subtree"],
                gap_respreads=encoding["gap_respreads"],
                index_patches=encoding["index_patches"],
                index_builds=encoding["index_builds"],
                fallback_reasons=self.engine.fallback_stats(),
                xml_backend=self.xml_backend or default_backend(),
                parse_documents_expat=parse["documents_expat"],
                parse_documents_python=parse["documents_python"],
                parse_bytes_expat=parse["bytes_expat"],
                parse_bytes_python=parse["bytes_python"],
                parse_fallbacks=parse["fallbacks_to_python"],
                term_index_builds=search["term_index_builds"],
                postings_built=search["postings_built"],
                postings_patched=search["postings_patched"],
                search_queries=search["search_queries"],
                postings_hits=search["postings_hits"],
                net_exchanges=net["exchanges"],
                net_retries=net["retries"],
                net_retry_giveups=net["retry_giveups"],
                net_breaker_opens=net["breaker_opens"],
                net_breaker_fast_fails=net["breaker_fast_fails"],
                net_deadline_expired=net["deadline_expired"],
                net_degraded_peers=net["degraded_peers"],
                net_faults_injected=net["faults_injected"],
            )

    # -- internals ---------------------------------------------------------

    def _make_context(self, variables: Optional[dict], bindings: dict,
                      context_item) -> ExecutionContext:
        merged: dict[str, list] = {}
        for name, value in {**(variables or {}), **bindings}.items():
            merged[name] = to_sequence(value)
        return ExecutionContext(
            doc_resolver=self._resolve_document,
            variables=merged or None,
            context_item=context_item,
            put_store=self.store.put,
            accelerator=self.engine.accelerator,
            optimize_joins=self.engine.optimize_flwor_joins,
            try_lifted=self.try_lifted,
            # Local sessions apply pending updates immediately (the
            # single-peer form of rule R_Fu); peers defer to 2PC.
            apply_updates=True,
        )

    def _resolve_document(self, uri: str) -> Optional[DocumentNode]:
        # Returns None for unknown URIs (the resolver contract both the
        # interpreter's FODC0002 path and the lifted pipeline's static
        # fallback expect), instead of the store's raising get().
        if self.store.contains(uri):
            return self.store.get(uri)
        return None

    def _record_execution(self, explain: Explain) -> None:
        with self._stats_lock:
            self.executions += 1
            if explain.plan == "lifted":
                self.lifted_executions += 1
            else:
                self.interpreter_executions += 1
