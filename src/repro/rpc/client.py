"""XRPC client: the "message sender API" + generated stub behaviour.

A :class:`ClientSession` lives for one query: it stamps every outgoing
request with the query's queryID (when repeatable-read isolation is on),
counts messages, and accumulates the participating-peer set piggybacked
on responses — which the originating peer later registers with the 2PC
coordinator.
"""

from __future__ import annotations

from typing import Optional

from repro.errors import XRPCFault
from repro.net.transport import Transport, normalize_peer_uri
from repro.soap.messages import (
    QueryID,
    TxnCommand,
    TxnResult,
    XRPCRequest,
    build_request,
    build_txn_command,
    parse_message,
    parse_response,
)


class ClientSession:
    """Per-query XRPC client state."""

    def __init__(self, transport: Transport, origin: str,
                 query_id: Optional[QueryID] = None) -> None:
        self.transport = transport
        self.origin = origin
        self.query_id = query_id
        self.participants: list[str] = []
        self.messages_sent = 0
        self.calls_shipped = 0

    # -- request construction ------------------------------------------------

    def _make_request(self, module_uri: str, location: Optional[str],
                      function: str, arity: int,
                      updating: bool) -> XRPCRequest:
        return XRPCRequest(
            module=module_uri,
            method=function,
            arity=arity,
            location=location,
            query_id=self.query_id,
            updating=updating,
        )

    def _record_participants(self, destination: str,
                             piggybacked: list[str]) -> None:
        for peer in [normalize_peer_uri(destination), *piggybacked]:
            if peer not in self.participants and peer != self.origin:
                self.participants.append(peer)

    # -- calls ------------------------------------------------------------------

    def call(self, destination: str, module_uri: str, location: Optional[str],
             function: str, arity: int, calls: list[list[list]],
             updating: bool = False) -> list[list]:
        """Send one (possibly bulk) request; returns one sequence per call.

        ``calls`` is a list of calls, each a list of parameter sequences.
        """
        request = self._make_request(module_uri, location, function, arity,
                                     updating)
        for params in calls:
            request.add_call(params)
        payload = build_request(request)
        self.messages_sent += 1
        self.calls_shipped += len(calls)
        raw = self.transport.send(destination, payload)
        response = parse_response(raw)
        self._record_participants(destination, response.participating_peers)
        if len(response.results) != len(calls):
            if updating and not response.results:
                # An updating response may legitimately omit the (all
                # empty) result sequences altogether.
                return [[] for _ in calls]
            raise XRPCFault(
                "env:Receiver",
                f"bulk response carries {len(response.results)} results "
                f"for {len(calls)} calls")
        return response.results

    def call_parallel(self, grouped: list[tuple[str, str, Optional[str], str,
                                                int, list[list[list]], bool]],
                      tolerate_faults: bool = False,
                      ) -> list[Optional[list[list]]]:
        """Dispatch several bulk requests to different peers in parallel.

        Each entry is ``(destination, module_uri, location, function,
        arity, calls, updating)``.  Returns the per-request result lists
        in input order.

        With ``tolerate_faults`` a faulting request yields ``None``
        instead of raising — used by the speculative phase of the bulk
        executor, where a recorded call may have placeholder-derived
        arguments and its *direct* re-send (with real arguments) is the
        authoritative attempt.
        """
        payloads = []
        for destination, module_uri, location, function, arity, calls, updating \
                in grouped:
            request = self._make_request(module_uri, location, function,
                                         arity, updating)
            for params in calls:
                request.add_call(params)
            payloads.append((destination, build_request(request)))
            self.messages_sent += 1
            self.calls_shipped += len(calls)
        raw_responses = self.transport.send_parallel(payloads)
        results: list[Optional[list[list]]] = []
        for (destination, _module, _location, _function, _arity, calls,
             updating), raw in zip(grouped, raw_responses):
            try:
                response = parse_response(raw)
                per_call = response.results
                if len(per_call) != len(calls):
                    if updating and not per_call:
                        # Updating responses may omit the (all empty)
                        # result sequences.
                        per_call = [[] for _ in calls]
                    else:
                        raise XRPCFault(
                            "env:Receiver",
                            f"bulk response carries {len(per_call)} "
                            f"results for {len(calls)} calls")
            except XRPCFault:
                if tolerate_faults:
                    results.append(None)
                    continue
                raise
            self._record_participants(destination,
                                      response.participating_peers)
            results.append(per_call)
        return results

    # -- 2PC driver side ---------------------------------------------------------

    def send_txn_command(self, destination: str, kind: str) -> TxnResult:
        if self.query_id is None:
            raise XRPCFault("env:Sender",
                            "transaction commands require a queryID")
        payload = build_txn_command(TxnCommand(kind, self.query_id))
        self.messages_sent += 1
        raw = self.transport.send(destination, payload)
        message = parse_message(raw)
        if isinstance(message, TxnResult):
            return message
        if isinstance(message, XRPCFault):
            raise message
        from repro.soap.messages import XRPCFaultMessage
        if isinstance(message, XRPCFaultMessage):
            return TxnResult(kind=kind, ok=False, detail=message.reason)
        raise XRPCFault("env:Receiver", "unexpected reply to txn command")
