"""XRPC client: the "message sender API" + generated stub behaviour.

A :class:`ClientSession` lives for one query: it stamps every outgoing
request with the query's queryID (when repeatable-read isolation is on),
counts messages, and accumulates the participating-peer set piggybacked
on responses — which the originating peer later registers with the 2PC
coordinator.

Fault tolerance: a session constructed with a
:class:`~repro.net.retry.ResilientChannel` routes every exchange
through the retry/breaker/deadline policy.  Each *attempt* carries a
fresh exchange id (echoed by the server, so a stale duplicated response
is detected rather than trusted) and the deadline's current remaining
budget in the SOAP header.  Whether an exchange is ``retry_safe`` is the
explicit ``updating`` verdict threaded from the caller — the static
analyzer's updating-ness result — never a sniff of the payload text.
Without a channel the session degrades to the direct single-attempt
behaviour (still threading ``retry_safe`` into the transport's
stale-keep-alive retry rule).
"""

from __future__ import annotations

import itertools
from typing import Optional

from repro.errors import (RetryableTransportError, TransportError, XRPCFault,
                          XRPCReproError)
from repro.net.retry import ChannelRequest, Deadline, NetEvents, \
    ResilientChannel
from repro.net.transport import ExchangeSpec, Transport, normalize_peer_uri
from repro.soap.messages import (
    QueryID,
    TxnCommand,
    TxnResult,
    XRPCFaultMessage,
    XRPCRequest,
    XRPCResponse,
    build_request,
    build_txn_command,
    parse_message,
)

#: Process-wide exchange-id source.  Ids must be unique across sessions
#: (a stale response cached by the network could otherwise collide with
#: a later session's expectation), cheap, and free of wall-clock reads.
_EXCHANGE_IDS = itertools.count(1)


def _next_exchange_id(origin: str) -> str:
    return f"{origin}-{next(_EXCHANGE_IDS)}"


class ClientSession:
    """Per-query XRPC client state."""

    def __init__(self, transport: Transport, origin: str,
                 query_id: Optional[QueryID] = None,
                 channel: Optional[ResilientChannel] = None,
                 deadline: Optional[Deadline] = None,
                 events: Optional[NetEvents] = None) -> None:
        self.transport = transport
        self.origin = origin
        self.query_id = query_id
        self.channel = channel
        self.deadline = deadline
        self.events = events
        self.participants: list[str] = []
        self.messages_sent = 0
        self.calls_shipped = 0

    # -- request construction ------------------------------------------------

    def _make_request(self, module_uri: str, location: Optional[str],
                      function: str, arity: int,
                      updating: bool) -> XRPCRequest:
        return XRPCRequest(
            module=module_uri,
            method=function,
            arity=arity,
            location=location,
            query_id=self.query_id,
            updating=updating,
        )

    def _record_participants(self, destination: str,
                             piggybacked: list[str]) -> None:
        for peer in [normalize_peer_uri(destination), *piggybacked]:
            if peer not in self.participants and peer != self.origin:
                self.participants.append(peer)

    # -- response decoding --------------------------------------------------

    def _decode(self, raw: str, expected_id: Optional[str],
                destination: str):
        """Parse one reply, converting undecodable or mis-correlated
        bytes into retryable transport failures.

        Torn bodies, garbage SOAP, and stale duplicated responses all
        reach here as *strings* — only the per-attempt exchange-id echo
        (and well-formedness) separates them from the real answer.  They
        classify as ``request_sent=True``: the peer may have processed
        the request even though its answer never usably arrived.

        A response carrying *no* id comes from a server that does not
        implement the echo (e.g. a wrapped third-party engine building
        its envelope in XQuery) and is accepted as-is — duplicate
        detection needs both sides to play.
        """
        try:
            message = parse_message(raw)
        except XRPCReproError as exc:
            raise RetryableTransportError(
                f"undecodable response from {destination!r}: {exc}",
                request_sent=True) from exc
        if expected_id is not None and message.exchange_id is not None \
                and message.exchange_id != expected_id:
            raise RetryableTransportError(
                f"response from {destination!r} answers exchange "
                f"{message.exchange_id!r}, expected {expected_id!r} "
                f"(stale duplicate)", request_sent=True)
        return message

    @staticmethod
    def _extract_results(message, calls: list, updating: bool) -> list[list]:
        """Per-call result sequences from a decoded reply message."""
        if isinstance(message, XRPCFaultMessage):
            message.raise_()
        if not isinstance(message, XRPCResponse):
            raise XRPCFault("env:Receiver",
                            "expected an XRPC response message")
        per_call = message.results
        if len(per_call) != len(calls):
            if updating and not per_call:
                # An updating response may legitimately omit the (all
                # empty) result sequences altogether.
                return [[] for _ in calls]
            raise XRPCFault(
                "env:Receiver",
                f"bulk response carries {len(per_call)} results "
                f"for {len(calls)} calls")
        return per_call

    def _channel_entry(self, destination: str, request: XRPCRequest,
                       calls: list, updating: bool,
                       tolerate_faults: bool = False) -> ChannelRequest:
        """One resilient exchange: fresh id + budget per attempt."""

        def build(attempt: int, remaining: Optional[float]) -> str:
            request.exchange_id = _next_exchange_id(self.origin)
            request.deadline_remaining = remaining
            return build_request(request)

        def parse(raw: str):
            message = self._decode(raw, request.exchange_id, destination)
            try:
                per_call = self._extract_results(message, calls, updating)
            except XRPCFault:
                if tolerate_faults:
                    return None
                raise
            self._record_participants(destination,
                                      message.participating_peers)
            return per_call

        return ChannelRequest(destination, build, parse,
                              retry_safe=not updating)

    # -- calls ------------------------------------------------------------------

    def call(self, destination: str, module_uri: str, location: Optional[str],
             function: str, arity: int, calls: list[list[list]],
             updating: bool = False) -> list[list]:
        """Send one (possibly bulk) request; returns one sequence per call.

        ``calls`` is a list of calls, each a list of parameter sequences.
        """
        request = self._make_request(module_uri, location, function, arity,
                                     updating)
        for params in calls:
            request.add_call(params)
        self.messages_sent += 1
        self.calls_shipped += len(calls)
        if self.channel is not None:
            entry = self._channel_entry(destination, request, calls, updating)
            return self.channel.exchange(
                destination, entry.build, entry.parse,
                retry_safe=entry.retry_safe,
                deadline=self.deadline, events=self.events)
        # Direct single-attempt path (no resilience policy attached);
        # retry-safety still reaches the transport's stale-keep-alive
        # retry rule.
        raw = self.transport.exchange(ExchangeSpec(
            destination, build_request(request), retry_safe=not updating))
        message = self._decode(raw, None, destination)
        per_call = self._extract_results(message, calls, updating)
        self._record_participants(destination, message.participating_peers)
        return per_call

    def call_parallel(self, grouped: list[tuple[str, str, Optional[str], str,
                                                int, list[list[list]], bool]],
                      tolerate_faults: bool = False,
                      capture_transport_errors: bool = False,
                      ) -> list:
        """Dispatch several bulk requests to different peers in parallel.

        Each entry is ``(destination, module_uri, location, function,
        arity, calls, updating)``.  Returns the per-request result lists
        in input order.

        With ``tolerate_faults`` a request answered by a SOAP *fault*
        yields ``None`` instead of raising — used by the speculative
        phase of the bulk executor, where a recorded call may have
        placeholder-derived arguments and its *direct* re-send (with
        real arguments) is the authoritative attempt.

        With ``capture_transport_errors`` (requires a channel) a request
        whose *transport* failed terminally yields its
        :class:`TransportError` in the result slot instead of raising —
        the partial-results ("degrade") policy turns those slots into a
        degraded-peers report.
        """
        if self.channel is not None:
            return self._call_parallel_channel(grouped, tolerate_faults,
                                               capture_transport_errors)
        requests = []
        specs = []
        for destination, module_uri, location, function, arity, calls, \
                updating in grouped:
            request = self._make_request(module_uri, location, function,
                                         arity, updating)
            for params in calls:
                request.add_call(params)
            requests.append(request)
            specs.append(ExchangeSpec(destination, build_request(request),
                                      retry_safe=not updating))
            self.messages_sent += 1
            self.calls_shipped += len(calls)
        raw_responses = self.transport.exchange_many(specs)
        results: list = []
        for (destination, _module, _location, _function, _arity, calls,
             updating), raw in zip(grouped, raw_responses):
            if isinstance(raw, TransportError):
                if capture_transport_errors:
                    results.append(raw)
                    continue
                raise raw
            try:
                message = self._decode(raw, None, destination)
                per_call = self._extract_results(message, calls, updating)
            except XRPCFault:
                if tolerate_faults:
                    results.append(None)
                    continue
                raise
            self._record_participants(destination,
                                      message.participating_peers)
            results.append(per_call)
        return results

    def _call_parallel_channel(self, grouped, tolerate_faults: bool,
                               capture_transport_errors: bool) -> list:
        entries = []
        for destination, module_uri, location, function, arity, calls, \
                updating in grouped:
            request = self._make_request(module_uri, location, function,
                                         arity, updating)
            for params in calls:
                request.add_call(params)
            self.messages_sent += 1
            self.calls_shipped += len(calls)
            entries.append(self._channel_entry(
                destination, request, calls, updating,
                tolerate_faults=tolerate_faults))
        return self.channel.exchange_many(
            entries, deadline=self.deadline, events=self.events,
            capture=capture_transport_errors)

    # -- 2PC driver side ---------------------------------------------------------

    def send_txn_command(self, destination: str, kind: str) -> TxnResult:
        if self.query_id is None:
            raise XRPCFault("env:Sender",
                            "transaction commands require a queryID")
        command = TxnCommand(kind, self.query_id)
        self.messages_sent += 1

        def build(attempt: int, remaining: Optional[float]) -> str:
            command.exchange_id = _next_exchange_id(self.origin)
            command.deadline_remaining = remaining
            return build_txn_command(command)

        def parse(raw: str) -> TxnResult:
            message = self._decode(raw, command.exchange_id, destination)
            return self._txn_reply(message, kind)

        if self.channel is not None:
            # Participant operations are idempotent on the server side
            # (prepare re-entry is a no-op, commit/rollback replays are
            # answered from the decision log), so retrying them is safe.
            return self.channel.exchange(
                destination, build, parse, retry_safe=True,
                deadline=self.deadline, events=self.events)
        raw = self.transport.exchange(ExchangeSpec(
            destination, build_txn_command(command), retry_safe=True))
        return self._txn_reply(self._decode(raw, None, destination), kind)

    @staticmethod
    def _txn_reply(message, kind: str) -> TxnResult:
        if isinstance(message, TxnResult):
            if message.kind != kind:
                raise XRPCFault(
                    "env:Receiver",
                    f"txn reply answers {message.kind!r}, expected {kind!r}")
            return message
        if isinstance(message, XRPCFaultMessage):
            return TxnResult(kind=kind, ok=False, detail=message.reason)
        raise XRPCFault("env:Receiver", "unexpected reply to txn command")
