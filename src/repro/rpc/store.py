"""Versioned document store with copy-on-access snapshots.

Models the storage layer the paper's isolation semantics need: the
current committed state of every document, a per-document commit
version, and :class:`Snapshot` views that pin the state a queryID first
saw (repeatable read, rule R'_Fr).

MonetDB/XQuery implements this with shadow paging; at our granularity a
snapshot lazily deep-copies each document on first access, and a commit
swaps the (updated) snapshot copy in as the new current version.
"""

from __future__ import annotations

from typing import Iterator, Optional, Union

from repro.errors import DynamicError, TransactionError
from repro.xdm.nodes import DocumentNode, copy_tree
from repro.xml.parser import parse_document


class DocumentStore:
    """Named documents plus per-document commit versions."""

    def __init__(self) -> None:
        self._documents: dict[str, DocumentNode] = {}
        self._versions: dict[str, int] = {}

    # -- registration ------------------------------------------------------

    def register(self, uri: str,
                 content: Union[str, bytes, DocumentNode],
                 backend: Optional[str] = None) -> DocumentNode:
        """Load (or replace) a document; accepts XML text or a parsed tree.

        Raw content may be ``str`` or encoded ``bytes`` (decoded per the
        XML declaration/BOM); ``backend`` selects the parse frontend —
        cold registration is the bulk-ingest path the expat backend is
        for.
        """
        if isinstance(content, (str, bytes)):
            document = parse_document(content, uri=uri, backend=backend)
        else:
            document = content
            document.uri = document.uri or uri
        self._documents[uri] = document
        self._versions[uri] = self._versions.get(uri, 0) + 1
        return document

    def put(self, uri: str, document: DocumentNode) -> None:
        """fn:put target — same as register with a parsed tree."""
        self.register(uri, document)

    # -- access ------------------------------------------------------------

    def get(self, uri: str) -> DocumentNode:
        try:
            return self._documents[uri]
        except KeyError:
            raise DynamicError("FODC0002", f"document {uri!r} not in store")

    def contains(self, uri: str) -> bool:
        return uri in self._documents

    def version(self, uri: str) -> int:
        return self._versions.get(uri, 0)

    def uris(self) -> Iterator[str]:
        return iter(self._documents)

    # -- commits -------------------------------------------------------------

    def bump_version(self, uri: str) -> None:
        """Record an in-place mutation of the current document."""
        self._versions[uri] = self._versions.get(uri, 0) + 1

    def swap_in(self, uri: str, document: DocumentNode,
                expected_version: int) -> None:
        """Install a new current version (snapshot-commit path).

        Raises
        ------
        TransactionError
            If the document changed since *expected_version* (write-write
            conflict detected too late — callers should have checked at
            Prepare already).
        """
        if self.version(uri) != expected_version:
            raise TransactionError(
                f"write-write conflict on {uri!r}: version moved "
                f"{expected_version} -> {self.version(uri)}")
        document.uri = uri
        self._documents[uri] = document
        self._versions[uri] = expected_version + 1

    def snapshot(self) -> "Snapshot":
        return Snapshot(self)


class Snapshot:
    """A stable view of the store as of snapshot creation.

    Documents are deep-copied on first access; later commits to the
    store do not affect copies already taken, and the base version of
    each copy is recorded for conflict detection at Prepare.
    """

    def __init__(self, store: DocumentStore) -> None:
        self._store = store
        self._copies: dict[str, DocumentNode] = {}
        self._base_versions: dict[str, int] = {}

    def get(self, uri: str) -> DocumentNode:
        if uri not in self._copies:
            source = self._store.get(uri)
            copy = copy_tree(source)
            assert isinstance(copy, DocumentNode)
            copy.uri = uri
            self._copies[uri] = copy
            self._base_versions[uri] = self._store.version(uri)
        return self._copies[uri]

    def contains(self, uri: str) -> bool:
        return uri in self._copies or self._store.contains(uri)

    def base_version(self, uri: str) -> Optional[int]:
        return self._base_versions.get(uri)

    def touched_uris(self) -> list[str]:
        return list(self._copies)

    def has_conflicts(self, uris: list[str]) -> list[str]:
        """URIs among *uris* whose store version moved since snapshot."""
        return [
            uri for uri in uris
            if uri in self._base_versions
            and self._store.version(uri) != self._base_versions[uri]
        ]

    def commit_into_store(self, uris: list[str]) -> None:
        """Swap updated snapshot copies in as the new current versions."""
        for uri in uris:
            if uri in self._copies:
                self._store.swap_in(
                    uri, self._copies[uri], self._base_versions[uri])
