"""The XRPC runtime: peers, servers, clients, isolation, 2PC.

This package wires the substrates together into the system of the paper:

* :class:`~repro.rpc.store.DocumentStore` — named XML documents with
  versioning and copy-on-access snapshots (MonetDB's snapshot isolation
  via shadow paging, modelled at document granularity);
* :class:`~repro.rpc.isolation.IsolationManager` — per-queryID snapshots
  with relative timeouts and expired-queryID bookkeeping (section 2.2);
* :class:`~repro.rpc.client.ClientSession` — the message sender API /
  "stub code" incl. Bulk RPC and participating-peer tracking;
* :class:`~repro.rpc.server.XRPCServer` — the request handler;
* :class:`~repro.rpc.peer.XRPCPeer` — a full peer (engine + store +
  server + client) able to originate and serve distributed queries;
* :class:`~repro.rpc.coordinator.TransactionCoordinator` — the
  WS-AtomicTransaction-style 2PC driver (section 2.3).
"""

from repro.rpc.store import DocumentStore, Snapshot
from repro.rpc.isolation import IsolationManager
from repro.rpc.client import ClientSession
from repro.rpc.server import XRPCServer
from repro.rpc.peer import XRPCPeer, QueryResult
from repro.rpc.coordinator import TransactionCoordinator

__all__ = [
    "DocumentStore",
    "Snapshot",
    "IsolationManager",
    "ClientSession",
    "XRPCServer",
    "XRPCPeer",
    "QueryResult",
    "TransactionCoordinator",
]
