"""WS-Coordination / WS-AtomicTransaction style coordinator.

The paper deliberately keeps 2PC out of the XRPC protocol proper and
relies on the WS-AtomicTransaction industry standard.  This module
provides the coordinator object in that architecture: peers are
*registered* for a transaction (the originating peer knows them all via
the participating-peer piggyback), then the coordinator drives
Prepare/Commit — or Rollback on any 'no' vote.

:class:`~repro.rpc.peer.XRPCPeer` embeds this flow inline for the common
case; the standalone coordinator exists for explicit use and for tests
that exercise failure paths (participant votes no, late commit, ...).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.errors import TransactionError, TransportError
from repro.net.retry import ResilientChannel
from repro.net.transport import ExchangeSpec, Transport
from repro.soap.messages import QueryID, TxnCommand, TxnResult, \
    build_txn_command, parse_message


@dataclass
class TransactionOutcome:
    committed: bool
    votes: dict[str, bool] = field(default_factory=dict)
    detail: str = ""


class TransactionCoordinator:
    """Drives 2PC for one distributed transaction (one queryID)."""

    def __init__(self, transport: Transport, query_id: QueryID,
                 channel: Optional[ResilientChannel] = None) -> None:
        self.transport = transport
        self.query_id = query_id
        self.channel = channel
        self._participants: list[str] = []
        self.state = "active"  # active | prepared | committed | aborted

    @classmethod
    def resume(cls, transport: Transport, query_id: QueryID,
               participants: list[str],
               channel: Optional[ResilientChannel] = None,
               ) -> "TransactionCoordinator":
        """Rebuild a coordinator from its durable record after a crash.

        A real implementation reads the participant list and the
        prepared mark from the coordinator's stable log; tests hand them
        in directly.  The resumed coordinator starts ``prepared``, so
        the only legal moves are replaying the decision: ``commit`` or
        ``rollback`` — both answered idempotently by participants'
        decision logs.
        """
        coordinator = cls(transport, query_id, channel=channel)
        coordinator._participants = list(participants)
        coordinator.state = "prepared"
        return coordinator

    def register(self, participant: str) -> None:
        """WS-Coordination registration of a participating peer."""
        if self.state != "active":
            raise TransactionError(
                f"cannot register participants in state {self.state!r}")
        if participant not in self._participants:
            self._participants.append(participant)

    @property
    def participants(self) -> list[str]:
        return list(self._participants)

    def _send(self, destination: str, kind: str) -> TxnResult:
        """One participant operation; these are idempotent server-side,
        so the resilient channel (when attached) may retry freely."""
        payload = build_txn_command(TxnCommand(kind, self.query_id))
        if self.channel is not None:
            return self.channel.exchange(
                destination,
                build=lambda attempt, remaining: payload,
                parse=lambda raw: self._decode(destination, kind, raw),
                retry_safe=True)
        raw = self.transport.exchange(
            ExchangeSpec(destination, payload, retry_safe=True))
        return self._decode(destination, kind, raw)

    @staticmethod
    def _decode(destination: str, kind: str, raw: str) -> TxnResult:
        reply = parse_message(raw)
        if not isinstance(reply, TxnResult):
            raise TransactionError(
                f"unexpected reply from {destination} to {kind}")
        return reply

    def prepare(self) -> TransactionOutcome:
        """Phase 1: collect votes; abort everyone on the first 'no'.

        An unreachable participant counts as a 'no' vote (presumed
        abort): everyone already prepared is rolled back best-effort.
        """
        outcome = TransactionOutcome(committed=False)
        prepared: list[str] = []
        for participant in self._participants:
            try:
                vote = self._send(participant, "prepare")
            except TransportError as exc:
                vote = TxnResult(kind="prepare", ok=False,
                                 detail=f"unreachable: {exc}")
            outcome.votes[participant] = vote.ok
            if not vote.ok:
                outcome.detail = vote.detail
                for already in prepared:
                    self._try_rollback(already)
                self.state = "aborted"
                return outcome
            prepared.append(participant)
        self.state = "prepared"
        return outcome

    def commit(self) -> TransactionOutcome:
        """Phase 2: commit everyone (requires a successful prepare).

        Once prepared, commit is the decision: an unreachable
        participant leaves the coordinator ``prepared`` so the decision
        can be replayed on reconnect (participants answer replays from
        their decision logs).
        """
        if self.state != "prepared":
            raise TransactionError(
                f"commit requires prepared state, not {self.state!r}")
        outcome = TransactionOutcome(committed=True)
        unreachable = False
        for participant in self._participants:
            try:
                ack = self._send(participant, "commit")
            except TransportError as exc:
                unreachable = True
                outcome.votes[participant] = False
                outcome.committed = False
                outcome.detail = f"{participant} unreachable: {exc}"
                continue
            outcome.votes[participant] = ack.ok
            if not ack.ok:
                outcome.committed = False
                outcome.detail = ack.detail
        if outcome.committed:
            self.state = "committed"
        elif unreachable:
            self.state = "prepared"  # decision stands: replay later
        else:
            self.state = "aborted"
        return outcome

    def rollback(self) -> None:
        for participant in self._participants:
            self._try_rollback(participant)
        self.state = "aborted"

    def _try_rollback(self, participant: str) -> None:
        """Best-effort abort; an unreachable peer expires on its own."""
        try:
            self._send(participant, "rollback")
        except TransportError:
            pass

    def run(self) -> TransactionOutcome:
        """Full 2PC: prepare then commit, rollback on any 'no' vote."""
        outcome = self.prepare()
        if self.state != "prepared":
            return outcome
        return self.commit()
