"""WS-Coordination / WS-AtomicTransaction style coordinator.

The paper deliberately keeps 2PC out of the XRPC protocol proper and
relies on the WS-AtomicTransaction industry standard.  This module
provides the coordinator object in that architecture: peers are
*registered* for a transaction (the originating peer knows them all via
the participating-peer piggyback), then the coordinator drives
Prepare/Commit — or Rollback on any 'no' vote.

:class:`~repro.rpc.peer.XRPCPeer` embeds this flow inline for the common
case; the standalone coordinator exists for explicit use and for tests
that exercise failure paths (participant votes no, late commit, ...).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import TransactionError
from repro.net.transport import Transport
from repro.soap.messages import QueryID, TxnCommand, TxnResult, \
    build_txn_command, parse_message


@dataclass
class TransactionOutcome:
    committed: bool
    votes: dict[str, bool] = field(default_factory=dict)
    detail: str = ""


class TransactionCoordinator:
    """Drives 2PC for one distributed transaction (one queryID)."""

    def __init__(self, transport: Transport, query_id: QueryID) -> None:
        self.transport = transport
        self.query_id = query_id
        self._participants: list[str] = []
        self.state = "active"  # active | prepared | committed | aborted

    def register(self, participant: str) -> None:
        """WS-Coordination registration of a participating peer."""
        if self.state != "active":
            raise TransactionError(
                f"cannot register participants in state {self.state!r}")
        if participant not in self._participants:
            self._participants.append(participant)

    @property
    def participants(self) -> list[str]:
        return list(self._participants)

    def _send(self, destination: str, kind: str) -> TxnResult:
        payload = build_txn_command(TxnCommand(kind, self.query_id))
        reply = parse_message(self.transport.send(destination, payload))
        if not isinstance(reply, TxnResult):
            raise TransactionError(
                f"unexpected reply from {destination} to {kind}")
        return reply

    def prepare(self) -> TransactionOutcome:
        """Phase 1: collect votes; abort everyone on the first 'no'."""
        outcome = TransactionOutcome(committed=False)
        prepared: list[str] = []
        for participant in self._participants:
            vote = self._send(participant, "prepare")
            outcome.votes[participant] = vote.ok
            if not vote.ok:
                outcome.detail = vote.detail
                for already in prepared:
                    self._send(already, "rollback")
                self.state = "aborted"
                return outcome
            prepared.append(participant)
        self.state = "prepared"
        return outcome

    def commit(self) -> TransactionOutcome:
        """Phase 2: commit everyone (requires a successful prepare)."""
        if self.state != "prepared":
            raise TransactionError(
                f"commit requires prepared state, not {self.state!r}")
        outcome = TransactionOutcome(committed=True)
        for participant in self._participants:
            ack = self._send(participant, "commit")
            outcome.votes[participant] = ack.ok
            if not ack.ok:
                outcome.committed = False
                outcome.detail = ack.detail
        self.state = "committed" if outcome.committed else "aborted"
        return outcome

    def rollback(self) -> None:
        for participant in self._participants:
            self._send(participant, "rollback")
        self.state = "aborted"

    def run(self) -> TransactionOutcome:
        """Full 2PC: prepare then commit, rollback on any 'no' vote."""
        outcome = self.prepare()
        if self.state != "prepared":
            return outcome
        return self.commit()
