"""A full XRPC peer: engine + document store + server + client.

A peer can *originate* distributed queries (``execute_query``) and
*serve* incoming XRPC requests (through its :class:`XRPCServer`).

Originating side highlights:

* ``declare option xrpc:isolation "repeatable"`` attaches a queryID to
  every outgoing request so remote peers pin snapshots (rule R'_Fr);
  ``declare option xrpc:timeout "30"`` sets the relative timeout.
* With a :class:`~repro.engine.MonetEngine`, ``execute at`` calls are
  shipped as **Bulk RPC**: the loop-lifted batching executor sends one
  message per (destination, function) group, dispatched in parallel to
  distinct peers — exactly the behaviour of Figures 1/2.
* Updating queries under isolation finish with WS-AtomicTransaction-style
  2PC over all participating peers (piggybacked on responses).
"""

from __future__ import annotations

import math
from collections import deque
from dataclasses import dataclass, field, replace
from typing import Optional

from repro.engine import Engine, MonetEngine
from repro.engine.base import Explain
from repro.errors import (DynamicError, TransactionError, TransportError,
                          XRPCFault)
from repro.net.clock import WallClock
from repro.net.cost import PeerCostModel
from repro.net.retry import (NET_STATS, BreakerRegistry, Deadline, NetEvents,
                             ResilientChannel, RetryPolicy)
from repro.net.transport import Transport, normalize_peer_uri
from repro.rpc.client import ClientSession
from repro.rpc.isolation import IsolationManager
from repro.rpc.server import XRPCServer
from repro.rpc.store import DocumentStore
from repro.soap.marshal import marshal_fingerprint
from repro.soap.messages import QueryID
from repro.xquery import xast as A
from repro.xquery.context import DynamicContext, ExecutionContext, RemoteCall
from repro.xquery.evaluator import CompiledQuery, Evaluator
from repro.xquery.modules import ModuleRegistry
from repro.xquf.pul import PendingUpdateList, apply_updates

_SYS_MODULE = """
module namespace sys = "http://monetdb.cwi.nl/XQuery/sys";
declare function sys:get-doc($uri as xs:string) as document-node()
{ doc($uri) };
declare function sys:kw-search($terms as xs:string*) as node()*
{ () };
"""
_SYS_NS = "http://monetdb.cwi.nl/XQuery/sys"


@dataclass
class QueryResult:
    """Outcome of one originated query, with execution statistics."""

    sequence: list
    elapsed_seconds: float
    messages_sent: int
    calls_shipped: int
    participants: list[str] = field(default_factory=list)
    used_bulk_rpc: bool = False
    committed_2pc: bool = False
    # Unified-pipeline telemetry (the session API's explain surface).
    plan: Optional[str] = None            # "lifted" | "interpreter"
    fallback_reason: Optional[str] = None
    fallback_code: Optional[str] = None
    compile_seconds: float = 0.0
    cache_hit: bool = False
    # Update-path cost of this query's local PUL application (deltas of
    # the executing thread's ENCODING_STATS, like Engine.execute).
    reencodes_full: int = 0
    reencodes_subtree: int = 0
    gap_respreads: int = 0
    index_patches: int = 0
    # Fault-tolerance outcome: peers skipped under the partial-results
    # policy (``on_peer_failure="degrade"``) and this query's share of
    # the net-layer event counters (from its NetEvents sink).
    degraded: bool = False
    failed_peers: list[str] = field(default_factory=list)
    net_retries: int = 0
    net_giveups: int = 0
    net_breaker_opens: int = 0
    net_breaker_fast_fails: int = 0
    net_deadline_expired: int = 0
    net_degraded_peers: int = 0

    def explain(self) -> Explain:
        """Plan telemetry in the session API's :class:`Explain` shape."""
        return Explain(
            plan=self.plan or "interpreter",
            fallback_reason=self.fallback_reason,
            fallback_code=self.fallback_code,
            compile_seconds=self.compile_seconds,
            execute_seconds=self.elapsed_seconds,
            cache_hit=self.cache_hit,
            reencodes_full=self.reencodes_full,
            reencodes_subtree=self.reencodes_subtree,
            gap_respreads=self.gap_respreads,
            index_patches=self.index_patches,
            net_retries=self.net_retries,
            net_giveups=self.net_giveups,
            net_breaker_opens=self.net_breaker_opens,
            net_breaker_fast_fails=self.net_breaker_fast_fails,
            net_deadline_expired=self.net_deadline_expired,
            net_degraded_peers=self.net_degraded_peers,
        )


@dataclass
class DistributedSearchResult:
    """Merged outcome of one distributed keyword search."""

    hits: list
    messages_sent: int
    peers: list[str] = field(default_factory=list)
    # Partial-results outcome under ``on_peer_failure="degrade"``.
    degraded: bool = False
    failed_peers: list[str] = field(default_factory=list)


class XRPCPeer:
    """One peer in the distributed XQuery network."""

    def __init__(
        self,
        host: str,
        transport: Transport,
        engine: Optional[Engine] = None,
        cost_model: Optional[PeerCostModel] = None,
        retry_policy: Optional[RetryPolicy] = None,
        breakers: Optional[BreakerRegistry] = None,
    ) -> None:
        self.host = normalize_peer_uri(host)
        self.transport = transport
        self.engine = engine or MonetEngine()
        self.registry: ModuleRegistry = self.engine.registry
        self.store = DocumentStore()
        self.clock = getattr(transport, "clock", None) or WallClock()
        self.cost_model = cost_model
        # Every exchange this peer originates (including nested calls
        # made while serving) runs through one resilience channel, so
        # breaker state about a destination is shared peer-wide.
        self.breakers = breakers or BreakerRegistry()
        self.channel = ResilientChannel(
            transport, policy=retry_policy, breakers=self.breakers,
            clock=self.clock)
        self.isolation = IsolationManager(self.store, self.clock)
        self.server = XRPCServer(self)
        self.evaluator = Evaluator()
        self.registry.register_source(_SYS_MODULE)
        # The keyword-search service endpoint: the declaration's body is
        # a stub — the serving side intercepts calls to it by identity
        # (see run_function) and answers from the posting-list kernels.
        self._kw_search_decl = self.registry.by_namespace(
            _SYS_NS).get_function("kw-search", 1)
        register = getattr(transport, "register_peer", None)
        if register is not None:
            register(self.host, self.server.handle)

    # ------------------------------------------------------------------
    # Serving side helpers (used by XRPCServer)

    def run_function(self, decl: A.FunctionDecl, params: list[list],
                     doc_view, session: ClientSession) -> tuple[list, PendingUpdateList]:
        """Apply a module function to unmarshaled parameters."""
        if decl is self._kw_search_decl:
            # Service endpoint, not a user function: answer from this
            # peer's term indexes instead of evaluating the stub body.
            return self._serve_keyword_search(params, doc_view), \
                PendingUpdateList()
        ctx = self._make_context(doc_view, session)
        result = self.evaluator.call_user_function(decl, params, ctx)
        return result, ctx.pul or PendingUpdateList()

    def _serve_keyword_search(self, params: list[list], doc_view) -> list:
        """Serve one ``sys:kw-search`` bulk call: SLCA keyword search
        over every document this peer holds (through *doc_view*, so
        isolation snapshots are honoured), answered as ``<hit>`` wrapper
        elements carrying the origin URI and term-frequency score —
        self-describing on the wire, so the originator can merge ranked
        results without a second round trip."""
        from repro.search.index import keyword_search
        from repro.xdm.atomic import AtomicValue
        from repro.xml.parser import parse_document
        from repro.xml.serializer import escape_attribute, serialize

        [term_items] = params
        terms = [item.value if isinstance(item, AtomicValue)
                 else item.string_value() for item in term_items]
        hits = []
        for uri in self.store.uris():
            document = doc_view.get(uri)
            for hit in keyword_search(document, terms):
                xml = (f'<hit uri="{escape_attribute(uri)}" '
                       f'score="{hit.score}">'
                       f"{serialize(hit.node)}</hit>")
                wrapper = parse_document(xml)
                hits.append(wrapper.children[0])
        return hits

    def _make_context(self, doc_view, session: Optional[ClientSession]) -> DynamicContext:
        from repro.xquery.context import StaticContext
        ctx = DynamicContext(
            StaticContext(),
            doc_resolver=self.make_doc_resolver(doc_view, session),
            xrpc_handler=self._one_at_a_time_handler(session)
            if session is not None else None,
        )
        ctx.pul = PendingUpdateList()
        ctx.put_store = self.store.put
        ctx.optimize_joins = self.engine.optimize_flwor_joins
        ctx.accelerator = self.engine.accelerator
        return ctx

    def make_doc_resolver(self, doc_view, session: Optional[ClientSession]):
        """fn:doc resolution: local store/snapshot, or remote fetch
        (data shipping) for ``xrpc://other-host/path`` URIs."""
        cache: dict[str, object] = {}

        def resolve(uri: str):
            if uri in cache:
                return cache[uri]
            document = None
            if uri.startswith("xrpc://"):
                host = normalize_peer_uri(uri)
                path = uri.split(host, 1)[1].lstrip("/")
                if host == self.host:
                    document = doc_view.get(path)
                else:
                    if session is None:
                        raise DynamicError(
                            "FODC0002",
                            f"cannot fetch remote document {uri!r} "
                            "without a client session")
                    document = self.fetch_remote_document(host, path, session)
            else:
                document = doc_view.get(uri)
            cache[uri] = document
            return document

        return resolve

    def fetch_remote_document(self, host: str, path: str,
                              session: ClientSession):
        """Data shipping: pull a whole document from a remote peer."""
        from repro.xdm.atomic import string as make_string
        [result] = session.call(
            host, _SYS_NS, None, "get-doc", 1, [[[make_string(path)]]])
        if len(result) != 1:
            raise XRPCFault("env:Receiver",
                            f"remote peer returned {len(result)} documents")
        return result[0]

    def _one_at_a_time_handler(self, session: ClientSession):
        def handle(call: RemoteCall) -> list:
            [result] = session.call(
                call.destination, call.module_uri, call.location,
                call.function, call.arity, [call.args],
                updating=call.updating)
            return result

        return handle

    # ------------------------------------------------------------------
    # Originating side

    def execute_query(self, source: str,
                      variables: Optional[dict[str, list]] = None,
                      force_one_at_a_time: bool = False,
                      try_lifted: bool = True,
                      timeout: Optional[float] = None,
                      on_peer_failure: str = "fail") -> QueryResult:
        """Compile and run a query at this peer (the p0 role).

        This is the peer face of the unified session API: the compiled
        query comes from the engine's shared plan cache, the loop-lifted
        relational plan is tried first (its ``execute at`` groups ship
        as Bulk RPC straight from the algebra translation, Figure 2) and
        anything outside the lifted core falls back to the tree
        interpreter behind the operationally-equivalent batching
        executor.  Plan choice and fallback reason are recorded on the
        returned :class:`QueryResult` (see :meth:`QueryResult.explain`).

        Fault tolerance: ``declare option xrpc:timeout "N"`` (or an
        explicit ``timeout=`` argument, which wins) sets a whole-query
        deadline budget in seconds; its remaining balance rides every
        exchange as the socket timeout and a SOAP header, so remote
        peers abandon doomed bulk work too.
        ``on_peer_failure="degrade"`` turns terminal transport failures
        of *read-only* bulk groups into partial results — the answer
        merges what reachable peers returned, ``QueryResult.degraded``
        is set and ``failed_peers`` names the skipped sites.  Updating
        groups (and 2PC) always fail closed regardless.

        The lifted plan ships one message per (call site, destination)
        *during* evaluation; two query shapes therefore route straight
        to the batching executor: several ``execute at`` sites (its
        (destination, function) grouping ships fewer messages) and
        updating remote calls (it records phase 1 without shipping, so
        a dynamic lifted bail can never apply an update twice).
        ``try_lifted=False`` forces the interpreter path outright.
        """
        if on_peer_failure not in ("fail", "degrade"):
            raise ValueError(
                f"on_peer_failure must be 'fail' or 'degrade', "
                f"not {on_peer_failure!r}")
        compiled, compile_seconds, cache_hit = \
            self.engine.compile_with_stats(source)

        isolation = compiled.options.get("xrpc:isolation", "none")
        option_timeout = compiled.options.get("xrpc:timeout")
        # The isolation lease rides the same budget, rounded up to whole
        # seconds (fractional budgets are legal: `xrpc:timeout "1.5"`).
        iso_timeout = (max(1, math.ceil(float(option_timeout)))
                       if option_timeout is not None else 60)
        query_id = None
        if isolation == "repeatable":
            query_id = QueryID(host=self.host, timestamp=self.clock.now(),
                               timeout=iso_timeout)
        # The query's deadline budget: only armed when asked for (the
        # explicit argument wins over the query's own option) — without
        # one, exchanges carry no deadline header and never expire.
        deadline = None
        if timeout is not None:
            deadline = Deadline.after(timeout, self.clock)
        elif option_timeout is not None:
            deadline = Deadline.after(float(option_timeout), self.clock)

        from repro.xdm.structural import ENCODING_STATS

        events = NetEvents()
        session = ClientSession(self.transport, origin=self.host,
                                query_id=query_id, channel=self.channel,
                                deadline=deadline, events=events)
        started = self.clock.now()
        encoding_before = ENCODING_STATS.snapshot_local()

        use_bulk = self.engine.bulk_rpc and not force_one_at_a_time
        context = self._make_execution_context(session, variables,
                                               try_lifted=use_bulk
                                               and try_lifted)

        plan = "interpreter"
        fallback_reason = None
        fallback_code = None
        result: list = []
        pul = PendingUpdateList()
        if context.try_lifted:
            # Route from the prepare-time static analysis: the site
            # profile covers the whole locally-evaluated tree (query
            # body plus locally-called function bodies), not just the
            # body's own execute-at occurrences.
            profile = self.engine.analyze(compiled, context).sites
            sites, has_updating = profile.count, profile.updating_remote
            if sites > 1:
                fallback_reason = (
                    f"ExecuteAt: {sites} call sites group better through "
                    "the batching executor")
                fallback_code = "execute-at-routing"
            elif has_updating:
                fallback_reason = (
                    "ExecuteAt: updating remote calls route through the "
                    "batching executor (no speculative shipping)")
                fallback_code = "execute-at-routing"
            else:
                lifted, fallback_reason, fallback_code = \
                    self.engine.attempt_lifted(source, compiled, context)
                if fallback_reason is None:
                    result = lifted
                    plan = "lifted"
        if plan != "lifted":
            if use_bulk:
                result, pul = self._execute_bulk(
                    compiled, session, context,
                    on_peer_failure=on_peer_failure)
            else:
                result, pul = self._execute_direct(compiled, session, context)
        self.engine.record_plan(plan, fallback_reason, fallback_code)

        committed = False
        if query_id is not None and session.participants:
            committed = self._finish_transaction(session)
        if pul:
            apply_updates(pul)
            for uri in _touched_uris(pul):
                if self.store.contains(uri):
                    self.store.bump_version(uri)
        encoding_after = ENCODING_STATS.snapshot_local()

        return QueryResult(
            sequence=result,
            elapsed_seconds=self.clock.now() - started,
            messages_sent=session.messages_sent,
            calls_shipped=session.calls_shipped,
            participants=list(session.participants),
            used_bulk_rpc=use_bulk,
            committed_2pc=committed,
            plan=plan,
            fallback_reason=fallback_reason,
            fallback_code=fallback_code,
            compile_seconds=compile_seconds,
            cache_hit=cache_hit,
            reencodes_full=encoding_after["reencodes_full"]
            - encoding_before["reencodes_full"],
            reencodes_subtree=encoding_after["reencodes_subtree"]
            - encoding_before["reencodes_subtree"],
            gap_respreads=encoding_after["gap_respreads"]
            - encoding_before["gap_respreads"],
            index_patches=encoding_after["index_patches"]
            - encoding_before["index_patches"],
            degraded=bool(events.failed_peers),
            failed_peers=list(events.failed_peers),
            net_retries=events.get("retries"),
            net_giveups=events.get("retry_giveups"),
            net_breaker_opens=events.get("breaker_opens"),
            net_breaker_fast_fails=events.get("breaker_fast_fails"),
            net_deadline_expired=events.get("deadline_expired"),
            net_degraded_peers=events.get("degraded_peers"),
        )

    def keyword_search(self, terms, peers: Optional[list[str]] = None,
                       ranked: bool = False,
                       on_peer_failure: str = "fail",
                       timeout: Optional[float] = None,
                       ) -> "DistributedSearchResult":
        """Distributed keyword search: one bulk message per site.

        *terms* (a string or iterable of strings) is shipped to every
        peer in *peers* as a single ``sys:kw-search`` request per site —
        all terms travel in one message, dispatched in parallel across
        distinct destinations like any Bulk RPC group — plus a local
        posting-list search when this peer holds documents.  Each remote
        answers with self-describing ``<hit uri score>`` wrappers; the
        originator unwraps them into
        :class:`~repro.search.index.SearchHit` records and merges
        site-by-site in the order given, document order within each
        site (each site's hits arrive doc-ordered by construction).
        ``ranked=True`` re-sorts the merged list by descending
        term-frequency score (stable, so ties keep the site/doc order).

        Keyword search is read-only, so fan-out failures are retried and
        — with ``on_peer_failure="degrade"`` — a peer that stays
        unreachable is skipped: the merge covers the reachable sites and
        the result reports ``degraded=True`` with the ``failed_peers``
        list.  The default (``"fail"``) raises on the first terminal
        transport failure.  ``timeout`` bounds the whole fan-out.
        """
        from repro.search.index import SearchHit, keyword_search
        from repro.xdm.atomic import string as make_string

        if on_peer_failure not in ("fail", "degrade"):
            raise ValueError(
                f"on_peer_failure must be 'fail' or 'degrade', "
                f"not {on_peer_failure!r}")
        degrade = on_peer_failure == "degrade"
        if isinstance(terms, str):
            terms = [terms]
        else:
            terms = list(terms)
        peers = [normalize_peer_uri(peer) for peer in (peers or [])]
        events = NetEvents()
        deadline = None if timeout is None else \
            Deadline.after(timeout, self.clock)
        session = ClientSession(self.transport, origin=self.host,
                                channel=self.channel, deadline=deadline,
                                events=events)
        term_args = [[make_string(term) for term in terms]]
        requests = [
            (peer, _SYS_NS, None, "kw-search", 1, [term_args], False)
            for peer in peers if peer != self.host]
        responses = session.call_parallel(
            requests, capture_transport_errors=degrade) if requests else []
        hits: list = []
        remote = iter(responses)
        for peer in peers:
            if peer == self.host:
                for uri in self.store.uris():
                    for hit in keyword_search(self.store.get(uri), terms):
                        hits.append(replace(hit, uri=uri))
                continue
            response = next(remote)
            if isinstance(response, TransportError):
                self._register_degraded(events, peer)
                continue
            [result] = response
            for wrapper in result:
                attrs = {attr.name: attr.value for attr in wrapper.attributes}
                payload = [child for child in wrapper.children][0]
                hits.append(SearchHit(node=payload,
                                      score=int(attrs["score"]),
                                      uri=attrs["uri"]))
        if ranked:
            hits.sort(key=lambda hit: -hit.score)
        return DistributedSearchResult(
            hits=hits,
            messages_sent=session.messages_sent,
            peers=peers,
            degraded=bool(events.failed_peers),
            failed_peers=list(events.failed_peers))

    def _make_execution_context(self, session: ClientSession, variables,
                                try_lifted: bool) -> ExecutionContext:
        """The peer's :class:`ExecutionContext`: every remote-call hook
        bound to *session*, engine toggles copied over.

        ``doc_resolver`` carries a per-resolver document cache; phases
        that must not share it (the bulk executor's replay phase)
        install a fresh one via :meth:`make_doc_resolver`.
        """
        return ExecutionContext(
            doc_resolver=self.make_doc_resolver(self.store, session),
            variables=variables,
            dispatch=self._session_dispatch(session),
            dispatch_parallel=self._session_dispatch_parallel(session),
            xrpc_handler=self._one_at_a_time_handler(session),
            put_store=self.store.put,
            accelerator=self.engine.accelerator,
            optimize_joins=self.engine.optimize_flwor_joins,
            try_lifted=try_lifted,
            apply_updates=False,  # the peer applies after (optional) 2PC
            deadline=session.deadline,
        )

    def _session_dispatch(self, session: ClientSession):
        """Lifted-plan Bulk RPC shipping bound to one client session."""
        def dispatch(destination, module_uri, location, function, arity,
                     calls, updating=False) -> list:
            return session.call(destination, module_uri, location, function,
                                arity, calls, updating=updating)

        return dispatch

    def _session_dispatch_parallel(self, session: ClientSession):
        def dispatch_parallel(requests: list) -> list:
            return session.call_parallel(requests)

        return dispatch_parallel

    def _execute_direct(self, compiled: CompiledQuery, session: ClientSession,
                        context: ExecutionContext,
                        ) -> tuple[list, PendingUpdateList]:
        return compiled.run(replace(
            context,
            doc_resolver=self.make_doc_resolver(self.store, session)))

    # -- Bulk RPC via loop-lifted batching ---------------------------------

    def _register_degraded(self, events: NetEvents, destination: str) -> None:
        """Count one peer skipped under the partial-results policy.

        Idempotent per peer and execution: a site that fails several
        bulk groups is one degraded peer, not several.
        """
        key = normalize_peer_uri(destination)
        if key in events.degraded_counted:
            return
        events.degraded_counted.add(key)
        events.peer_failed(key)
        events.note("degraded_peers")
        NET_STATS.bump("degraded_peers")

    def _execute_bulk(self, compiled: CompiledQuery, session: ClientSession,
                      context: ExecutionContext,
                      on_peer_failure: str = "fail",
                      ) -> tuple[list, PendingUpdateList]:
        """Two-phase batched execution realising Bulk RPC.

        Phase 1 evaluates the query recording every ``execute at`` call
        (sound because XQUF defers all side effects); phase 2 groups the
        recorded calls by (destination, function) and ships one bulk
        message per group — in parallel across distinct destinations;
        phase 3 re-evaluates, answering each call from the bulk results.
        Calls whose arguments depend on other calls' results fall back
        to direct sending during phase 3.

        This is operationally equivalent to MonetDB's loop-lifting
        (section 3.2): an ``execute at`` in a for-loop becomes a single
        request per destination carrying all iterations' calls.
        """
        recorder = _CallRecorder()
        try:
            compiled.run(replace(
                context,
                doc_resolver=self.make_doc_resolver(self.store, session),
                xrpc_handler=recorder.record))
            phase1_ok = True
        except Exception:
            phase1_ok = False

        if not phase1_ok or not recorder.calls:
            return self._execute_direct(compiled, session, context)

        groups = recorder.groups

        # Safety for updating groups: an updating call recorded AFTER any
        # read-only call may have arguments derived from that call's
        # (placeholder) result — applying it speculatively could commit
        # wrong data under rule R_Fu. Defer such groups to phase 3.
        first_read_only = min(
            (index for index, call in enumerate(recorder.calls)
             if not call.updating), default=None)
        shippable = {}
        for key, group in groups.items():
            if key[4] and first_read_only is not None \
                    and group.first_index > first_read_only:
                continue  # possibly dependent updating group
            shippable[key] = group

        requests = [
            (key[0], key[1], group.location, key[2], key[3],
             [args for args, _ in group.entries], key[4])
            for key, group in shippable.items()
        ]
        degrade = on_peer_failure == "degrade"
        responses = session.call_parallel(requests, tolerate_faults=True,
                                          capture_transport_errors=degrade)

        replayer = _Replayer(session)
        for (key, group), results in zip(shippable.items(), responses):
            if isinstance(results, TransportError):
                # Terminal transport failure under the partial-results
                # policy.  Updating groups always fail closed — a
                # skipped update is a wrong answer, not a degraded one.
                if key[4]:
                    raise results
                assert session.events is not None
                self._register_degraded(session.events, key[0])
                replayer.mark_failed(key[0])
                continue
            if results is None:
                continue  # faulted speculative group: re-send directly
            replayer.load(key, group, results)

        return compiled.run(replace(
            context,
            doc_resolver=self.make_doc_resolver(self.store, session),
            xrpc_handler=replayer.handle))

    # -- 2PC -----------------------------------------------------------------

    def _finish_transaction(self, session: ClientSession) -> bool:
        """Run Prepare/Commit over all participants; rollback on failure.

        The originating peer plays the WS-Coordinator role (section 2.3):
        it knows the full participant list from response piggybacks.

        Fault handling follows the presumed-abort discipline: an
        unreachable participant during prepare counts as a 'no' vote and
        every prepared peer is rolled back (best effort — an
        unreachable one will expire its snapshot and abort locally).
        2PC never degrades: any failure here raises.
        """
        participants = list(session.participants)
        prepared: list[str] = []
        for participant in participants:
            try:
                vote = session.send_txn_command(participant, "prepare")
            except TransportError as exc:
                self._abort_prepared(session, prepared)
                raise TransactionError(
                    f"participant {participant} unreachable at prepare: "
                    f"{exc}") from exc
            if not vote.ok:
                self._abort_prepared(session, prepared + [participant])
                raise TransactionError(
                    f"participant {participant} voted no at prepare: "
                    f"{vote.detail}")
            prepared.append(participant)
        for participant in participants:
            try:
                ack = session.send_txn_command(participant, "commit")
            except TransportError as exc:
                # The global decision is commit and the participant's
                # decision log answers replays — re-delivery on
                # reconnect completes it — but *this* query cannot
                # claim a full commit.
                raise TransactionError(
                    f"participant {participant} unreachable at commit "
                    f"(decision logged; replay the commit on reconnect): "
                    f"{exc}") from exc
            if not ack.ok:
                raise TransactionError(
                    f"participant {participant} failed at commit: {ack.detail}")
        return True

    @staticmethod
    def _abort_prepared(session: ClientSession,
                        participants: list[str]) -> None:
        """Best-effort rollback fan-out; unreachable peers abort on
        their own when the queryID's snapshot expires."""
        for participant in participants:
            try:
                session.send_txn_command(participant, "rollback")
            except TransportError:
                pass


# ---------------------------------------------------------------------------
# Bulk RPC bookkeeping

_GroupKey = tuple  # (dest, module_uri, function, arity, updating)


def _group_key(call: RemoteCall) -> _GroupKey:
    return (normalize_peer_uri(call.destination), call.module_uri,
            call.function, call.arity, call.updating)


@dataclass
class _CallGroup:
    """All phase-1 calls to one (destination, function) pair."""

    location: Optional[str]
    first_index: int            # recording index of the group's first call
    entries: list = field(default_factory=list)  # (args, fingerprint)


class _CallRecorder:
    """Phase-1 handler: records calls, answers with empty sequences.

    Grouping and dependency-ordering bookkeeping happen here, at record
    time: each group carries its first recording index, and each call's
    arguments are fingerprinted once (their canonical marshaled form) so
    the phase-3 replayer can match calls by O(1) lookup instead of
    deep-equality scans.
    """

    def __init__(self) -> None:
        self.calls: list[RemoteCall] = []
        self.groups: dict[_GroupKey, _CallGroup] = {}

    def record(self, call: RemoteCall) -> list:
        key = _group_key(call)
        group = self.groups.get(key)
        if group is None:
            group = self.groups[key] = _CallGroup(
                location=call.location, first_index=len(self.calls))
        group.entries.append((call.args, marshal_fingerprint(call.args)))
        self.calls.append(call)
        return []


class _Replayer:
    """Phase-3 handler: answers calls from bulk results.

    Results are indexed by (group key, argument fingerprint); duplicate
    argument lists queue under one fingerprint and are served in
    recorded order.  Each replayed call costs one fingerprint render and
    a dict lookup — the former implementation deep-compared arguments
    against a shifting list queue, going quadratic on large bulks.
    """

    def __init__(self, session: ClientSession) -> None:
        self.session = session
        self._results: dict[_GroupKey, dict[str, deque]] = {}
        # Destinations degraded by the partial-results policy: replayed
        # read-only calls to them answer empty instead of re-dialling a
        # peer already judged unreachable.
        self._failed: set[str] = set()

    def load(self, key: _GroupKey, group: _CallGroup, results: list) -> None:
        by_fingerprint = self._results.setdefault(key, {})
        for (_, fingerprint), result in zip(group.entries, results):
            by_fingerprint.setdefault(fingerprint, deque()).append(result)

    def mark_failed(self, destination: str) -> None:
        self._failed.add(normalize_peer_uri(destination))

    def handle(self, call: RemoteCall) -> list:
        by_fingerprint = self._results.get(_group_key(call))
        if by_fingerprint:
            queue = by_fingerprint.get(marshal_fingerprint(call.args))
            if queue:
                return queue.popleft()
        if not call.updating \
                and normalize_peer_uri(call.destination) in self._failed:
            return []
        # Dependent call: its arguments match nothing phase 1 recorded
        # for this group (they depended on another call's placeholder
        # result). Ship it directly — the authoritative attempt.
        [result] = self.session.call(
            call.destination, call.module_uri, call.location, call.function,
            call.arity, [call.args], updating=call.updating)
        return result


def _touched_uris(pul: PendingUpdateList) -> list[str]:
    from repro.xdm.nodes import DocumentNode
    uris: list[str] = []
    for primitive in pul.primitives:
        root = primitive.target.root()
        if isinstance(root, DocumentNode) and root.uri and root.uri not in uris:
            uris.append(root.uri)
    return uris
