"""Per-queryID isolation state: snapshots, deferred PULs, 2PC hooks.

Implements section 2.2/2.3 of the paper on the server side:

* ``repeatable`` isolation — the first request carrying a queryID pins a
  snapshot; all later requests for the same queryID observe it;
* relative **timeouts** — after ``timeout`` local seconds the snapshot is
  discarded, but the queryID is *remembered* so that requests arriving
  too late receive an error rather than silently reading fresh state;
* per-host expiry administration — only the latest expired timestamp per
  originating host needs retaining (as the paper observes);
* deferred pending-update lists (rule R'_Fu) and the Prepare/Commit/
  Rollback participant operations of WS-AtomicTransaction.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import IsolationError, TransactionError
from repro.rpc.store import DocumentStore, Snapshot
from repro.soap.messages import QueryID
from repro.xdm.nodes import DocumentNode
from repro.xquf.pul import PendingUpdateList, apply_updates


@dataclass
class _QueryState:
    query_id: QueryID
    snapshot: Snapshot
    created_at: float           # local clock time of first request
    pul: PendingUpdateList = field(default_factory=PendingUpdateList)
    updating_calls: int = 0     # U^px_q in the paper
    state: str = "active"       # active | prepared | committed | aborted


class TransactionLog:
    """Stand-in for stable storage: records prepared transactions.

    The paper's Prepare rule logs the union of pending update lists to
    stable storage so the query can commit after a failure; we journal
    the decision records in-memory but through an explicit interface so
    the 2PC state machine is observable in tests.
    """

    def __init__(self) -> None:
        self.records: list[tuple[str, tuple[str, float]]] = []

    def log(self, action: str, query_key: tuple[str, float]) -> None:
        self.records.append((action, query_key))


class IsolationManager:
    """All isolation bookkeeping of one peer."""

    def __init__(self, store: DocumentStore, clock) -> None:
        self._store = store
        self._clock = clock
        self._active: dict[tuple[str, float], _QueryState] = {}
        # host -> latest expired timestamp (paper: per-host administration).
        self._expired: dict[str, float] = {}
        # queryID key -> terminal decision ("committed" | "aborted").
        # A coordinator that lost our acknowledgement (crash, dropped
        # response) replays its decision on reconnect; answering from
        # this log keeps commit/rollback idempotent instead of faulting
        # on the second delivery — the 2PC equivalent of the client's
        # retry-safe exchanges.
        self._decisions: dict[tuple[str, float], str] = {}
        self.log = TransactionLog()

    # -- snapshot lifecycle --------------------------------------------------

    def acquire(self, query_id: QueryID) -> Snapshot:
        """Snapshot for this queryID: create on first request, reuse after.

        Raises
        ------
        IsolationError
            If the queryID expired (request arrived too late).
        """
        self._purge_expired()
        key = query_id.key
        if key in self._active:
            return self._active[key].snapshot
        latest_expired = self._expired.get(query_id.host)
        if latest_expired is not None and query_id.timestamp <= latest_expired:
            raise IsolationError(
                f"queryID ({query_id.host}, {query_id.timestamp}) expired")
        state = _QueryState(
            query_id=query_id,
            snapshot=self._store.snapshot(),
            created_at=self._clock.now(),
        )
        self._active[key] = state
        return state.snapshot

    def _purge_expired(self) -> None:
        now = self._clock.now()
        for key, state in list(self._active.items()):
            if state.state == "active" and \
                    now - state.created_at > state.query_id.timeout:
                del self._active[key]
                host = state.query_id.host
                self._expired[host] = max(
                    self._expired.get(host, float("-inf")),
                    state.query_id.timestamp)

    def active_count(self) -> int:
        self._purge_expired()
        return len(self._active)

    # -- deferred updates ------------------------------------------------------

    def defer_updates(self, query_id: QueryID, pul: PendingUpdateList) -> None:
        """Rule R'_Fu: accumulate Δ^px_q(i) into the per-query union."""
        state = self._state(query_id)
        state.pul.merge(pul)
        state.updating_calls += 1

    def deferred_update_count(self, query_id: QueryID) -> int:
        return self._state(query_id).updating_calls

    def _state(self, query_id: QueryID) -> _QueryState:
        key = query_id.key
        if key not in self._active:
            raise IsolationError(
                f"no active isolation state for queryID {key}")
        return self._active[key]

    # -- 2PC participant operations ---------------------------------------------

    def prepare(self, query_id: QueryID) -> None:
        """Enter prepared state: detect conflicts and log the PUL.

        Raises
        ------
        TransactionError
            On a write-write conflict with a transaction that committed
            since this query's snapshot was taken.
        """
        state = self._state(query_id)
        if state.state == "prepared":
            return  # idempotent
        touched = _uris_updated(state.pul, state.snapshot)
        conflicts = state.snapshot.has_conflicts(touched)
        if conflicts:
            state.state = "aborted"
            self._decisions[query_id.key] = "aborted"
            del self._active[query_id.key]
            raise TransactionError(
                f"prepare failed: conflicting commits on {conflicts}")
        self.log.log("prepare", query_id.key)
        state.state = "prepared"

    def commit(self, query_id: QueryID) -> None:
        """applyUpdates(Δ^px_q) and install the new database state."""
        key = query_id.key
        if key not in self._active:
            decision = self._decisions.get(key)
            if decision == "committed":
                return  # decision replay: already applied, re-acknowledge
            if decision == "aborted":
                raise TransactionError(
                    f"queryID {key} was already rolled back")
            raise IsolationError(
                f"no active isolation state for queryID {key}")
        state = self._active[key]
        if state.state not in ("active", "prepared"):
            raise TransactionError(
                f"cannot commit from state {state.state!r}")
        touched = _uris_updated(state.pul, state.snapshot)
        apply_updates(state.pul)
        state.snapshot.commit_into_store(touched)
        state.state = "committed"
        self.log.log("commit", key)
        self._decisions[key] = "committed"
        del self._active[key]

    def rollback(self, query_id: QueryID) -> None:
        key = query_id.key
        if key in self._active:
            self._active[key].state = "aborted"
            self.log.log("rollback", key)
            self._decisions[key] = "aborted"
            del self._active[key]
        elif self._decisions.get(key) == "committed":
            raise TransactionError(
                f"queryID {key} was already committed")
        elif key not in self._decisions:
            # Abort of a never-seen (or expired) queryID: record the
            # decision so a later replayed commit is refused.
            self._decisions[key] = "aborted"

    def finish_read_only(self, query_id: QueryID) -> None:
        """Release the snapshot of a completed read-only query."""
        self._active.pop(query_id.key, None)


def _uris_updated(pul: PendingUpdateList, snapshot: Snapshot) -> list[str]:
    """Document URIs whose trees the PUL's primitives will mutate."""
    uris: list[str] = []
    for primitive in pul.primitives:
        root = primitive.target.root()
        if isinstance(root, DocumentNode) and root.uri and root.uri not in uris:
            uris.append(root.uri)
    return uris
