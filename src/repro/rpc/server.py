"""The XRPC request handler (server side of a peer).

Handles incoming SOAP messages:

* ``xrpc:request`` — executes the named module function once per
  ``xrpc:call`` (Bulk RPC) against the right database view (current
  state, or the queryID's snapshot), collecting pending updates per the
  active isolation rule (R_Fu applies immediately; R'_Fu defers);
* ``xrpc:prepare`` / ``xrpc:commit`` / ``xrpc:rollback`` — the 2PC
  participant operations;
* anything malformed — a SOAP Fault, which the paper mandates must stop
  execution at the originating site.

Nested XRPC calls made while serving a request run through the peer's
own client session, and every peer they touch is piggybacked on the
response (``xrpc:participants``) for coordinator registration.
"""

from __future__ import annotations

import threading
from typing import TYPE_CHECKING

from repro.errors import XQueryError, XRPCFault, XRPCReproError
from repro.soap.messages import (
    TxnCommand,
    TxnResult,
    XRPCRequest,
    XRPCResponse,
    build_fault,
    build_response,
    build_txn_result,
    parse_message,
)
from repro.xquf.pul import PendingUpdateList, apply_updates

if TYPE_CHECKING:  # pragma: no cover
    from repro.rpc.peer import XRPCPeer


class XRPCServer:
    """Request handler bound to one peer.

    ``handle`` may be invoked concurrently — the real HTTP daemon is
    threaded and ``send_parallel`` fans out per destination.  The
    bookkeeping counters are guarded by ``_stats_lock``; mutations of
    the peer's database state (isolation snapshots, applying pending
    updates, version bumps) are serialized under ``_state_lock``.
    Read-only function evaluation itself runs unlocked.
    """

    def __init__(self, peer: "XRPCPeer") -> None:
        self.peer = peer
        self.requests_handled = 0
        self.calls_handled = 0
        self._stats_lock = threading.Lock()
        self._state_lock = threading.Lock()

    # -- entry point -----------------------------------------------------------

    def handle(self, payload: str) -> str:
        """Process one incoming SOAP message; always returns a SOAP reply."""
        cost = self.peer.cost_model
        if cost is not None:
            self.peer.clock.advance(
                len(payload.encode("utf-8")) * cost.shred_seconds_per_byte
                + cost.request_overhead_seconds)
        try:
            message = parse_message(payload)
        except XRPCReproError as exc:
            return build_fault("env:Sender", str(exc))
        # Echo the attempt's correlation id on every reply — including
        # faults — so a retrying client can tell this answer from a
        # stale duplicated one.
        exchange_id = message.exchange_id
        try:
            if isinstance(message, XRPCRequest):
                response = self._handle_request(message)
            elif isinstance(message, TxnCommand):
                response = self._handle_txn_command(message)
            else:
                return build_fault("env:Sender",
                                   "peer expects requests or txn commands",
                                   exchange_id)
        except XRPCFault as fault:
            return build_fault(fault.fault_code, fault.reason, exchange_id)
        except XQueryError as exc:
            return build_fault("env:Sender", str(exc), exchange_id)
        except XRPCReproError as exc:
            return build_fault("env:Receiver", str(exc), exchange_id)
        if cost is not None:
            self.peer.clock.advance(
                len(response.encode("utf-8")) * cost.serialize_seconds_per_byte)
        return response

    # -- XRPC requests ------------------------------------------------------------

    def _handle_request(self, request: XRPCRequest) -> str:
        peer = self.peer
        with self._stats_lock:
            self.requests_handled += 1

        module = peer.registry.by_namespace(request.module)
        if module is None:
            raise XRPCFault("env:Sender", "could not load module!")
        decl = module.get_function(request.method, request.arity)
        if decl is None:
            raise XRPCFault(
                "env:Sender",
                f"module {request.module!r} has no function "
                f"{request.method}#{request.arity}")

        # Charge compile cost unless the function cache holds this plan.
        cache_key = (request.module, request.method, request.arity)
        cached = peer.engine.function_cache_lookup(cache_key)
        if peer.cost_model is not None and not cached:
            peer.clock.advance(peer.cost_model.compile_seconds)
        peer.engine.function_cache_store(cache_key)

        # Database view per the isolation rule in force.
        if request.query_id is not None:
            with self._state_lock:
                snapshot = peer.isolation.acquire(request.query_id)
            doc_view = snapshot
        else:
            doc_view = peer.store

        # The originator's remaining deadline budget (SOAP header)
        # rebuilt against this peer's local clock: doomed bulk work is
        # abandoned between calls instead of burning the whole budget.
        deadline = None
        if request.deadline_remaining is not None:
            from repro.net.retry import Deadline
            deadline = Deadline.after(request.deadline_remaining, peer.clock)

        # Nested calls run through a fresh client session that shares the
        # incoming queryID — so isolation propagates transitively — and
        # the (shrunken) deadline plus the peer's resilience channel.
        from repro.rpc.client import ClientSession
        nested_session = ClientSession(
            peer.transport, origin=peer.host, query_id=request.query_id,
            channel=peer.channel, deadline=deadline)

        results: list[list] = []
        collected_pul = PendingUpdateList()
        for params in request.calls:
            if deadline is not None and deadline.expired():
                from repro.net.retry import NET_STATS
                NET_STATS.bump("deadline_expired")
                raise XRPCFault(
                    "env:Receiver",
                    f"deadline expired at {peer.host} with "
                    f"{len(request.calls) - len(results)} of "
                    f"{len(request.calls)} bulk calls left")
            with self._stats_lock:
                self.calls_handled += 1
            if peer.cost_model is not None:
                peer.clock.advance(peer.cost_model.per_call_seconds)
            value, pul = peer.run_function(
                decl, params, doc_view, nested_session)
            if request.updating or decl.updating:
                collected_pul.merge(pul)
                results.append([])
            else:
                results.append(value)

        if (request.updating or decl.updating) and collected_pul:
            with self._state_lock:
                if request.query_id is not None:
                    # Rule R'_Fu: defer to 2PC commit.
                    peer.isolation.defer_updates(request.query_id,
                                                 collected_pul)
                else:
                    # Rule R_Fu: apply immediately, new current database
                    # state.
                    apply_updates(collected_pul)
                    for uri in _touched_uris(collected_pul):
                        if peer.store.contains(uri):
                            peer.store.bump_version(uri)

        response = XRPCResponse(
            module=request.module, method=request.method, results=results,
            exchange_id=request.exchange_id)
        response.participating_peers = [peer.host] + nested_session.participants
        return build_response(response)

    # -- 2PC participant ------------------------------------------------------------

    def _handle_txn_command(self, command: TxnCommand) -> str:
        peer = self.peer
        try:
            with self._state_lock:
                if command.kind == "prepare":
                    peer.isolation.prepare(command.query_id)
                elif command.kind == "commit":
                    peer.isolation.commit(command.query_id)
                else:
                    peer.isolation.rollback(command.query_id)
            return build_txn_result(TxnResult(
                kind=command.kind, ok=True,
                exchange_id=command.exchange_id))
        except XRPCReproError as exc:
            return build_txn_result(TxnResult(
                kind=command.kind, ok=False, detail=str(exc),
                exchange_id=command.exchange_id))


def _touched_uris(pul: PendingUpdateList) -> list[str]:
    from repro.xdm.nodes import DocumentNode
    uris: list[str] = []
    for primitive in pul.primitives:
        root = primitive.target.root()
        if isinstance(root, DocumentNode) and root.uri and root.uri not in uris:
            uris.append(root.uri)
    return uris
