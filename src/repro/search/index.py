"""The inverted term index over the value plane, and its query kernels.

One :class:`TermIndex` per tree, cached on the tree's
:class:`~repro.xdm.structural.StructuralIndex` (``term_index`` slot) so
it lives and dies with the structural columns: a full re-encode or an
abandoned patch stales the structural index and the postings go with
it; the O(change) PUL path instead calls the ``on_*`` hooks below from
the structural patch methods and the postings survive *un-rebuilt*.

Postings are keyed by the **gapped order-key serial** (``node.pre``,
``order_key[1]``) — the one coordinate of the plane that is stable
across O(change) splices: inserts mint fresh serials inside gaps and
deletes free them, so existing postings never shift.  Each term maps to
a sorted ``array.array("q")`` of serials; the subtree-window invariant
(every descendant's serial ``s`` of node ``x`` satisfies
``x.pre < s <= x.pre + x.size``) turns "does this subtree contain term
t" into two bisects.

Two query kernels:

* :meth:`TermIndex.contains_plan` — the sound substring *prefilter*
  behind lifted ``[contains(., "lit")]`` predicates.  The needle
  decomposes into token constraints (:mod:`repro.search.tokenizer`);
  a candidate window survives only if every constraint is satisfied by
  a posting in the window or by a *seam* — adjacent text nodes whose
  contents concatenate directly in ``string_value`` (nothing but
  non-text nodes between them), where a token can span the boundary:
  ``<d>worl<b/>dwide</d>`` contains ``"worldwide"`` though neither
  text does.  Survivors are re-verified with the exact case-sensitive
  substring test, so results are byte-identical to the interpreter's
  ``fn:contains``.
* :meth:`TermIndex.keyword_search` — EMBANKS-style SLCA: the smallest
  elements whose subtree (text *and* attribute values) contains every
  query term, doc-ordered, scored by term frequency.
"""

from __future__ import annotations

from array import array
from bisect import bisect_left, bisect_right, insort
from dataclasses import dataclass
from typing import Optional

from repro.search.stats import SEARCH_STATS
from repro.search.tokenizer import (
    MODE_EXACT,
    MODE_PREFIX,
    MODE_SUFFIX,
    distinct_tokens,
    is_word_char,
    needle_token_spec,
    token_matches,
    tokenize,
)
from repro.xdm.nodes import (
    AttributeNode,
    DocumentNode,
    ElementNode,
    Node,
    TextNode,
)
from repro.xdm.structural import StructuralIndex, structural_index

__all__ = [
    "SearchHit",
    "TermIndex",
    "keyword_search",
    "term_index_for",
]


def _lead_run(content: str) -> str:
    """Leading word-char run of *content*, lowercased ('' if none)."""
    lowered = content.lower()
    end = 0
    for ch in lowered:
        if not is_word_char(ch):
            break
        end += 1
    return lowered[:end]


def _trail_run(content: str) -> str:
    """Trailing word-char run of *content*, lowercased ('' if none)."""
    lowered = content.lower()
    start = len(lowered)
    for ch in reversed(lowered):
        if not is_word_char(ch):
            break
        start -= 1
    return lowered[start:]


def _seam_pair_matches(token: str, mode: str, left: str, right: str) -> bool:
    """Can needle-token *token* (under *mode*) cross the boundary of an
    adjacent text pair whose trailing/leading word runs are
    *left*/*right*?

    Sound over-approximation: consider the *first* text boundary the
    token's occurrence crosses — the part before it is then a suffix of
    *left* (the full run when the needle bounds the token's start), and
    the part after it must be compatible with *right* as a prefix (the
    occurrence may continue into further texts, or stop inside
    *right* when the token's end is unbounded in the needle).
    """
    bounded_left = mode in (MODE_EXACT, MODE_PREFIX)
    bounded_right = mode in (MODE_EXACT, MODE_SUFFIX)
    for split in range(1, len(token)):
        head, tail = token[:split], token[split:]
        if bounded_left:
            if head != left:
                continue
        elif not left.endswith(head):
            continue
        if bounded_right:
            if not tail.startswith(right):
                continue
        elif not (tail.startswith(right) or right.startswith(tail)):
            continue
        return True
    return False


def _serial_in(serials, lo: int, hi: int) -> bool:
    """Does the sorted serial array contain a serial in ``[lo, hi]``?"""
    index = bisect_left(serials, lo)
    return index < len(serials) and serials[index] <= hi


def _count_in(serials, lo: int, hi: int) -> int:
    """Number of serials in ``[lo, hi]`` of a sorted serial array."""
    return bisect_right(serials, hi) - bisect_left(serials, lo)


class ContainsPlan:
    """Per-(tree, needle) prefilter: posting/seam windows a candidate
    must satisfy before the exact substring verify runs."""

    __slots__ = ("needle", "trivial", "tokenless", "degenerate",
                 "_index", "_text_arrays", "_attr_arrays", "_seam_arrays")

    def __init__(self, index: "TermIndex", needle: str) -> None:
        self.needle = needle
        self._index = index
        self.degenerate = index.degenerate
        self.trivial = needle == ""
        spec = () if self.trivial else needle_token_spec(needle)
        self.tokenless = not self.trivial and not spec
        # Per needle token: the union of postings of every vocabulary
        # term satisfying the constraint (sorted serials), for text
        # nodes and attributes separately, plus the matching seam pairs
        # as parallel (first-text, second-text) serial bounds.
        self._text_arrays: list = []
        self._attr_arrays: list = []
        self._seam_arrays: list = []
        if self.trivial or self.tokenless or self.degenerate:
            return
        for token, mode in spec:
            self._text_arrays.append(
                _matching_union(index._text_postings, token, mode))
            self._attr_arrays.append(
                _matching_union(index._attr_postings, token, mode))
            lows: list[int] = []
            highs: list[int] = []
            for lo, (hi, left, right) in sorted(index._seam_pairs.items()):
                if _seam_pair_matches(token, mode, left, right):
                    lows.append(lo)
                    highs.append(hi)
            self._seam_arrays.append((array("q", lows), array("q", highs)))

    def candidate(self, node: Node) -> bool:
        """May *node*'s string value contain the needle?  ``True`` is
        "verify it"; ``False`` is a proof of absence."""
        if self.trivial or self.degenerate:
            return True
        if isinstance(node, AttributeNode):
            if self.tokenless:
                return True  # a single value: verifying is the cheap path
            serial = node.pre
            return all(_serial_in(serials, serial, serial)
                       for serials in self._attr_arrays)
        if not isinstance(node, (ElementNode, DocumentNode, TextNode)):
            # Comment/PI string values are their (unindexed) content.
            return True
        lo = node.pre
        hi = lo + node.size
        if self.tokenless:
            # No word character to look up: any text in the window may
            # hold the needle.
            return _serial_in(self._index.text_serials, lo, hi)
        for serials, (seam_lows, seam_highs) in zip(self._text_arrays,
                                                    self._seam_arrays):
            if _serial_in(serials, lo, hi):
                continue
            index = bisect_left(seam_lows, lo)
            while index < len(seam_lows) and seam_lows[index] <= hi:
                if seam_highs[index] <= hi:
                    break
                index += 1
            else:
                return False
        return True


def _matching_union(postings: dict, token: str, mode: str):
    """Union of posting arrays of all vocabulary terms matching one
    needle-token constraint (an exact constraint is a dict hit)."""
    if mode == MODE_EXACT:
        return postings.get(token) or array("q")
    arrays = [serials for term, serials in postings.items()
              if token_matches(term, token, mode)]
    if not arrays:
        return array("q")
    if len(arrays) == 1:
        return arrays[0]
    merged = array("q")
    for serials in arrays:
        merged.extend(serials)
    return array("q", sorted(merged))


@dataclass
class SearchHit:
    """One keyword-search result: the smallest containing element and
    its term-frequency score (posting count over the element's
    window); ``uri`` is filled by the session/peer layers."""

    node: Node
    score: int
    uri: Optional[str] = None


class TermIndex:
    """Inverted term → sorted-serial-postings index of one tree.

    Built lazily by :func:`term_index_for`; maintained incrementally by
    the ``on_*`` hooks the structural patch methods call.
    """

    __slots__ = ("sidx", "degenerate", "_text_postings", "_attr_postings",
                 "text_serials", "_terms_at", "_attr_terms_at", "_attrs_of",
                 "_seam_pairs", "_plan_cache", "_node_cache", "_text_cache")

    def __init__(self, sidx: StructuralIndex) -> None:
        self.sidx = sidx
        #: term → sorted serials of text nodes containing it.
        self._text_postings: dict[str, array] = {}
        #: term → sorted serials of attributes containing it.
        self._attr_postings: dict[str, array] = {}
        #: all text-node serials, sorted (the tokenless-needle filter).
        self.text_serials: array = array("q")
        #: reverse maps: serial → the distinct terms posted there (the
        #: mutation hooks run *after* the value changed, so the old
        #: terms must be remembered to be un-posted).
        self._terms_at: dict[int, tuple[str, ...]] = {}
        self._attr_terms_at: dict[int, tuple[str, ...]] = {}
        #: owner-element serial → serials of its attributes (the
        #: attribute-table hook diffs against this to find removals).
        self._attrs_of: dict[int, set[int]] = {}
        #: first-text serial → (second-text serial, trailing run,
        #: leading run) for every adjacent text pair that joins
        #: word-char to word-char (a token can span the boundary).
        self._seam_pairs: dict[int, tuple[int, str, str]] = {}
        #: needle → ContainsPlan (prepared-query discipline: the
        #: vocabulary/seam scan of plan construction is paid once per
        #: needle, dropped whenever a mutation hook runs).
        self._plan_cache: dict[str, ContainsPlan] = {}
        #: Lazy serial -> ranked-row cache fronting :meth:`_node_at`'s
        #: binary search; dropped with the plan cache on every mutation.
        self._node_cache: dict[int, Node] = {}
        #: Text contents aligned with :attr:`text_serials`, built on
        #: first scan and dropped on every mutation.
        self._text_cache: Optional[list[str]] = None
        #: Hand-assembled trees may carry non-monotone serials the
        #: window arithmetic cannot index; the plans then pass every
        #: candidate through to the exact verify (still correct).
        self.degenerate = False
        self._build()

    # -- construction ------------------------------------------------------

    def _build(self) -> None:
        built = 0
        previous = None
        text_serials: list[int] = []
        for node in self.sidx.nodes:
            serial = node.pre
            if previous is not None and serial <= previous:
                self.degenerate = True
                break
            previous = serial
            if isinstance(node, TextNode):
                terms = distinct_tokens(node.content)
                text_serials.append(serial)
                self._terms_at[serial] = terms
                for term in terms:
                    self._post(self._text_postings, term, serial)
                built += len(terms)
            attributes = node.attributes
            if attributes:
                owned: set[int] = set()
                for attribute in attributes:
                    terms = distinct_tokens(attribute.value)
                    owned.add(attribute.pre)
                    self._attr_terms_at[attribute.pre] = terms
                    for term in terms:
                        self._post(self._attr_postings, term, attribute.pre)
                    built += len(terms)
                self._attrs_of[serial] = owned
        if not self.degenerate:
            self.text_serials = array("q", text_serials)
            for position in range(len(text_serials) - 1):
                self._pair(text_serials[position], text_serials[position + 1])
        SEARCH_STATS.bump("term_index_builds")
        if built:
            SEARCH_STATS.bump("postings_built", built)

    # -- posting primitives ------------------------------------------------

    @staticmethod
    def _post(postings: dict, term: str, serial: int) -> None:
        serials = postings.get(term)
        if serials is None:
            postings[term] = array("q", (serial,))
        else:
            insort(serials, serial)

    @staticmethod
    def _unpost(postings: dict, term: str, serial: int) -> None:
        serials = postings.get(term)
        if serials is None:
            return
        index = bisect_left(serials, serial)
        if index < len(serials) and serials[index] == serial:
            serials.pop(index)
            if not serials:
                del postings[term]

    def _node_at(self, serial: int) -> Optional[Node]:
        """The ranked row stamped with *serial* (exact match)."""
        node = self._node_cache.get(serial)
        if node is not None:
            return node
        nodes = self.sidx.nodes
        low, high = 0, len(nodes)
        while low < high:
            mid = (low + high) // 2
            if nodes[mid].pre < serial:
                low = mid + 1
            else:
                high = mid
        if low < len(nodes) and nodes[low].pre == serial:
            self._node_cache[serial] = nodes[low]
            return nodes[low]
        return None

    def _covering_node(self, serial: int) -> Optional[Node]:
        """The ranked row owning *serial* (itself, or — for attribute
        serials, which are not ranked — the owner element)."""
        nodes = self.sidx.nodes
        low, high = 0, len(nodes)
        while low < high:
            mid = (low + high) // 2
            if nodes[mid].pre <= serial:
                low = mid + 1
            else:
                high = mid
        return nodes[low - 1] if low else None

    # -- seam maintenance --------------------------------------------------

    def _pair(self, first: int, second: int) -> None:
        """Record the (first, second) adjacent text pair if it joins."""
        left_node = self._node_at(first)
        right_node = self._node_at(second)
        if left_node is None or right_node is None:
            return
        left = _trail_run(left_node.content)
        right = _lead_run(right_node.content)
        if left and right:
            self._seam_pairs[first] = (second, left, right)

    def _repair_seams(self, lo: int, hi: int) -> None:
        """Recompute the seam pairs around the affected serial span
        ``[lo, hi]`` (texts inserted, removed, or rewritten there).
        Pairs are strictly local — one adjacent text pair each — so the
        repair only touches the span plus one neighbour on each side."""
        serials = self.text_serials
        left = bisect_left(serials, lo) - 1
        right = bisect_right(serials, hi)
        low_serial = serials[left] if left >= 0 else lo
        for serial in [s for s in self._seam_pairs
                       if low_serial <= s <= hi]:
            del self._seam_pairs[serial]
        last = len(serials) - 1
        for position in range(max(left, 0), min(right, last)):
            self._pair(serials[position], serials[position + 1])

    # -- incremental maintenance (called by the structural patch hooks) ----

    def on_insert(self, new_nodes: list) -> None:
        """Rows of freshly spliced subtrees (all of them, in document
        order) — post their text/attribute terms and repair seams."""
        if self.degenerate:
            return
        self._plan_cache.clear()
        self._node_cache.clear()
        self._text_cache = None
        patched = 0
        text_lo: Optional[int] = None
        text_hi: Optional[int] = None
        for node in new_nodes:
            serial = node.pre
            if isinstance(node, TextNode):
                terms = distinct_tokens(node.content)
                insort(self.text_serials, serial)
                self._terms_at[serial] = terms
                for term in terms:
                    self._post(self._text_postings, term, serial)
                patched += len(terms)
                if text_lo is None:
                    text_lo = serial
                text_hi = serial
            attributes = node.attributes
            if attributes:
                owned = self._attrs_of.setdefault(serial, set())
                for attribute in attributes:
                    terms = distinct_tokens(attribute.value)
                    owned.add(attribute.pre)
                    self._attr_terms_at[attribute.pre] = terms
                    for term in terms:
                        self._post(self._attr_postings, term, attribute.pre)
                    patched += len(terms)
        if text_lo is not None and text_hi is not None:
            self._repair_seams(text_lo, text_hi)
        if patched:
            SEARCH_STATS.bump("postings_patched", patched)

    def on_delete(self, removed_nodes: list) -> None:
        """Rows just evicted from the structural columns — un-post
        every term they held so a stale posting can never resolve."""
        if self.degenerate:
            return
        self._plan_cache.clear()
        self._node_cache.clear()
        self._text_cache = None
        patched = 0
        text_lo: Optional[int] = None
        text_hi: Optional[int] = None
        for node in removed_nodes:
            serial = node.pre
            terms = self._terms_at.pop(serial, None)
            if terms is not None:
                for term in terms:
                    self._unpost(self._text_postings, term, serial)
                patched += len(terms)
                index = bisect_left(self.text_serials, serial)
                if index < len(self.text_serials) \
                        and self.text_serials[index] == serial:
                    self.text_serials.pop(index)
                if text_lo is None:
                    text_lo = serial
                text_hi = serial
            owned = self._attrs_of.pop(serial, None)
            if owned:
                for attr_serial in owned:
                    attr_terms = self._attr_terms_at.pop(attr_serial, ())
                    for term in attr_terms:
                        self._unpost(self._attr_postings, term, attr_serial)
                    patched += len(attr_terms)
        if text_lo is not None and text_hi is not None:
            self._repair_seams(text_lo, text_hi)
        if patched:
            SEARCH_STATS.bump("postings_patched", patched)

    def on_content(self, node: Node) -> None:
        """A value-only mutation, already applied: re-post the node."""
        if self.degenerate:
            return
        self._plan_cache.clear()
        self._node_cache.clear()
        self._text_cache = None
        serial = node.pre
        if isinstance(node, TextNode):
            old = self._terms_at.get(serial, ())
            for term in old:
                self._unpost(self._text_postings, term, serial)
            new = distinct_tokens(node.content)
            self._terms_at[serial] = new
            for term in new:
                self._post(self._text_postings, term, serial)
            index = bisect_left(self.text_serials, serial)
            if index >= len(self.text_serials) \
                    or self.text_serials[index] != serial:
                self.text_serials.insert(index, serial)
            self._repair_seams(serial, serial)
            SEARCH_STATS.bump("postings_patched", len(old) + len(new))
        elif isinstance(node, AttributeNode):
            old = self._attr_terms_at.get(serial, ())
            for term in old:
                self._unpost(self._attr_postings, term, serial)
            new = distinct_tokens(node.value)
            self._attr_terms_at[serial] = new
            for term in new:
                self._post(self._attr_postings, term, serial)
            SEARCH_STATS.bump("postings_patched", len(old) + len(new))

    def on_attributes(self, owner: Node) -> None:
        """The attribute table of *owner* changed (insert / replace /
        delete) — diff against the recorded serials and re-post."""
        if self.degenerate:
            return
        self._plan_cache.clear()
        self._node_cache.clear()
        self._text_cache = None
        known = self._attrs_of.get(owner.pre, set())
        current = {attribute.pre: attribute
                   for attribute in owner.attributes}
        patched = 0
        for serial in known - current.keys():
            for term in self._attr_terms_at.pop(serial, ()):
                self._unpost(self._attr_postings, term, serial)
                patched += 1
        for serial, attribute in current.items():
            if serial in known:
                continue
            terms = distinct_tokens(attribute.value)
            self._attr_terms_at[serial] = terms
            for term in terms:
                self._post(self._attr_postings, term, serial)
            patched += len(terms)
        if current:
            self._attrs_of[owner.pre] = set(current)
        else:
            self._attrs_of.pop(owner.pre, None)
        if patched:
            SEARCH_STATS.bump("postings_patched", patched)

    # -- query kernels -----------------------------------------------------

    def contains_plan(self, needle: str) -> ContainsPlan:
        """The (cached) prefilter plan for one ``contains`` needle."""
        plan = self._plan_cache.get(needle)
        if plan is None:
            if len(self._plan_cache) >= 64:
                self._plan_cache.clear()
            plan = ContainsPlan(self, needle)
            self._plan_cache[needle] = plan
        return plan

    def contains_scan(self, needle: str) -> list[Node]:
        """All elements whose string value contains *needle* — the
        ``fn:contains`` semantics over the whole tree — answered from
        the postings instead of walking it.

        Anchor on the needle's cheapest token constraint (fewest
        postings + seams).  Consecutive texts concatenate contiguously
        in *every* containing element's string value, so each needle
        occurrence is found by an exact local substring search over the
        anchor text plus ``len(needle)`` characters of its neighbours —
        no string value is ever computed.  An occurrence inside the
        anchor text alone proves the anchor's parent element (every
        further occurrence overlapping the anchor only marks that
        parent's ancestors, which match for free).  An occurrence
        spanning texts ``[t_a .. t_b]`` appears in exactly the elements
        whose window contains both serials; the smallest is located by
        an ancestor walk.  Elements outside every anchor's
        neighbourhood are never touched — the asymmetry the keyword
        benchmark measures.
        """
        SEARCH_STATS.bump("search_queries")
        plan = self.contains_plan(needle)
        if plan.trivial or plan.degenerate:
            from repro.search.naive import naive_contains_scan
            return naive_contains_scan(self.sidx.root, needle)
        serials = self.text_serials
        if plan.tokenless:
            anchors = serials
        else:
            best = None
            for token_serials, (seam_lows, _) in zip(plan._text_arrays,
                                                     plan._seam_arrays):
                size = len(token_serials) + len(seam_lows)
                if best is None or size < best[0]:
                    best = (size, token_serials, seam_lows)
            assert best is not None
            anchors = sorted(set(best[1]) | set(best[2]))
        matched: set[int] = set()   # ancestor-closed by construction
        results: list[Node] = []

        def mark(element: Optional[Node]) -> None:
            while isinstance(element, ElementNode) \
                    and element.pre not in matched:
                matched.add(element.pre)
                results.append(element)
                element = element.parent

        margin = len(needle) - 1
        texts = self._text_cache
        if texts is None:
            texts = []
            for serial in serials:
                node = self._node_at(serial)
                texts.append(node.content if node is not None else "")
            self._text_cache = texts
        count = len(serials)

        for serial in anchors:
            anchor = bisect_left(serials, serial)
            if anchor >= count or serials[anchor] != serial:
                continue
            if needle in texts[anchor]:
                # Intra-text occurrence: the anchor's parent element
                # matches outright, and any *crossing* occurrence that
                # overlaps this anchor could only mark that parent's
                # ancestors — already covered by mark().
                parent = self._node_at(serial)
                parent = parent.parent if parent is not None else None
                while parent is not None \
                        and not isinstance(parent, ElementNode):
                    parent = parent.parent
                mark(parent)
                continue
            # The local window: the anchor text plus enough neighbour
            # characters to hold any occurrence overlapping the anchor.
            first = anchor
            gathered = 0
            while first > 0 and gathered < margin:
                first -= 1
                gathered += len(texts[first])
            last = anchor
            gathered = 0
            while last + 1 < count and gathered < margin:
                last += 1
                gathered += len(texts[last])
            pieces = texts[first:last + 1]
            window = "".join(pieces)
            # Char offset of each text, for mapping occurrences to spans.
            offsets: list[int] = []
            total = 0
            for piece in pieces:
                offsets.append(total)
                total += len(piece)
            anchor_start = offsets[anchor - first]
            anchor_end = anchor_start + len(texts[anchor])
            found = window.find(needle)
            while found != -1:
                if found < anchor_end and found + len(needle) > anchor_start:
                    # Overlaps the anchor text (others are found from
                    # their own anchors).  Map to the spanned texts.
                    span_a = bisect_right(offsets, found) - 1
                    span_b = bisect_right(offsets,
                                          found + len(needle) - 1) - 1
                    low = serials[first + span_a]
                    high = serials[first + span_b]
                    node = self._node_at(low)
                    element = node.parent if node is not None else None
                    while element is not None:
                        if isinstance(element, ElementNode) \
                                and element.pre < low \
                                and high <= element.pre + element.size:
                            mark(element)
                            break
                        element = element.parent
                found = window.find(needle, found + 1)
        results.sort(key=lambda element: element.pre)
        if results:
            SEARCH_STATS.bump("postings_hits", len(results))
        return results

    def keyword_search(self, terms) -> list[SearchHit]:
        """EMBANKS-style SLCA keyword search over this tree.

        Returns the *smallest containing elements* — elements whose
        window holds at least one posting of **every** term and none of
        whose descendant elements does — in document order, scored by
        term frequency (total postings of the query terms inside the
        hit's window, text and attribute postings alike).
        """
        SEARCH_STATS.bump("search_queries")
        tokens: list[str] = []
        for term in terms:
            tokens.extend(tokenize(term))
        tokens = list(dict.fromkeys(tokens))
        if not tokens:
            return []
        if self.degenerate:
            from repro.search.naive import naive_search
            return naive_search(self.sidx.root, tokens)
        posting_lists = []
        for token in tokens:
            text = self._text_postings.get(token)
            attrs = self._attr_postings.get(token)
            if not text and not attrs:
                return []
            merged: list[int] = []
            if text:
                merged.extend(text)
            if attrs:
                merged = sorted(merged + list(attrs)) if merged \
                    else list(attrs)
            posting_lists.append(array("q", merged))
        rarest = min(posting_lists, key=len)
        seen: set[int] = set()
        candidates: list[Node] = []
        for serial in rarest:
            node = self._covering_node(serial)
            while node is not None and not isinstance(node, ElementNode):
                node = node.parent
            while node is not None and isinstance(node, ElementNode):
                lo = node.pre
                hi = lo + node.size
                if all(_serial_in(serials, lo, hi)
                       for serials in posting_lists):
                    if lo not in seen:
                        seen.add(lo)
                        candidates.append(node)
                    break
                node = node.parent
        candidates.sort(key=lambda element: element.pre)
        hits: list[SearchHit] = []
        for position, element in enumerate(candidates):
            lo = element.pre
            hi = lo + element.size
            if position + 1 < len(candidates) \
                    and candidates[position + 1].pre <= hi:
                continue  # contains a smaller containing element
            score = sum(_count_in(serials, lo, hi)
                        for serials in posting_lists)
            hits.append(SearchHit(node=element, score=score))
        if hits:
            SEARCH_STATS.bump("postings_hits", len(hits))
        return hits


def term_index_for(root: Node) -> TermIndex:
    """The (cached) term index of the tree rooted at *root* — built
    lazily on the tree's structural index, patched incrementally by the
    same hooks, and dropped with it on full re-encodes."""
    sidx = structural_index(root)
    term_index = sidx.term_index
    if term_index is None:
        term_index = TermIndex(sidx)
        sidx.term_index = term_index
    return term_index


def keyword_search(root: Node, terms) -> list[SearchHit]:
    """Keyword-search the tree rooted at *root* (see
    :meth:`TermIndex.keyword_search`)."""
    return term_index_for(root.root()).keyword_search(terms)
