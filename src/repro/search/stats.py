"""Keyword-search telemetry counters.

Same contract as :class:`~repro.xdm.structural.EncodingStats` (the
class is reused wholesale): process-wide totals for
``Database.stats()`` plus per-thread totals so ``Engine.execute`` can
attribute per-execution deltas under concurrency.

``term_index_builds`` — full :class:`~repro.search.index.TermIndex`
(re)builds (the satellite assertion "postings survive interleaved PULs
un-rebuilt" checks this stays flat across updates);
``postings_built`` — (term, serial) postings materialized by full
builds; ``postings_patched`` — postings added or removed by the
incremental PUL hooks; ``search_queries`` — posting-list query plans
served (lifted ``contains`` filters + ``Database.search`` calls);
``postings_hits`` — results those plans surfaced.
"""

from __future__ import annotations

from repro.xdm.structural import EncodingStats


class SearchStats(EncodingStats):
    """Counter fields of the keyword-search subsystem."""

    FIELDS = ("term_index_builds", "postings_built", "postings_patched",
              "search_queries", "postings_hits")


#: The process-wide counter instance (searches may run from any thread).
SEARCH_STATS = SearchStats()
