"""Tree-walking reference implementations — the differential oracles.

Nothing here touches postings, serials or windows: these walk the tree
the obvious way, so every index-backed kernel has an independent
implementation to be byte-compared against (the discipline every
accelerated layer of this repo follows).
"""

from __future__ import annotations

from repro.search.tokenizer import distinct_tokens
from repro.xdm.nodes import ElementNode, Node, TextNode


def naive_contains_scan(root: Node, needle: str) -> list[Node]:
    """Every element under *root* whose string value contains *needle*
    (exact, case-sensitive — the ``fn:contains`` semantics), in
    document order.  The full-document scan the benchmark measures the
    lifted posting plan against."""
    return [node for node in root.root().descendants(include_self=True)
            if isinstance(node, ElementNode)
            and needle in node.string_value()]


def naive_search(root: Node, terms) -> list:
    """SLCA keyword search by tree walk: the elements whose subtree
    (text and attribute values, distinct terms per node — the posting
    granularity) contains every term and none of whose descendant
    elements does; document order, term-frequency scored."""
    from repro.search.index import SearchHit
    from repro.search.tokenizer import tokenize

    tokens: list[str] = []
    for term in terms:
        tokens.extend(tokenize(term))
    tokens = list(dict.fromkeys(tokens))
    if not tokens:
        return []
    wanted = set(tokens)
    containing: list[tuple[Node, int]] = []
    for node in root.root().descendants(include_self=True):
        if not isinstance(node, ElementNode):
            continue
        present: set[str] = set()
        count = 0
        for member in node.descendants(include_self=True):
            values = []
            if isinstance(member, TextNode):
                values.append(member.content)
            for attribute in member.attributes:
                values.append(attribute.value)
            for value in values:
                matched = wanted.intersection(distinct_tokens(value))
                present |= matched
                count += len(matched)
        if present == wanted:
            containing.append((node, count))
    hits = []
    for node, count in containing:
        if any(other is not node and _is_descendant(other, node)
               for other, _ in containing):
            continue  # a smaller containing element exists below
        hits.append(SearchHit(node=node, score=count))
    return hits


def _is_descendant(node: Node, ancestor: Node) -> bool:
    parent = node.parent
    while parent is not None:
        if parent is ancestor:
            return True
        parent = parent.parent
    return False
