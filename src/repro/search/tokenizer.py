"""Tokenization and needle decomposition for the term index.

Terms are maximal ``\\w+`` runs, lowercased — the usual "word"
granularity of an inverted index.  The index is a *prefilter*: the
lifted ``contains`` plan uses lowercased token postings to prune
candidates and re-verifies survivors with the exact (case-sensitive)
substring test, so lowercasing here only ever over-approximates.

:func:`needle_token_spec` decomposes a ``contains`` needle into token
constraints.  If ``needle`` occurs as a substring of some text, then
every maximal word-char run of the needle appears inside one corpus
token, and the position of the run *within the needle* bounds how:

* an inner run (non-word chars on both sides in the needle) must equal
  its corpus token exactly — the needle supplies both boundaries;
* the leading run of a needle that starts with a word char only
  constrains its corpus token's *suffix* (the occurrence may extend
  further left: needle ``"ship now"`` matches token ``"flagship"``);
* symmetrically the trailing run constrains a *prefix*;
* a needle that is one unbroken word-char run can sit anywhere inside
  a corpus token (``"ship"`` matches ``"shipping"``): substring mode.

A corpus token here is either a token of a single text/attribute value
or a *seam token* spanning adjacent text nodes (see
:meth:`repro.search.index.TermIndex` — ``<d>worl<b/>dwide</d>`` has
string value ``"worldwide"``); both are checked under the same modes.
"""

from __future__ import annotations

import re
from typing import Iterator

TOKEN_RE = re.compile(r"\w+")

#: Needle-token match modes (see module docstring).
MODE_EXACT = "exact"
MODE_PREFIX = "prefix"
MODE_SUFFIX = "suffix"
MODE_SUBSTRING = "substring"


def tokenize(text: str) -> list[str]:
    """All tokens of *text*, lowercased, in order (with repeats)."""
    return TOKEN_RE.findall(text.lower())


def distinct_tokens(text: str) -> tuple[str, ...]:
    """Distinct tokens of *text* — the posting granularity (a term is
    posted once per node no matter how often it repeats)."""
    return tuple(dict.fromkeys(tokenize(text)))


def iter_tokens_with_spans(text: str) -> Iterator[tuple[str, int, int]]:
    """``(token, start, end)`` triples over the lowercased text."""
    for match in TOKEN_RE.finditer(text.lower()):
        yield match.group(), match.start(), match.end()


def needle_token_spec(needle: str) -> list[tuple[str, str]]:
    """Decompose a needle into ``(token, mode)`` constraints.

    Every constraint must be satisfied by some corpus token inside a
    candidate's window for the needle to possibly occur there (a
    *necessary* condition — the prefilter contract).  An empty list
    means the needle contains no word characters and token postings
    cannot constrain it (the caller falls back to "window has any text
    at all").
    """
    lowered = needle.lower()
    spec: list[tuple[str, str]] = []
    for match in TOKEN_RE.finditer(lowered):
        bounded_left = match.start() > 0
        bounded_right = match.end() < len(lowered)
        if bounded_left and bounded_right:
            mode = MODE_EXACT
        elif bounded_left:
            mode = MODE_PREFIX      # trailing run: corpus token starts with it
        elif bounded_right:
            mode = MODE_SUFFIX      # leading run: corpus token ends with it
        else:
            mode = MODE_SUBSTRING   # the needle is one unbroken run
        spec.append((match.group(), mode))
    return spec


def token_matches(corpus_token: str, needle_token: str, mode: str) -> bool:
    """Does *corpus_token* satisfy one needle-token constraint?"""
    if mode == MODE_EXACT:
        return corpus_token == needle_token
    if mode == MODE_PREFIX:
        return corpus_token.startswith(needle_token)
    if mode == MODE_SUFFIX:
        return corpus_token.endswith(needle_token)
    return needle_token in corpus_token


def is_word_char(ch: str) -> bool:
    """Is *ch* a ``\\w`` character (token-run member)?"""
    return bool(TOKEN_RE.match(ch))
