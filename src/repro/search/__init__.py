"""Keyword search over the value plane.

The EMBANKS observation (PAPERS.md): keyword search in a structured
database reduces to posting-list intersection plus finding the smallest
elements containing all terms — and the pre/size/level window scans of
the XPath accelerator already answer "which postings fall inside this
subtree" with two bisects.  This package adds:

* :class:`~repro.search.index.TermIndex` — a lazily built inverted
  term → posting-list index over a tree's text and attribute values,
  cached on the tree's :class:`~repro.xdm.structural.StructuralIndex`
  and maintained incrementally across PULs by the same patch hooks that
  keep the structural columns alive;
* a sound substring *prefilter* for ``[contains(., "lit")]``
  predicates (:meth:`TermIndex.contains_plan`) — the lifted plan checks
  candidate windows against the posting lists and only computes
  ``string_value`` for surviving candidates, with the interpreter's
  exact ``fn:contains`` as the final verifier (results stay
  byte-identical, case sensitivity included);
* EMBANKS-style SLCA keyword search (:func:`keyword_search` /
  :func:`~repro.search.naive.naive_search` as the differential
  oracle): the smallest elements whose subtree contains every query
  term, doc-ordered, with term-frequency scores;
* :data:`~repro.search.stats.SEARCH_STATS` telemetry surfaced through
  ``Explain`` and ``Database.stats()``.
"""

from repro.search.index import (
    SearchHit,
    TermIndex,
    keyword_search,
    term_index_for,
)
from repro.search.naive import naive_contains_scan, naive_search
from repro.search.stats import SEARCH_STATS
from repro.search.tokenizer import needle_token_spec, tokenize

__all__ = [
    "SEARCH_STATS",
    "SearchHit",
    "TermIndex",
    "keyword_search",
    "naive_contains_scan",
    "naive_search",
    "needle_token_spec",
    "term_index_for",
    "tokenize",
]
