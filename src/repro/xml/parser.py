"""A small well-formedness-checking XML 1.0 parser, plus the backend
dispatch of the parse frontend.

The pure-python parser here produces :mod:`repro.xdm` trees with
document order and namespace resolution (``xmlns`` / ``xmlns:prefix``
declarations are tracked and every element/attribute gets its resolved
namespace URI).  It is the *reference ablation* of the parse frontend:
:func:`parse_document` routes to the C-speed expat backend
(:mod:`repro.xml.expat_parser`) by default, falling back to this parser
for input outside the expat subset — and both backends produce
byte-identical trees (pre/size/level planes, gapped order keys).  Select
a backend per call (``backend="expat"|"python"``) or process-wide via
the ``REPRO_XML_BACKEND`` environment variable.

Supported: elements, attributes, text, CDATA, comments, processing
instructions, character/entity references, the XML declaration, and a
DOCTYPE declaration (skipped, internal subsets without markup decls).
Not supported (raises): external entities, parameter entities.

Per XML 1.0 §2.11 / §3.3.3 (and matching expat), line endings are
normalized (``\\r\\n`` / ``\\r`` → ``\\n``) and literal whitespace in
attribute values becomes spaces; character references (``&#9;`` etc.)
are exempt from both.
"""

from __future__ import annotations

import codecs
import os
import re
from typing import Optional, Union

from repro.errors import XRPCReproError
from repro.xdm.nodes import DocumentNode, ElementNode, Node, NodeFactory
from repro.xml.stats import PARSE_STATS


class XMLSyntaxError(XRPCReproError):
    """Raised on malformed XML input, with 1-based line/column info."""

    def __init__(self, message: str, line: int, column: int) -> None:
        self.line = line
        self.column = column
        super().__init__(f"{message} (line {line}, column {column})")


_PREDEFINED_ENTITIES = {
    "lt": "<",
    "gt": ">",
    "amp": "&",
    "apos": "'",
    "quot": '"',
}

_NAME_START_EXTRA = set("_:")
_NAME_EXTRA = set("_:-.")

XMLNS_URI = "http://www.w3.org/2000/xmlns/"


def _is_name_start(ch: str) -> bool:
    return ch.isalpha() or ch in _NAME_START_EXTRA


def _is_name_char(ch: str) -> bool:
    return ch.isalnum() or ch in _NAME_EXTRA


class _Scanner:
    """Cursor over the raw XML text with position tracking."""

    def __init__(self, text: str) -> None:
        self.text = text
        self.pos = 0
        self.length = len(text)

    def location(self) -> tuple[int, int]:
        consumed = self.text[: self.pos]
        line = consumed.count("\n") + 1
        column = self.pos - (consumed.rfind("\n") + 1) + 1
        return line, column

    def error(self, message: str) -> XMLSyntaxError:
        line, column = self.location()
        return XMLSyntaxError(message, line, column)

    def at_end(self) -> bool:
        return self.pos >= self.length

    def peek(self, offset: int = 0) -> str:
        index = self.pos + offset
        return self.text[index] if index < self.length else ""

    def startswith(self, token: str) -> bool:
        return self.text.startswith(token, self.pos)

    def advance(self, count: int = 1) -> None:
        self.pos += count

    def expect(self, token: str) -> None:
        if not self.startswith(token):
            raise self.error(f"expected {token!r}")
        self.pos += len(token)

    def skip_whitespace(self) -> None:
        while self.pos < self.length and self.text[self.pos] in " \t\r\n":
            self.pos += 1

    def read_until(self, token: str, error_message: str) -> str:
        index = self.text.find(token, self.pos)
        if index < 0:
            raise self.error(error_message)
        chunk = self.text[self.pos:index]
        self.pos = index + len(token)
        return chunk

    def read_name(self) -> str:
        start = self.pos
        if self.at_end() or not _is_name_start(self.peek()):
            raise self.error("expected XML name")
        self.advance()
        while not self.at_end() and _is_name_char(self.peek()):
            self.advance()
        return self.text[start:self.pos]


class _Parser:
    def __init__(self, text: str, uri: Optional[str],
                 stride: Optional[int] = None) -> None:
        if "\r" in text:
            # XML 1.0 §2.11 end-of-line handling (expat does the same).
            text = text.replace("\r\n", "\n").replace("\r", "\n")
        self.scanner = _Scanner(text)
        self.factory = NodeFactory(stride=stride)
        self.uri = uri

    # -- entry points ------------------------------------------------------

    def parse_document(self) -> DocumentNode:
        document = self.factory.document(self.uri)
        scanner = self.scanner
        self._skip_prolog(document)
        scanner.skip_whitespace()
        if scanner.at_end() or scanner.peek() != "<":
            raise scanner.error("expected root element")
        root = self._parse_element(
            namespaces={"xml": "http://www.w3.org/XML/1998/namespace"},
            level=1)
        document.append(root)
        # Trailing misc: comments / PIs / whitespace only.
        while not scanner.at_end():
            scanner.skip_whitespace()
            if scanner.at_end():
                break
            if scanner.startswith("<!--"):
                document.append(self._parse_comment(level=1))
            elif scanner.startswith("<?"):
                document.append(self._parse_pi(level=1))
            else:
                raise scanner.error("content after document element")
        # pre/size/level stamping completes within the parse pass itself:
        # the document's extent (in serial units — serials are gapped)
        # reaches to the last serial issued inside it.
        document.size = self.factory.last_serial - document.order_key[1]
        return document

    # -- prolog -------------------------------------------------------------

    def _skip_prolog(self, document: DocumentNode) -> None:
        scanner = self.scanner
        scanner.skip_whitespace()
        if scanner.startswith("<?xml"):
            scanner.read_until("?>", "unterminated XML declaration")
        while True:
            scanner.skip_whitespace()
            if scanner.startswith("<!--"):
                document.append(self._parse_comment(level=1))
            elif scanner.startswith("<!DOCTYPE"):
                self._skip_doctype()
            elif scanner.startswith("<?"):
                document.append(self._parse_pi(level=1))
            else:
                break

    def _skip_doctype(self) -> None:
        scanner = self.scanner
        scanner.expect("<!DOCTYPE")
        depth = 1
        while depth > 0:
            if scanner.at_end():
                raise scanner.error("unterminated DOCTYPE")
            ch = scanner.peek()
            if ch == "<":
                depth += 1
            elif ch == ">":
                depth -= 1
            scanner.advance()

    # -- element content ------------------------------------------------------

    def _parse_element(self, namespaces: dict[str, str],
                       level: int = 0) -> ElementNode:
        """Parse one element and its whole subtree, iteratively.

        An explicit stack of open elements replaces the old
        ``_parse_element``/``_parse_content`` mutual recursion, so
        arbitrarily deep documents (XRPC payloads routinely nest
        thousands of levels) parse under the default recursion limit.
        ``size`` is stamped from the factory serial counter when each
        element closes — the same single-pass stamping as before.
        """
        scanner = self.scanner
        root, root_scope, closed = self._parse_open_tag(namespaces, level)
        if closed:
            return root
        # (element, namespace scope, pending text pieces) per open element.
        stack: list[tuple[ElementNode, dict[str, str], list[str]]] = [
            (root, root_scope, [])]
        while stack:
            element, scope, text_buffer = stack[-1]
            content_level = element.level + 1

            def flush_text() -> None:
                if text_buffer:
                    element.append(self.factory.text(
                        "".join(text_buffer), level=content_level))
                    text_buffer.clear()

            if scanner.at_end():
                raise scanner.error(f"unterminated element <{element.name}>")
            if scanner.startswith("</"):
                flush_text()
                scanner.advance(2)
                closing = scanner.read_name()
                if closing != element.name:
                    raise scanner.error(
                        f"mismatched end tag: expected </{element.name}>, "
                        f"found </{closing}>")
                scanner.skip_whitespace()
                scanner.expect(">")
                # Subtree complete: extent reaches the last issued serial.
                element.size = self.factory.last_serial - element.order_key[1]
                stack.pop()
            elif scanner.startswith("<!--"):
                flush_text()
                element.append(self._parse_comment(level=content_level))
            elif scanner.startswith("<![CDATA["):
                scanner.advance(9)
                text_buffer.append(
                    scanner.read_until("]]>", "unterminated CDATA section"))
            elif scanner.startswith("<?"):
                flush_text()
                element.append(self._parse_pi(level=content_level))
            elif scanner.peek() == "<":
                flush_text()
                child, child_scope, child_closed = self._parse_open_tag(
                    scope, content_level)
                element.append(child)
                if not child_closed:
                    stack.append((child, child_scope, []))
            else:
                start = scanner.pos
                while not scanner.at_end() and scanner.peek() not in "<":
                    scanner.advance()
                raw = scanner.text[start:scanner.pos]
                text_buffer.append(self._expand_references(raw))
        return root

    def _parse_open_tag(self, namespaces: dict[str, str],
                        level: int) -> tuple[ElementNode, dict[str, str], bool]:
        """Parse a start (or empty-element) tag; returns the element, its
        namespace scope, and whether it was self-closing."""
        scanner = self.scanner
        scanner.expect("<")
        name = scanner.read_name()

        raw_attributes: list[tuple[str, str]] = []
        while True:
            scanner.skip_whitespace()
            if scanner.startswith("/>") or scanner.startswith(">"):
                break
            attr_name = scanner.read_name()
            scanner.skip_whitespace()
            scanner.expect("=")
            scanner.skip_whitespace()
            quote = scanner.peek()
            if quote not in ("'", '"'):
                raise scanner.error("attribute value must be quoted")
            scanner.advance()
            raw_value = scanner.read_until(quote, "unterminated attribute value")
            if "<" in raw_value:
                raise scanner.error("'<' in attribute value")
            # XML 1.0 §3.3.3 attribute-value normalization: literal
            # whitespace becomes a space *before* reference expansion
            # (&#10;/&#9; survive), matching expat.
            if "\n" in raw_value or "\t" in raw_value:
                raw_value = raw_value.replace("\n", " ").replace("\t", " ")
            value = self._expand_references(raw_value)
            if any(existing == attr_name for existing, _ in raw_attributes):
                raise scanner.error(f"duplicate attribute {attr_name!r}")
            raw_attributes.append((attr_name, value))

        # Resolve namespaces: xmlns declarations on this element first.
        scope = dict(namespaces)
        declarations: dict[str, str] = {}
        for attr_name, value in raw_attributes:
            if attr_name == "xmlns":
                scope[""] = value
                declarations[""] = value
            elif attr_name.startswith("xmlns:"):
                prefix = attr_name.split(":", 1)[1]
                scope[prefix] = value
                declarations[prefix] = value

        element = self.factory.element(
            name, self._resolve(name, scope, default=True), level=level)
        element.namespace_declarations = declarations
        for attr_name, value in raw_attributes:
            if attr_name == "xmlns" or attr_name.startswith("xmlns:"):
                ns_uri: Optional[str] = XMLNS_URI
            else:
                ns_uri = self._resolve(attr_name, scope, default=False)
            element.set_attribute(self.factory.attribute(
                attr_name, value, ns_uri, level=level + 1))

        if scanner.startswith("/>"):
            element.size = self.factory.last_serial - element.order_key[1]
            scanner.advance(2)
            return element, scope, True
        scanner.expect(">")
        return element, scope, False

    def _parse_comment(self, level: int = 0) -> Node:
        self.scanner.expect("<!--")
        content = self.scanner.read_until("-->", "unterminated comment")
        if "--" in content:
            raise self.scanner.error("'--' not allowed inside comment")
        return self.factory.comment(content, level=level)

    def _parse_pi(self, level: int = 0) -> Node:
        scanner = self.scanner
        scanner.expect("<?")
        target = scanner.read_name()
        if target.lower() == "xml":
            raise scanner.error("reserved processing-instruction target 'xml'")
        raw = scanner.read_until("?>", "unterminated processing instruction")
        return self.factory.processing_instruction(target, raw.strip(),
                                                   level=level)

    # -- helpers ---------------------------------------------------------------

    def _expand_references(self, text: str) -> str:
        if "&" not in text:
            return text
        parts: list[str] = []
        index = 0
        while index < len(text):
            amp = text.find("&", index)
            if amp < 0:
                parts.append(text[index:])
                break
            parts.append(text[index:amp])
            end = text.find(";", amp)
            if end < 0:
                raise self.scanner.error("unterminated entity reference")
            entity = text[amp + 1:end]
            if entity.startswith("#x") or entity.startswith("#X"):
                parts.append(chr(int(entity[2:], 16)))
            elif entity.startswith("#"):
                parts.append(chr(int(entity[1:])))
            elif entity in _PREDEFINED_ENTITIES:
                parts.append(_PREDEFINED_ENTITIES[entity])
            else:
                raise self.scanner.error(f"unknown entity &{entity};")
            index = end + 1
        return "".join(parts)

    def _resolve(self, qname: str, scope: dict[str, str],
                 default: bool) -> Optional[str]:
        if ":" in qname:
            prefix, _ = qname.split(":", 1)
            if prefix not in scope:
                raise self.scanner.error(f"undeclared namespace prefix {prefix!r}")
            return scope[prefix]
        if default:
            return scope.get("") or None
        return None


BACKENDS = ("expat", "python")

_ENCODING_DECL = re.compile(
    rb'^<\?xml[^>]*?encoding\s*=\s*["\']([A-Za-z][A-Za-z0-9._-]*)["\']')

_BOMS = (
    (codecs.BOM_UTF8, "utf-8-sig"),
    (codecs.BOM_UTF32_LE, "utf-32"),
    (codecs.BOM_UTF32_BE, "utf-32"),
    (codecs.BOM_UTF16_LE, "utf-16"),
    (codecs.BOM_UTF16_BE, "utf-16"),
)


def decode_xml_bytes(data: bytes) -> str:
    """Decode raw XML bytes honouring BOMs and the declared encoding.

    The pure-python backend's counterpart of what expat does natively: a
    BOM wins, then the XML declaration's ``encoding=`` pseudo-attribute
    (resolved through Python's codec registry, so aliases like
    ``latin-1`` work), defaulting to UTF-8.
    """
    for bom, encoding in _BOMS:
        if data.startswith(bom):
            return data.decode(encoding)
    match = _ENCODING_DECL.match(data[:256])
    encoding = match.group(1).decode("ascii") if match else "utf-8"
    try:
        return data.decode(encoding)
    except (LookupError, UnicodeDecodeError) as exc:
        raise XMLSyntaxError(f"cannot decode document: {exc}", 1, 1) \
            from None


def default_backend() -> str:
    """The process-wide parse backend: ``REPRO_XML_BACKEND`` when set to
    a known backend name, else ``"expat"``."""
    backend = os.environ.get("REPRO_XML_BACKEND", "").strip().lower()
    return backend if backend in BACKENDS else "expat"


def parse_document_python(text: Union[str, bytes],
                          uri: Optional[str] = None,
                          stride: Optional[int] = None) -> DocumentNode:
    """The pure-python reference backend (the parse-frontend ablation)."""
    if isinstance(text, (bytes, bytearray)):
        text = decode_xml_bytes(bytes(text))
    return _Parser(text, uri, stride=stride).parse_document()


def parse_document(text: Union[str, bytes], uri: Optional[str] = None,
                   stride: Optional[int] = None,
                   backend: Optional[str] = None) -> DocumentNode:
    """Parse a complete XML document into an XDM document node.

    Parameters
    ----------
    text:
        The XML source — ``str``, or raw ``bytes`` (the declared
        encoding / BOM is honoured by both backends).
    uri:
        Optional document URI recorded on the document node (what
        ``fn:document-uri`` would return).
    stride:
        Order-key spacing (defaults to
        :data:`repro.xdm.nodes.KEY_STRIDE`); ``1`` produces the dense
        historical encoding — kept as the update-benchmark ablation.
    backend:
        ``"expat"`` (C-speed SAX frontend), ``"python"`` (the reference
        parser), or ``None`` for the default (:func:`default_backend`,
        i.e. expat unless ``REPRO_XML_BACKEND`` overrides).  Under the
        default, expat failures — malformed input, or well-formed
        documents outside the expat subset — are retried on the python
        backend, so error messages and accepted documents are uniform
        regardless of backend; an explicitly requested backend never
        falls back.  Both backends produce byte-identical trees.
    """
    explicit = backend is not None
    if backend is None:
        backend = default_backend()
    if backend == "expat":
        from repro.xml.expat_parser import parse_document_expat
        try:
            document = parse_document_expat(text, uri=uri, stride=stride)
        except Exception:
            if explicit:
                raise
            PARSE_STATS.bump("fallbacks_to_python")
        else:
            PARSE_STATS.count_parse("expat", len(text))
            return document
    elif backend != "python":
        raise ValueError(
            f"unknown XML parse backend {backend!r}; expected one of "
            f"{BACKENDS}")
    document = parse_document_python(text, uri=uri, stride=stride)
    PARSE_STATS.count_parse("python", len(text))
    return document


def parse_fragment(text: Union[str, bytes],
                   backend: Optional[str] = None) -> ElementNode:
    """Parse a single element (fragment); returns the parentless element."""
    document = parse_document(text, backend=backend)
    root = document.root_element
    if root is None:
        raise XMLSyntaxError("fragment has no element", 1, 1)
    root.parent = None
    return root
