"""C-speed parse frontend over the stdlib ``xml.parsers.expat`` parser.

Every XRPC request/response body and every cold document registration is
``parse_document``-ed, and ROADMAP names that pass the dominant cost of
the message path.  This module rebuilds :mod:`repro.xdm` trees during
expat's C-level SAX events — minting gapped order keys and stamping
``pre``/``size``/``level`` **in the same single pass** as the
pure-python reference parser (:mod:`repro.xml.parser`), so the
:class:`~repro.xdm.structural.StructuralIndex` and the incremental
update path see byte-identical encodings regardless of backend.

Contract: for every document inside the supported subset (the reference
parser's documented subset), the tree produced here is *indistinguishable*
from the pure-python parser's — same node kinds in the same document
order, same lexical QNames and resolved namespace URIs, same
``namespace_declarations``, and the same ``(doc_id, serial)`` spacing,
``size`` extents and ``level`` stamps.  ``tests/test_parse_frontend.py``
asserts this differentially.

Constructs the reference parser accepts but expat handles differently
(internal-subset markup declarations, entities skipped because of an
unread external DTD) raise :class:`ExpatUnsupported`; the dispatching
``parse_document`` in :mod:`repro.xml.parser` then falls back to the
pure-python backend, which also re-diagnoses malformed input so error
messages stay uniform across backends.
"""

from __future__ import annotations

import xml.parsers.expat as _expat
from typing import Optional, Union

from repro.xdm.nodes import (
    AttributeNode,
    CommentNode,
    DocumentNode,
    ElementNode,
    KEY_STRIDE,
    ProcessingInstructionNode,
    TextNode,
    _next_doc_id,
)
from repro.xml.parser import XMLNS_URI, XMLSyntaxError

_XML_SCOPE = {"xml": "http://www.w3.org/XML/1998/namespace"}

# The handlers below build nodes with ``cls.__new__`` + direct attribute
# stores instead of the constructors: one C-level allocation versus a
# two-deep ``__init__`` call chain per node, which is a measurable share
# of the per-event budget at ~10k nodes per XMark document.  The stores
# must mirror the constructors field for field — the differential suite
# (tests/test_parse_frontend.py) pins this.
_NEW_ELEMENT = ElementNode.__new__
_NEW_TEXT = TextNode.__new__
_NEW_ATTRIBUTE = AttributeNode.__new__

#: Shared ``namespace_declarations`` of elements that declare nothing —
#: one dict allocation saved per element.  Safe because no code path
#: mutates an element's declarations in place: every writer (both
#: parsers, ``copy_tree``, the constructor evaluator) assigns a fresh
#: dict, and every reader copies before mutating.
_NO_DECLARATIONS: dict = {}


class ExpatUnsupported(XMLSyntaxError):
    """The document is outside the expat backend's subset (but possibly
    inside the pure-python parser's) — the dispatcher retries there."""


class _TreeBuilder:
    """Builds one XDM tree from expat events.

    The handlers are the per-node hot path (one ``StartElementHandler``
    call per element at C speed), so they mint order keys inline —
    ``serial``/``stride`` arithmetic identical to
    :class:`~repro.xdm.nodes.NodeFactory` — and wire parent/child links
    directly instead of going through ``append()`` (no structural index
    exists during the parse, so there is nothing to invalidate).
    """

    __slots__ = ("_doc_id", "_stride", "_serial", "_document", "_stack",
                 "_scope", "_default_uri", "_scope_stack", "_text",
                 "_parser")

    def __init__(self, uri: Optional[str], stride: Optional[int]) -> None:
        self._doc_id = _next_doc_id()
        self._stride = KEY_STRIDE if stride is None else max(1, stride)
        document = DocumentNode((self._doc_id, 0), uri)
        document.level = 0
        self._serial = self._stride
        self._document = document
        # Open containers, document at the bottom — a new child's level
        # is simply len(stack).  The namespace scope is kept *off* the
        # stack (declarations are rare): ``_scope``/``_default_uri`` are
        # the current bindings, and ``_scope_stack`` records
        # ``(level, scope, default_uri)`` to restore when the element
        # that declared new bindings closes.
        self._stack: list = [document]
        self._scope: dict = _XML_SCOPE
        self._default_uri: Optional[str] = None
        self._scope_stack: list[tuple] = []
        self._text: list[str] = []

    # -- hot-path handlers --------------------------------------------------

    def _start_element(self, name: str, attrs: list) -> None:
        stack = self._stack
        parent = stack[-1]
        doc_id = self._doc_id
        stride = self._stride
        serial = self._serial
        parts = self._text
        level = len(stack)
        if parts:
            text = _NEW_TEXT(TextNode)
            text.order_key = (doc_id, serial)
            serial += stride
            text.content = "".join(parts)
            text.level = level
            text.parent = parent
            parent._children.append(text)
            del parts[:]
        element = _NEW_ELEMENT(ElementNode)
        element.order_key = (doc_id, serial)
        serial += stride
        element.level = level
        element.name = name
        element._children = []
        if attrs:
            # xmlns declarations on this element first (they scope the
            # element's own name), then the element, then its attributes
            # in document order — the exact serial order the reference
            # parser mints.
            declarations = None
            for index in range(0, len(attrs), 2):
                attr_name = attrs[index]
                if attr_name.startswith("xmlns") and (
                        len(attr_name) == 5 or attr_name[5] == ":"):
                    if declarations is None:
                        declarations = {}
                    declarations[attr_name[6:]] = attrs[index + 1]
            if declarations:
                self._scope_stack.append(
                    (level, self._scope, self._default_uri))
                self._scope = scope = {**self._scope, **declarations}
                self._default_uri = scope.get("") or None
                element.namespace_declarations = declarations
            else:
                scope = self._scope
                element.namespace_declarations = _NO_DECLARATIONS
            element.ns_uri = (self._resolve_prefix(name, scope)
                              if ":" in name else self._default_uri)
            element._local_name = \
                name.split(":")[-1] if ":" in name else name
            attr_level = level + 1
            attributes = element._attributes = []
            for index in range(0, len(attrs), 2):
                attr_name = attrs[index]
                if attr_name.startswith("xmlns") and (
                        len(attr_name) == 5 or attr_name[5] == ":"):
                    attr_uri: Optional[str] = XMLNS_URI
                elif ":" in attr_name:
                    attr_uri = self._resolve_prefix(attr_name, scope)
                else:
                    attr_uri = None
                attribute = _NEW_ATTRIBUTE(AttributeNode)
                attribute.order_key = (doc_id, serial)
                serial += stride
                attribute.name = attr_name
                attribute._local_name = \
                    attr_name.split(":")[-1] if ":" in attr_name else attr_name
                attribute.value = attrs[index + 1]
                attribute.ns_uri = attr_uri
                attribute.level = attr_level
                attribute.parent = element
                attributes.append(attribute)
        elif ":" in name:
            element.namespace_declarations = _NO_DECLARATIONS
            element.ns_uri = self._resolve_prefix(name, self._scope)
            element._local_name = name.split(":")[-1]
            element._attributes = []
        else:
            element.namespace_declarations = _NO_DECLARATIONS
            element.ns_uri = self._default_uri
            element._local_name = name
            element._attributes = []
        self._serial = serial
        element.parent = parent
        parent._children.append(element)
        stack.append(element)

    def _end_element(self, name: str) -> None:
        stack = self._stack
        element = stack.pop()
        parts = self._text
        serial = self._serial
        if parts:
            text = _NEW_TEXT(TextNode)
            text.order_key = (self._doc_id, serial)
            serial += self._stride
            self._serial = serial
            text.content = "".join(parts)
            text.level = len(stack) + 1
            text.parent = element
            element._children.append(text)
            del parts[:]
        # Subtree complete: extent reaches the last issued serial.
        element.size = serial - self._stride - element.order_key[1]
        scope_stack = self._scope_stack
        if scope_stack and scope_stack[-1][0] == len(stack):
            # This element declared namespaces; restore the outer scope.
            _, self._scope, self._default_uri = scope_stack.pop()

    # -- the rest of the event surface --------------------------------------

    def _flush_text(self) -> None:
        parts = self._text
        if parts:
            parent = self._stack[-1]
            serial = self._serial
            text = TextNode((self._doc_id, serial), "".join(parts))
            self._serial = serial + self._stride
            text.level = len(self._stack)
            text.parent = parent
            parent._children.append(text)
            del parts[:]

    def _comment(self, data: str) -> None:
        self._flush_text()
        parent = self._stack[-1]
        serial = self._serial
        node = CommentNode((self._doc_id, serial), data)
        self._serial = serial + self._stride
        node.level = len(self._stack)
        node.parent = parent
        parent._children.append(node)

    def _processing_instruction(self, target: str, data: str) -> None:
        self._flush_text()
        parent = self._stack[-1]
        serial = self._serial
        node = ProcessingInstructionNode((self._doc_id, serial), target,
                                         data.strip())
        self._serial = serial + self._stride
        node.level = len(self._stack)
        node.parent = parent
        parent._children.append(node)

    def _start_cdata(self) -> None:
        # An empty CDATA section still yields an (empty) text node in
        # the reference parser; seeding the buffer with "" reproduces
        # that, and is a no-op for non-empty sections.
        self._text.append("")

    # -- outside the supported subset ---------------------------------------

    def _error(self, message: str) -> ExpatUnsupported:
        parser = self._parser
        return ExpatUnsupported(message, parser.CurrentLineNumber,
                                parser.CurrentColumnNumber + 1)

    def _resolve_prefix(self, qname: str, scope: dict) -> str:
        prefix = qname.split(":", 1)[0]
        uri = scope.get(prefix)
        if uri is None:
            raise self._error(f"undeclared namespace prefix {prefix!r}")
        return uri

    def _entity_decl(self, *args) -> None:
        # The reference parser skips internal subsets but rejects
        # *references* to declared entities; expat would expand them.
        # Bail so the dispatcher's python fallback decides.
        raise self._error("internal-subset entity declaration")

    def _attlist_decl(self, *args) -> None:
        # Expat would inject declared default attribute values; the
        # reference parser ignores the declarations entirely.
        raise self._error("internal-subset attribute-list declaration")

    def _skipped_entity(self, name: str, is_parameter: bool) -> None:
        raise self._error(f"unknown entity &{name};")

    def _external_entity(self, *args) -> int:
        raise self._error("external entity reference")

    # -- driving ------------------------------------------------------------

    def parse(self, data: Union[str, bytes]) -> DocumentNode:
        parser = _expat.ParserCreate(intern={})
        self._parser = parser
        parser.ordered_attributes = True
        parser.buffer_text = True
        parser.StartElementHandler = self._start_element
        parser.EndElementHandler = self._end_element
        parser.CharacterDataHandler = self._text.append
        parser.CommentHandler = self._comment
        parser.ProcessingInstructionHandler = self._processing_instruction
        parser.StartCdataSectionHandler = self._start_cdata
        parser.EntityDeclHandler = self._entity_decl
        parser.AttlistDeclHandler = self._attlist_decl
        parser.SkippedEntityHandler = self._skipped_entity
        parser.ExternalEntityRefHandler = self._external_entity
        try:
            parser.Parse(data, True)
        except _expat.ExpatError as exc:
            message = _expat.errors.messages.get(exc.code, str(exc))
            raise XMLSyntaxError(message, exc.lineno, exc.offset + 1) \
                from None
        finally:
            # Break the parser<->handler reference cycle promptly (the
            # builder holds the parser, the parser holds bound methods).
            self._parser = None
            parser.StartElementHandler = None
            parser.EndElementHandler = None
            parser.CharacterDataHandler = None
            parser.CommentHandler = None
            parser.ProcessingInstructionHandler = None
            parser.StartCdataSectionHandler = None
            parser.EntityDeclHandler = None
            parser.AttlistDeclHandler = None
            parser.SkippedEntityHandler = None
            parser.ExternalEntityRefHandler = None
        document = self._document
        document.size = self._serial - self._stride
        return document


def parse_document_expat(data: Union[str, bytes],
                         uri: Optional[str] = None,
                         stride: Optional[int] = None) -> DocumentNode:
    """Parse a complete XML document at expat speed.

    Accepts ``str`` or ``bytes``; byte input honours the XML
    declaration's encoding and BOMs natively (UTF-8/UTF-16/ISO-8859-1/
    US-ASCII).  Raises :class:`~repro.xml.parser.XMLSyntaxError` on
    malformed input and :class:`ExpatUnsupported` for well-formed
    documents outside the supported subset.
    """
    return _TreeBuilder(uri, stride).parse(data)
