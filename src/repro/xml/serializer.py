"""Serialization of XDM trees back to XML text.

Mirrors the XQuery serialization spec closely enough for the XRPC
protocol: predefined entities are escaped in text and attribute content,
attributes keep document order, and an optional indent mode is provided
for human-readable output (never used on the wire, where whitespace is
significant).
"""

from __future__ import annotations

from typing import Iterable

from repro.xdm.nodes import (
    AttributeNode,
    CommentNode,
    DocumentNode,
    ElementNode,
    Node,
    ProcessingInstructionNode,
    TextNode,
)


def escape_text(text: str) -> str:
    """Escape character data content."""
    return (
        text.replace("&", "&amp;")
        .replace("<", "&lt;")
        .replace(">", "&gt;")
    )


def escape_attribute(text: str) -> str:
    """Escape attribute values (quoted with double quotes)."""
    return (
        text.replace("&", "&amp;")
        .replace("<", "&lt;")
        .replace('"', "&quot;")
        .replace("\n", "&#10;")
        .replace("\t", "&#9;")
    )


def serialize(node: Node, indent: bool = False,
              xml_declaration: bool = False) -> str:
    """Serialize a node (tree) to XML text.

    Parameters
    ----------
    node:
        Any XDM node; documents serialize their children in order.
    indent:
        Pretty-print with two-space indentation.  Only safe for data
        without mixed content.
    xml_declaration:
        Prepend ``<?xml version="1.0" encoding="utf-8"?>``.
    """
    pieces: list[str] = []
    if xml_declaration:
        pieces.append('<?xml version="1.0" encoding="utf-8"?>')
        if indent:
            pieces.append("\n")
    _serialize_node(node, pieces, indent, level=0, scope={})
    return "".join(pieces)


def serialize_into(node: Node, out: list[str],
                   scope: dict[str, str] | None = None) -> None:
    """Serialize a node (tree) by appending pieces to an existing buffer.

    ``scope`` holds the prefix->URI bindings already declared by the
    surrounding markup, so fragments embedded in a larger document (the
    streaming SOAP writer) don't redeclare prefixes the envelope binds.
    """
    _serialize_node(node, out, indent=False, level=0, scope=scope or {})


def serialize_sequence(items: Iterable[object]) -> str:
    """Serialize a sequence the way XQuery result output does.

    Adjacent atomic values are separated by single spaces; nodes are
    serialized as markup.
    """
    from repro.xdm.atomic import AtomicValue

    pieces: list[str] = []
    previous_atomic = False
    for item in items:
        if isinstance(item, AtomicValue):
            if previous_atomic:
                pieces.append(" ")
            pieces.append(escape_text(item.string_value()))
            previous_atomic = True
        elif isinstance(item, Node):
            pieces.append(serialize(item))
            previous_atomic = False
        else:
            raise TypeError(f"cannot serialize {type(item).__name__}")
    return "".join(pieces)


def _serialize_node(node: Node, out: list[str], indent: bool, level: int,
                    scope: dict[str, str]) -> None:
    """Iterative serialization: an explicit frame stack replaces the
    call stack, so deep trees (XRPC payloads nest thousands of levels)
    serialize under the default recursion limit.  A frame is either a
    literal string to emit or a ``(node, indent, level, scope)`` tuple;
    element frames expand into their pieces plus child frames in
    document order.  Output is byte-identical to the old recursion.
    """
    stack: list = [(node, indent, level, scope)]
    while stack:
        frame = stack.pop()
        if isinstance(frame, str):
            out.append(frame)
            continue
        node, indent, level, scope = frame
        pad = "  " * level if indent else ""
        if isinstance(node, DocumentNode):
            tokens: list = []
            for child in node.children:
                tokens.append((child, indent, level, scope))
                if indent:
                    tokens.append("\n")
            stack.extend(reversed(tokens))
            continue
        if isinstance(node, ElementNode):
            declarations = dict(node.namespace_declarations)
            child_scope = {**scope, **declarations}
            # Auto-declare prefixes in use on this element but unbound in
            # scope (constructed trees carry resolved ns_uri without
            # xmlns attrs).
            for owner in (node, *node.attributes):
                name = owner.name
                ns_uri = getattr(owner, "ns_uri", None)
                if ":" not in name or ns_uri is None:
                    continue
                prefix = name.split(":", 1)[0]
                if prefix in ("xml", "xmlns"):
                    continue
                if child_scope.get(prefix) != ns_uri:
                    declarations[prefix] = ns_uri
                    child_scope[prefix] = ns_uri
            out.append(f"{pad}<{node.name}")
            for prefix, uri in sorted(declarations.items()):
                name = "xmlns" if prefix == "" else f"xmlns:{prefix}"
                if not any(a.name == name for a in node.attributes):
                    out.append(f' {name}="{escape_attribute(uri)}"')
            for attribute in node.attributes:
                out.append(
                    f' {attribute.name}="{escape_attribute(attribute.value)}"')
            if not node.children:
                out.append("/>")
                continue
            out.append(">")
            only_text = all(isinstance(c, TextNode) for c in node.children)
            tokens = []
            if indent and not only_text:
                for child in node.children:
                    tokens.append("\n")
                    tokens.append((child, indent, level + 1, child_scope))
                tokens.append(f"\n{pad}</{node.name}>")
            else:
                for child in node.children:
                    tokens.append((child, False, 0, child_scope))
                tokens.append(f"</{node.name}>")
            stack.extend(reversed(tokens))
            continue
        if isinstance(node, TextNode):
            out.append(pad + escape_text(node.content))
            continue
        if isinstance(node, CommentNode):
            out.append(f"{pad}<!--{node.content}-->")
            continue
        if isinstance(node, ProcessingInstructionNode):
            out.append(f"{pad}<?{node.target} {node.content}?>")
            continue
        if isinstance(node, AttributeNode):
            # A standalone attribute serializes like the paper's example:
            # <xrpc:attribute x="y"/> wraps it; bare attributes render
            # name="value".
            out.append(f'{node.name}="{escape_attribute(node.value)}"')
            continue
        raise TypeError(f"cannot serialize node kind {node.kind}")
