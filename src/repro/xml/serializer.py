"""Serialization of XDM trees back to XML text.

Mirrors the XQuery serialization spec closely enough for the XRPC
protocol: predefined entities are escaped in text and attribute content,
attributes keep document order, and an optional indent mode is provided
for human-readable output (never used on the wire, where whitespace is
significant).
"""

from __future__ import annotations

import re
from typing import Iterable

from repro.xdm.nodes import (
    AttributeNode,
    CommentNode,
    DocumentNode,
    ElementNode,
    Node,
    ProcessingInstructionNode,
    TextNode,
)

# Most text runs and attribute values on the XRPC wire contain no
# characters that need escaping, so both escape functions do one
# C-level membership scan first and return the *same string object*
# when nothing matches — five chained ``.replace`` copies otherwise.
_TEXT_SPECIALS = re.compile(r"[&<>]").search
_ATTR_SPECIALS = re.compile(r'[&<"\n\t]').search


def escape_text(text: str) -> str:
    """Escape character data content."""
    if _TEXT_SPECIALS(text) is None:
        return text
    return (
        text.replace("&", "&amp;")
        .replace("<", "&lt;")
        .replace(">", "&gt;")
    )


def escape_attribute(text: str) -> str:
    """Escape attribute values (quoted with double quotes)."""
    if _ATTR_SPECIALS(text) is None:
        return text
    return (
        text.replace("&", "&amp;")
        .replace("<", "&lt;")
        .replace('"', "&quot;")
        .replace("\n", "&#10;")
        .replace("\t", "&#9;")
    )


def serialize(node: Node, indent: bool = False,
              xml_declaration: bool = False) -> str:
    """Serialize a node (tree) to XML text.

    Parameters
    ----------
    node:
        Any XDM node; documents serialize their children in order.
    indent:
        Pretty-print with two-space indentation.  Only safe for data
        without mixed content.
    xml_declaration:
        Prepend ``<?xml version="1.0" encoding="utf-8"?>``.
    """
    pieces: list[str] = []
    if xml_declaration:
        pieces.append('<?xml version="1.0" encoding="utf-8"?>')
        if indent:
            pieces.append("\n")
    if indent:
        _serialize_node(node, pieces, indent, level=0, scope={})
    else:
        _serialize_wire(node, pieces, scope={})
    return "".join(pieces)


def serialize_into(node: Node, out: list[str],
                   scope: dict[str, str] | None = None) -> None:
    """Serialize a node (tree) by appending pieces to an existing buffer.

    ``scope`` holds the prefix->URI bindings already declared by the
    surrounding markup, so fragments embedded in a larger document (the
    streaming SOAP writer) don't redeclare prefixes the envelope binds.
    """
    _serialize_wire(node, out, scope or {})


def serialize_sequence(items: Iterable[object]) -> str:
    """Serialize a sequence the way XQuery result output does.

    Adjacent atomic values are separated by single spaces; nodes are
    serialized as markup.
    """
    from repro.xdm.atomic import AtomicValue

    pieces: list[str] = []
    previous_atomic = False
    for item in items:
        if isinstance(item, AtomicValue):
            if previous_atomic:
                pieces.append(" ")
            pieces.append(escape_text(item.string_value()))
            previous_atomic = True
        elif isinstance(item, Node):
            pieces.append(serialize(item))
            previous_atomic = False
        else:
            raise TypeError(f"cannot serialize {type(item).__name__}")
    return "".join(pieces)


def _serialize_wire(node: Node, out: list[str],
                    scope: dict[str, str]) -> None:
    """Non-indent (wire) emitter: the single-pass fast path shared by
    ``serialize``/``serialize_into`` and ``soap.MarshalWriter``.

    Byte-identical to ``_serialize_node(indent=False)``, but tuned for
    the message hot path: text children append straight to the output
    as pre-escaped string frames (batched text runs, no frame tuple per
    text node), namespace scopes are only copied when an element
    actually declares or auto-declares a binding, and child/attribute
    lists are read directly.  The indent path keeps the general emitter.
    """
    append = out.append
    stack: list = [(node, scope)]
    while stack:
        frame = stack.pop()
        if type(frame) is str:
            append(frame)
            continue
        node, scope = frame
        if type(node) is TextNode:
            append(escape_text(node.content))
            continue
        if isinstance(node, ElementNode):
            name = node.name
            attributes = node._attributes
            inherited = node.namespace_declarations
            if inherited:
                declarations = dict(inherited)
                child_scope = {**scope, **inherited}
            else:
                declarations = None
                child_scope = scope       # copied lazily on auto-declare
            # Auto-declare prefixes in use on this element but unbound
            # in scope (constructed trees carry resolved ns_uri without
            # xmlns attrs).
            for owner in (node, *attributes) if attributes else (node,):
                owner_name = owner.name
                if ":" not in owner_name:
                    continue
                ns_uri = owner.ns_uri
                if ns_uri is None:
                    continue
                prefix = owner_name.split(":", 1)[0]
                if prefix in ("xml", "xmlns"):
                    continue
                if child_scope.get(prefix) != ns_uri:
                    if declarations is None:
                        declarations = {}
                    if child_scope is scope:
                        child_scope = dict(scope)
                    declarations[prefix] = ns_uri
                    child_scope[prefix] = ns_uri
            append("<" + name)
            if declarations:
                for prefix, uri in sorted(declarations.items()):
                    xmlns = "xmlns" if prefix == "" else "xmlns:" + prefix
                    if not any(a.name == xmlns for a in attributes):
                        append(" " + xmlns + '="' + escape_attribute(uri)
                               + '"')
            for attribute in attributes:
                append(" " + attribute.name + '="'
                       + escape_attribute(attribute.value) + '"')
            children = node._children
            if not children:
                append("/>")
                continue
            append(">")
            if len(children) == 1 and type(children[0]) is TextNode:
                # Leaf with one text child — the dominant shape in XRPC
                # value holders; skip the frame round-trip entirely.
                append(escape_text(children[0].content))
                append("</" + name + ">")
                continue
            stack.append("</" + name + ">")
            for child in reversed(children):
                if type(child) is TextNode:
                    stack.append(escape_text(child.content))
                else:
                    stack.append((child, child_scope))
            continue
        if isinstance(node, DocumentNode):
            for child in reversed(node._children):
                stack.append((child, scope))
            continue
        if isinstance(node, TextNode):
            append(escape_text(node.content))
            continue
        if isinstance(node, CommentNode):
            append("<!--" + node.content + "-->")
            continue
        if isinstance(node, ProcessingInstructionNode):
            append("<?" + node.target + " " + node.content + "?>")
            continue
        if isinstance(node, AttributeNode):
            append(node.name + '="' + escape_attribute(node.value) + '"')
            continue
        raise TypeError(f"cannot serialize node kind {node.kind}")


def _serialize_node(node: Node, out: list[str], indent: bool, level: int,
                    scope: dict[str, str]) -> None:
    """Iterative serialization: an explicit frame stack replaces the
    call stack, so deep trees (XRPC payloads nest thousands of levels)
    serialize under the default recursion limit.  A frame is either a
    literal string to emit or a ``(node, indent, level, scope)`` tuple;
    element frames expand into their pieces plus child frames in
    document order.  Output is byte-identical to the old recursion.
    """
    stack: list = [(node, indent, level, scope)]
    while stack:
        frame = stack.pop()
        if isinstance(frame, str):
            out.append(frame)
            continue
        node, indent, level, scope = frame
        pad = "  " * level if indent else ""
        if isinstance(node, DocumentNode):
            tokens: list = []
            for child in node.children:
                tokens.append((child, indent, level, scope))
                if indent:
                    tokens.append("\n")
            stack.extend(reversed(tokens))
            continue
        if isinstance(node, ElementNode):
            declarations = dict(node.namespace_declarations)
            child_scope = {**scope, **declarations}
            # Auto-declare prefixes in use on this element but unbound in
            # scope (constructed trees carry resolved ns_uri without
            # xmlns attrs).
            for owner in (node, *node.attributes):
                name = owner.name
                ns_uri = getattr(owner, "ns_uri", None)
                if ":" not in name or ns_uri is None:
                    continue
                prefix = name.split(":", 1)[0]
                if prefix in ("xml", "xmlns"):
                    continue
                if child_scope.get(prefix) != ns_uri:
                    declarations[prefix] = ns_uri
                    child_scope[prefix] = ns_uri
            out.append(f"{pad}<{node.name}")
            for prefix, uri in sorted(declarations.items()):
                name = "xmlns" if prefix == "" else f"xmlns:{prefix}"
                if not any(a.name == name for a in node.attributes):
                    out.append(f' {name}="{escape_attribute(uri)}"')
            for attribute in node.attributes:
                out.append(
                    f' {attribute.name}="{escape_attribute(attribute.value)}"')
            if not node.children:
                out.append("/>")
                continue
            out.append(">")
            only_text = all(isinstance(c, TextNode) for c in node.children)
            tokens = []
            if indent and not only_text:
                for child in node.children:
                    tokens.append("\n")
                    tokens.append((child, indent, level + 1, child_scope))
                tokens.append(f"\n{pad}</{node.name}>")
            else:
                for child in node.children:
                    tokens.append((child, False, 0, child_scope))
                tokens.append(f"</{node.name}>")
            stack.extend(reversed(tokens))
            continue
        if isinstance(node, TextNode):
            out.append(pad + escape_text(node.content))
            continue
        if isinstance(node, CommentNode):
            out.append(f"{pad}<!--{node.content}-->")
            continue
        if isinstance(node, ProcessingInstructionNode):
            out.append(f"{pad}<?{node.target} {node.content}?>")
            continue
        if isinstance(node, AttributeNode):
            # A standalone attribute serializes like the paper's example:
            # <xrpc:attribute x="y"/> wraps it; bare attributes render
            # name="value".
            out.append(f'{node.name}="{escape_attribute(node.value)}"')
            continue
        raise TypeError(f"cannot serialize node kind {node.kind}")
