"""Parse-frontend telemetry.

:data:`PARSE_STATS` counts what the message-path parse frontend actually
did: how many documents (and how many bytes) each backend parsed, and
how often the default expat backend fell back to the pure-python
reference parser (malformed input re-diagnosed for uniform error
messages, or constructs outside the expat subset such as internal-subset
markup declarations).

Counters accumulate both process-wide (``snapshot()``, reported by
``Database.stats()``) and per *thread* (``snapshot_local()``): message
parsing runs on server worker threads, so per-execution deltas in
``Explain`` are taken against the executing thread's counters —
overlapping executions cannot attribute each other's parse work.  The
same discipline as :data:`repro.xdm.structural.ENCODING_STATS`.
"""

from __future__ import annotations

import threading


class ParseStats:
    """Thread-aware counters of the parse/serialize frontend."""

    FIELDS = ("documents_expat", "documents_python", "bytes_expat",
              "bytes_python", "fallbacks_to_python")

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._local = threading.local()
        for field in self.FIELDS:
            setattr(self, field, 0)

    def bump(self, field: str, count: int = 1) -> None:
        with self._lock:
            setattr(self, field, getattr(self, field) + count)
        local = self._local.__dict__  # thread-local: no lock needed
        local[field] = local.get(field, 0) + count

    def count_parse(self, backend: str, size: int) -> None:
        """Record one parsed document of *size* bytes/characters."""
        self.bump(f"documents_{backend}")
        self.bump(f"bytes_{backend}", size)

    def snapshot(self) -> dict[str, int]:
        """Process-wide totals."""
        with self._lock:
            return {field: getattr(self, field) for field in self.FIELDS}

    def snapshot_local(self) -> dict[str, int]:
        """The calling thread's totals (per-execution delta basis)."""
        local = self._local.__dict__
        return {field: local.get(field, 0) for field in self.FIELDS}

    def reset(self) -> None:
        with self._lock:
            for field in self.FIELDS:
                setattr(self, field, 0)
        self._local.__dict__.clear()


#: The process-wide counter instance (messages parse on any thread).
PARSE_STATS = ParseStats()
