"""From-scratch XML 1.0 infrastructure.

The paper's system relies on an XML engine for shredding SOAP messages
and serializing results; since the reproduction may not assume lxml, this
package implements a small, well-formedness-checking XML parser that
produces :mod:`repro.xdm` node trees, and a serializer that renders them
back to markup.
"""

from repro.xml.parser import parse_document, parse_fragment, XMLSyntaxError
from repro.xml.serializer import serialize, escape_text, escape_attribute

__all__ = [
    "parse_document",
    "parse_fragment",
    "XMLSyntaxError",
    "serialize",
    "escape_text",
    "escape_attribute",
]
