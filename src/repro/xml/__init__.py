"""From-scratch XML 1.0 infrastructure.

The paper's system relies on an XML engine for shredding SOAP messages
and serializing results; since the reproduction may not assume lxml, this
package implements a small, well-formedness-checking XML parser that
produces :mod:`repro.xdm` node trees, and a serializer that renders them
back to markup.
"""

from repro.xml.parser import (
    BACKENDS,
    XMLSyntaxError,
    default_backend,
    parse_document,
    parse_fragment,
)
from repro.xml.serializer import serialize, escape_text, escape_attribute
from repro.xml.stats import PARSE_STATS

__all__ = [
    "BACKENDS",
    "PARSE_STATS",
    "default_backend",
    "parse_document",
    "parse_fragment",
    "XMLSyntaxError",
    "serialize",
    "escape_text",
    "escape_attribute",
]
