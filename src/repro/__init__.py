"""Reproduction of "XRPC: Interoperable and Efficient Distributed XQuery"
(Zhang & Boncz, VLDB 2007).

Public API highlights:

* :class:`repro.session.Database` — the unified session API: register
  documents, ``prepare``/``execute`` queries (lifted plan first,
  interpreter fallback), ``explain()`` telemetry, bounded plan cache.
* :class:`repro.rpc.XRPCPeer` — a full XRPC peer (engine + store +
  server + client); ``execute_query`` originates distributed queries
  through the same unified pipeline.
* :class:`repro.net.SimulatedNetwork` / :class:`repro.net.HttpTransport`
  — interchangeable transports.
* :class:`repro.wrapper.XRPCWrapper` — serve XRPC with any XQuery engine.
* :func:`repro.xquery.evaluate_query` — the standalone XQuery engine
  (deprecated shim over the session API).
* :mod:`repro.experiments` — harnesses regenerating the paper's tables.

See README.md for a guided tour and DESIGN.md for the system inventory.
"""

__version__ = "1.0.0"

from repro.errors import (
    XRPCReproError,
    XQueryError,
    XRPCFault,
    TransportError,
    TransactionError,
)
from repro.session import (
    Database,
    DatabaseStats,
    ExecutionContext,
    Explain,
    PreparedQuery,
)

__all__ = [
    "__version__",
    "XRPCReproError",
    "XQueryError",
    "XRPCFault",
    "TransportError",
    "TransactionError",
    "Database",
    "DatabaseStats",
    "ExecutionContext",
    "Explain",
    "PreparedQuery",
]
