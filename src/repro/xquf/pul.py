"""Update primitives, pending update lists, and applyUpdates().

Matches the XQUF draft the paper cites: each updating expression appends
a primitive describing *what* to change; :func:`apply_updates` performs
the side effects.  Per the paper (end of section 2.3), when the same node
is updated twice in one query the application order of the conflicting
actions is non-deterministic, so unioning PULs from multiple XRPC calls
is sound — :meth:`PendingUpdateList.merge` implements exactly that union.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Optional

from repro.errors import UpdateError
from repro.xdm.nodes import (
    AttributeNode,
    DocumentNode,
    ElementNode,
    Node,
    NodeFactory,
    TextNode,
    copy_tree,
)


class UpdatePrimitive:
    """Base class of all update primitives."""

    target: Node

    def apply(self) -> None:
        raise NotImplementedError


def _require_element_or_document(node: Node, verb: str) -> None:
    if not isinstance(node, (ElementNode, DocumentNode)):
        raise UpdateError(
            "XUTY0005", f"{verb} target must be an element or document node")


def _insert_children(parent: Node, nodes: list[Node], index: int) -> None:
    _require_element_or_document(parent, "insert")
    offset = 0
    for node in nodes:
        if isinstance(node, AttributeNode):
            if not isinstance(parent, ElementNode):
                raise UpdateError(
                    "XUTY0022", "attributes may only be inserted into elements")
            parent.set_attribute(node)
            continue
        node.parent = parent
        parent.children.insert(index + offset, node)
        offset += 1


def _child_index(node: Node) -> int:
    parent = node.parent
    if parent is None:
        raise UpdateError("XUDY0027", "target has no parent")
    for index, child in enumerate(parent.children):
        if child is node:
            return index
    raise UpdateError("XUDY0027", "target detached from parent")


@dataclass
class InsertInto(UpdatePrimitive):
    target: Node
    content: list[Node]

    def apply(self) -> None:
        _insert_children(self.target, self.content, len(self.target.children))


@dataclass
class InsertFirst(UpdatePrimitive):
    target: Node
    content: list[Node]

    def apply(self) -> None:
        _insert_children(self.target, self.content, 0)


@dataclass
class InsertLast(UpdatePrimitive):
    target: Node
    content: list[Node]

    def apply(self) -> None:
        _insert_children(self.target, self.content, len(self.target.children))


@dataclass
class InsertBefore(UpdatePrimitive):
    target: Node
    content: list[Node]

    def apply(self) -> None:
        parent = self.target.parent
        if parent is None:
            raise UpdateError("XUDY0027", "insert before target has no parent")
        _insert_children(parent, self.content, _child_index(self.target))


@dataclass
class InsertAfter(UpdatePrimitive):
    target: Node
    content: list[Node]

    def apply(self) -> None:
        parent = self.target.parent
        if parent is None:
            raise UpdateError("XUDY0027", "insert after target has no parent")
        _insert_children(parent, self.content, _child_index(self.target) + 1)


@dataclass
class DeleteNode(UpdatePrimitive):
    target: Node

    def apply(self) -> None:
        parent = self.target.parent
        if parent is None:
            return  # deleting a root: becomes detached, nothing to do
        if isinstance(self.target, AttributeNode):
            assert isinstance(parent, ElementNode)
            parent.attributes[:] = [
                a for a in parent.attributes if a is not self.target]
        else:
            parent.children[:] = [
                c for c in parent.children if c is not self.target]
        self.target.parent = None


@dataclass
class ReplaceNode(UpdatePrimitive):
    target: Node
    replacement: list[Node]

    def apply(self) -> None:
        parent = self.target.parent
        if parent is None:
            raise UpdateError("XUDY0009", "replace target has no parent")
        if isinstance(self.target, AttributeNode):
            assert isinstance(parent, ElementNode)
            index = next(
                i for i, a in enumerate(parent.attributes) if a is self.target)
            parent.attributes.pop(index)
            for offset, node in enumerate(self.replacement):
                if not isinstance(node, AttributeNode):
                    raise UpdateError(
                        "XUTY0011", "attribute may only be replaced by attributes")
                node.parent = parent
                parent.attributes.insert(index + offset, node)
            return
        index = _child_index(self.target)
        parent.children.pop(index)
        self.target.parent = None
        _insert_children(parent, self.replacement, index)


@dataclass
class ReplaceValue(UpdatePrimitive):
    target: Node
    value: str

    def apply(self) -> None:
        if isinstance(self.target, AttributeNode):
            self.target.value = self.value
            return
        if isinstance(self.target, TextNode):
            self.target.content = self.value
            return
        if isinstance(self.target, ElementNode):
            factory = NodeFactory()
            self.target.children.clear()
            if self.value:
                text = factory.text(self.value)
                text.parent = self.target
                self.target.children.append(text)
            return
        raise UpdateError("XUTY0008", "replace value target kind unsupported")


@dataclass
class RenameNode(UpdatePrimitive):
    target: Node
    new_name: str

    def apply(self) -> None:
        if isinstance(self.target, (ElementNode, AttributeNode)):
            self.target.rename(self.new_name)
            return
        raise UpdateError("XUTY0012", "rename target must be element or attribute")


@dataclass
class PutDocument(UpdatePrimitive):
    """fn:put() — store a document at a URI (data shipping write)."""

    target: Node
    uri: str
    store: Optional[Callable[[str, Node], None]] = None

    def apply(self) -> None:
        if self.store is None:
            raise UpdateError("FOUP0002", f"no document store for fn:put({self.uri!r})")
        node = self.target
        if not isinstance(node, DocumentNode):
            document = NodeFactory().document(self.uri)
            document.append(copy_tree(node))
            node = document
        self.store(self.uri, node)


@dataclass
class PendingUpdateList:
    """An ordered collection of update primitives (Δ in the paper)."""

    primitives: list[UpdatePrimitive] = field(default_factory=list)

    def add(self, primitive: UpdatePrimitive) -> None:
        self.primitives.append(primitive)

    def merge(self, other: "PendingUpdateList") -> None:
        """Union with another PUL (Δ ∪ Δ'), order preserved per-list."""
        self.primitives.extend(other.primitives)

    def __len__(self) -> int:
        return len(self.primitives)

    def __bool__(self) -> bool:
        return bool(self.primitives)


def apply_updates(pul: PendingUpdateList) -> None:
    """applyUpdates(Δ): carry through all changes in the list.

    Deletions are applied last (after inserts/replaces), following the
    XQUF semantics that the primitives operate against the pre-update
    tree as far as observable.

    Afterwards, every structurally mutated tree is re-encoded
    (:func:`~repro.xdm.structural.reencode_tree`): spliced-in content
    minted by other node factories receives order keys matching its new
    tree position, restoring the dense pre/size/level encoding.  Value
    and rename updates only invalidate the affected tree's structural
    index (and with it the cached equality-predicate value indexes).
    """
    from repro.xdm.structural import invalidate_structural_index, reencode_tree

    structural = (InsertInto, InsertFirst, InsertLast, InsertBefore,
                  InsertAfter, DeleteNode, ReplaceNode)

    def is_structural(primitive: UpdatePrimitive) -> bool:
        if isinstance(primitive, structural):
            return True
        # ReplaceValue on an *element* splices in a fresh-factory text
        # node — a structural change needing re-encoding like any insert.
        return isinstance(primitive, ReplaceValue) and \
            isinstance(primitive.target, ElementNode)

    # Roots must be resolved *before* applying: a deletion detaches its
    # target, and the tree it was removed from is the one to re-encode.
    mutated_roots: dict[int, Node] = {}
    for primitive in pul.primitives:
        if is_structural(primitive):
            root = primitive.target.root()
            mutated_roots[id(root)] = root
    deletions = [p for p in pul.primitives if isinstance(p, DeleteNode)]
    for primitive in pul.primitives:
        if not isinstance(primitive, DeleteNode):
            primitive.apply()
        if not is_structural(primitive):
            invalidate_structural_index(primitive.target)
    for primitive in deletions:
        primitive.apply()
    for root in mutated_roots.values():
        reencode_tree(root)
