"""Update primitives, pending update lists, and applyUpdates().

Matches the XQUF draft the paper cites: each updating expression appends
a primitive describing *what* to change; :func:`apply_updates` performs
the side effects.  Per the paper (end of section 2.3), when the same node
is updated twice in one query the application order of the conflicting
actions is non-deterministic, so unioning PULs from multiple XRPC calls
is sound — :meth:`PendingUpdateList.merge` implements exactly that union.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Optional

from repro.errors import UpdateError
from repro.xdm.nodes import (
    AttributeNode,
    DocumentNode,
    ElementNode,
    Node,
    NodeFactory,
    TextNode,
    copy_tree,
)


class UpdatePrimitive:
    """Base class of all update primitives."""

    target: Node

    def apply(self) -> None:
        raise NotImplementedError


def _require_element_or_document(node: Node, verb: str) -> None:
    if not isinstance(node, (ElementNode, DocumentNode)):
        raise UpdateError(
            "XUTY0005", f"{verb} target must be an element or document node")


def _insert_children(parent: Node, nodes: list[Node], index: int) -> None:
    _require_element_or_document(parent, "insert")
    offset = 0
    for node in nodes:
        if isinstance(node, AttributeNode):
            if not isinstance(parent, ElementNode):
                raise UpdateError(
                    "XUTY0022", "attributes may only be inserted into elements")
            parent.set_attribute(node)
            continue
        node.parent = parent
        parent.children.insert(index + offset, node)
        offset += 1


def _child_index(node: Node) -> int:
    parent = node.parent
    if parent is None:
        raise UpdateError("XUDY0027", "target has no parent")
    for index, child in enumerate(parent.children):
        if child is node:
            return index
    raise UpdateError("XUDY0027", "target detached from parent")


@dataclass
class InsertInto(UpdatePrimitive):
    target: Node
    content: list[Node]

    def apply(self) -> None:
        _insert_children(self.target, self.content, len(self.target.children))


@dataclass
class InsertFirst(UpdatePrimitive):
    target: Node
    content: list[Node]

    def apply(self) -> None:
        _insert_children(self.target, self.content, 0)


@dataclass
class InsertLast(UpdatePrimitive):
    target: Node
    content: list[Node]

    def apply(self) -> None:
        _insert_children(self.target, self.content, len(self.target.children))


@dataclass
class InsertBefore(UpdatePrimitive):
    target: Node
    content: list[Node]

    def apply(self) -> None:
        parent = self.target.parent
        if parent is None:
            raise UpdateError("XUDY0027", "insert before target has no parent")
        _insert_children(parent, self.content, _child_index(self.target))


@dataclass
class InsertAfter(UpdatePrimitive):
    target: Node
    content: list[Node]

    def apply(self) -> None:
        parent = self.target.parent
        if parent is None:
            raise UpdateError("XUDY0027", "insert after target has no parent")
        _insert_children(parent, self.content, _child_index(self.target) + 1)


@dataclass
class DeleteNode(UpdatePrimitive):
    target: Node

    def apply(self) -> None:
        parent = self.target.parent
        if parent is None:
            return  # deleting a root: becomes detached, nothing to do
        if isinstance(self.target, AttributeNode):
            assert isinstance(parent, ElementNode)
            parent.attributes[:] = [
                a for a in parent.attributes if a is not self.target]
        else:
            parent.children[:] = [
                c for c in parent.children if c is not self.target]
        self.target.parent = None


@dataclass
class ReplaceNode(UpdatePrimitive):
    target: Node
    replacement: list[Node]

    def apply(self) -> None:
        parent = self.target.parent
        if parent is None:
            raise UpdateError("XUDY0009", "replace target has no parent")
        if isinstance(self.target, AttributeNode):
            assert isinstance(parent, ElementNode)
            index = next(
                i for i, a in enumerate(parent.attributes) if a is self.target)
            parent.attributes.pop(index)
            for offset, node in enumerate(self.replacement):
                if not isinstance(node, AttributeNode):
                    raise UpdateError(
                        "XUTY0011", "attribute may only be replaced by attributes")
                node.parent = parent
                parent.attributes.insert(index + offset, node)
            return
        index = _child_index(self.target)
        parent.children.pop(index)
        self.target.parent = None
        _insert_children(parent, self.replacement, index)


@dataclass
class ReplaceValue(UpdatePrimitive):
    target: Node
    value: str

    def apply(self) -> None:
        if isinstance(self.target, AttributeNode):
            self.target.value = self.value
            return
        if isinstance(self.target, TextNode):
            self.target.content = self.value
            return
        if isinstance(self.target, ElementNode):
            factory = NodeFactory()
            self.target.children.clear()
            if self.value:
                text = factory.text(self.value)
                text.parent = self.target
                self.target.children.append(text)
            return
        raise UpdateError("XUTY0008", "replace value target kind unsupported")


@dataclass
class RenameNode(UpdatePrimitive):
    target: Node
    new_name: str

    def apply(self) -> None:
        if isinstance(self.target, (ElementNode, AttributeNode)):
            self.target.rename(self.new_name)
            return
        raise UpdateError("XUTY0012", "rename target must be element or attribute")


@dataclass
class PutDocument(UpdatePrimitive):
    """fn:put() — store a document at a URI (data shipping write)."""

    target: Node
    uri: str
    store: Optional[Callable[[str, Node], None]] = None

    def apply(self) -> None:
        if self.store is None:
            raise UpdateError("FOUP0002", f"no document store for fn:put({self.uri!r})")
        node = self.target
        if not isinstance(node, DocumentNode):
            document = NodeFactory().document(self.uri)
            document.append(copy_tree(node))
            node = document
        self.store(self.uri, node)


@dataclass
class PendingUpdateList:
    """An ordered collection of update primitives (Δ in the paper)."""

    primitives: list[UpdatePrimitive] = field(default_factory=list)

    def add(self, primitive: UpdatePrimitive) -> None:
        self.primitives.append(primitive)

    def merge(self, other: "PendingUpdateList") -> None:
        """Union with another PUL (Δ ∪ Δ'), order preserved per-list."""
        self.primitives.extend(other.primitives)

    def __len__(self) -> int:
        return len(self.primitives)

    def __bool__(self) -> bool:
        return bool(self.primitives)


class _TreeState:
    """Per-tree bookkeeping of one :func:`apply_updates` run."""

    __slots__ = ("root", "index")

    def __init__(self, root: Node, index) -> None:
        self.root = root
        # The live StructuralIndex being patched in place, or None when
        # the tree has no fresh index (it will rebuild lazily) or a
        # patch failed / a full re-encode killed it.
        self.index = index


class _IncrementalApplier:
    """Applies primitives with O(change) re-encoding and in-place
    :class:`~repro.xdm.structural.StructuralIndex` patching.

    Each structural primitive mints order keys for exactly its splice
    region (gap fast path; region respread / full re-encode fallbacks)
    and splices the affected rows of the tree's live index.  Value-only
    primitives (replace value on attributes/text, rename) skip
    restamping entirely — their ``order_key``/``size``/``level`` stamps
    stay valid — and merely evict the value indexes they can invalidate.
    """

    def __init__(self) -> None:
        from repro.xdm import structural

        self._structural = structural
        self._trees: dict[int, _TreeState] = {}
        self._current: Optional[_TreeState] = None

    # -- plumbing ----------------------------------------------------------

    def _state(self, root: Node) -> _TreeState:
        state = self._trees.get(id(root))
        if state is None:
            index = root._sidx
            live = index is not None and not index.stale \
                and index.root is root
            state = _TreeState(root, index if live else None)
            self._trees[id(root)] = state
        self._current = state
        return state

    def _abandon(self, state: _TreeState) -> None:
        """A patch could not locate its splice point: stale-mark and let
        the next query rebuild (correctness over bookkeeping)."""
        if state.index is not None:
            state.index.stale = True
            state.index = None

    def apply(self, primitive: UpdatePrimitive) -> None:
        self._current = None
        try:
            self._dispatch(primitive)
        except Exception:
            # A primitive failed mid-flight (XQUF dynamic errors raise
            # after part of the splice happened): anything we patched so
            # far is consistent, but the failing splice is not — force a
            # rebuild of the touched tree's index.
            state = self._current
            if state is not None:
                self._abandon(state)
            raise

    def finalize(self) -> None:
        """Clear the stale bits the primitives' own mutators flipped:
        every mutation went through a successful patch, so each
        still-tracked index is consistent with its tree."""
        for state in self._trees.values():
            if state.index is not None:
                state.index.stale = False

    # -- primitive handlers ------------------------------------------------

    def _dispatch(self, primitive: UpdatePrimitive) -> None:
        if isinstance(primitive, (InsertInto, InsertFirst, InsertLast,
                                  InsertBefore, InsertAfter)):
            self._apply_insert(primitive)
        elif isinstance(primitive, ReplaceNode):
            self._apply_replace(primitive)
        elif isinstance(primitive, ReplaceValue):
            self._apply_replace_value(primitive)
        elif isinstance(primitive, RenameNode):
            self._apply_rename(primitive)
        elif isinstance(primitive, DeleteNode):
            self._apply_delete(primitive)
        elif isinstance(primitive, PutDocument):
            primitive.apply()
        else:
            # Unknown primitive kind: apply, then fall back to a full
            # re-encode of its tree (conservative).
            root = primitive.target.root()
            state = self._state(root)
            primitive.apply()
            self._structural.reencode_tree(state.root)
            state.index = None

    def _split_content(self, content: list[Node],
                       ) -> tuple[list[Node], list[Node]]:
        roots = [n for n in content if not isinstance(n, AttributeNode)]
        attrs = [n for n in content if isinstance(n, AttributeNode)]
        return roots, attrs

    def _splice(self, state: _TreeState, parent: Node,
                roots: list[Node], attrs: list[Node]) -> None:
        """Mint keys for freshly inserted content and patch the index."""
        structural = self._structural
        outcome = "subtree"
        if roots:
            outcome = structural.reencode_spliced_children(parent, roots)
        if attrs and outcome != "full":
            outcome = structural.reencode_spliced_attributes(parent, attrs)
        if outcome == "full":
            # reencode_tree already stale-marked the index.
            state.index = None
            return
        if state.index is not None:
            ok = state.index.patch_insert(parent, roots) if roots else True
            if ok and attrs:
                ok = state.index.patch_attributes(parent, attrs)
            if not ok:
                self._abandon(state)

    def _apply_insert(self, primitive: UpdatePrimitive) -> None:
        target = primitive.target
        if isinstance(primitive, (InsertBefore, InsertAfter)):
            parent = target.parent
        else:
            parent = target
        if parent is None:
            primitive.apply()  # raises the proper XUDY0027
            return
        state = self._state(target.root())
        primitive.apply()
        roots, attrs = self._split_content(primitive.content)
        self._splice(state, parent, roots, attrs)

    def _apply_replace(self, primitive: ReplaceNode) -> None:
        target = primitive.target
        parent = target.parent
        if parent is None:
            primitive.apply()  # raises XUDY0009
            return
        state = self._state(target.root())
        if isinstance(target, AttributeNode):
            primitive.apply()
            self._structural.rekey_detached(target)
            outcome = self._structural.reencode_spliced_attributes(
                parent, list(primitive.replacement))
            if outcome == "full":
                state.index = None
            elif state.index is not None:
                if not state.index.patch_attributes(
                        parent, primitive.replacement):
                    self._abandon(state)
            return
        if state.index is not None:
            if not state.index.patch_delete(target):
                self._abandon(state)
        primitive.apply()
        self._structural.rekey_detached(target)
        roots, attrs = self._split_content(primitive.replacement)
        self._splice(state, parent, roots, attrs)

    def _apply_replace_value(self, primitive: ReplaceValue) -> None:
        target = primitive.target
        if isinstance(target, ElementNode):
            # Splices a fresh-factory text node in place of the old
            # children — a structural change like any replace.
            state = self._state(target.root())
            old_children = list(target.children)
            if state.index is not None:
                for child in old_children:
                    if not state.index.patch_delete(child):
                        self._abandon(state)
                        break
            primitive.apply()
            for child in old_children:
                self._structural.rekey_detached(child)
            self._splice(state, target, list(target.children), [])
            return
        # Attribute / text target: value-only — order keys, sizes and
        # index rows all stay valid; no restamp at all.
        state = self._state(target.root())
        primitive.apply()
        if state.index is not None:
            if not state.index.patch_content(target):
                self._abandon(state)

    def _apply_rename(self, primitive: RenameNode) -> None:
        target = primitive.target
        state = self._state(target.root())
        old_local = getattr(target, "local_name", None)
        primitive.apply()
        if state.index is not None:
            if not state.index.patch_rename(target, old_local):
                self._abandon(state)

    def _apply_delete(self, primitive: DeleteNode) -> None:
        target = primitive.target
        parent = target.parent
        if parent is None:
            primitive.apply()  # detached root: no-op
            return
        state = self._state(target.root())
        if isinstance(target, AttributeNode):
            primitive.apply()
            self._structural.rekey_detached(target)
            if state.index is not None:
                if not state.index.patch_attributes(parent):
                    self._abandon(state)
            if target._sidx is not None:
                target._sidx = None
            return
        # Tree-node delete: the *remaining* keys need no work at all —
        # freed serials simply become gaps.  The detached subtree is
        # rekeyed under a fresh doc id (O(detached)) so a held
        # reference can never collide with a later in-gap mint.
        if state.index is not None:
            if not state.index.patch_delete(target):
                self._abandon(state)
        primitive.apply()
        self._structural.rekey_detached(target)


def apply_updates(pul: PendingUpdateList, *,
                  incremental: bool = True) -> None:
    """applyUpdates(Δ): carry through all changes in the list.

    Deletions are applied last (after inserts/replaces), following the
    XQUF semantics that the primitives operate against the pre-update
    tree as far as observable.

    With ``incremental`` (the default), every primitive re-encodes only
    its splice region on the gapped order-key plane — inserted content
    mints keys inside the gap between its document-order neighbours,
    deletes need no key work, value/rename updates skip restamping
    entirely — and the tree's :class:`StructuralIndex` is patched in
    place (rows spliced, tag partitions shifted, covered value indexes
    evicted) instead of stale-marked.  ``incremental=False`` restores
    the historical behaviour — a full
    :func:`~repro.xdm.structural.reencode_tree` per structurally
    mutated tree plus index stale-marking — and is kept as the
    benchmark ablation (``bench_incremental_updates``).
    """
    if not incremental:
        _apply_updates_full(pul)
        return
    applier = _IncrementalApplier()
    deletions = [p for p in pul.primitives if isinstance(p, DeleteNode)]
    for primitive in pul.primitives:
        if not isinstance(primitive, DeleteNode):
            applier.apply(primitive)
    for primitive in deletions:
        applier.apply(primitive)
    applier.finalize()


def _apply_updates_full(pul: PendingUpdateList) -> None:
    """The pre-gap update path: apply, then restamp every structurally
    mutated tree densely and stale-mark its index (the ablation
    baseline; also exercised by equivalence tests)."""
    from repro.xdm.structural import invalidate_structural_index, reencode_tree

    structural = (InsertInto, InsertFirst, InsertLast, InsertBefore,
                  InsertAfter, DeleteNode, ReplaceNode)

    def is_structural(primitive: UpdatePrimitive) -> bool:
        if isinstance(primitive, structural):
            return True
        # ReplaceValue on an *element* splices in a fresh-factory text
        # node — a structural change needing re-encoding like any insert.
        return isinstance(primitive, ReplaceValue) and \
            isinstance(primitive.target, ElementNode)

    # Roots must be resolved *before* applying: a deletion detaches its
    # target, and the tree it was removed from is the one to re-encode.
    mutated_roots: dict[int, Node] = {}
    for primitive in pul.primitives:
        if is_structural(primitive):
            root = primitive.target.root()
            mutated_roots[id(root)] = root
    deletions = [p for p in pul.primitives if isinstance(p, DeleteNode)]
    for primitive in pul.primitives:
        if not isinstance(primitive, DeleteNode):
            primitive.apply()
        if not is_structural(primitive):
            invalidate_structural_index(primitive.target)
    for primitive in deletions:
        primitive.apply()
    for root in mutated_roots.values():
        reencode_tree(root, stride=1)
