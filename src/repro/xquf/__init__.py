"""XQuery Update Facility (XQUF) — pending update lists and apply.

The paper's update semantics (section 2.3) hinge on the XQUF execution
model: updating expressions do not mutate anything during evaluation;
they emit *update primitives* into a pending update list (PUL).  Only
``applyUpdates(Δ)`` carries the changes through — immediately after each
XRPC request under rule R_Fu, or deferred to 2PC commit under rule
R'_Fu.
"""

from repro.xquf.pul import (
    PendingUpdateList,
    UpdatePrimitive,
    InsertInto,
    InsertFirst,
    InsertLast,
    InsertBefore,
    InsertAfter,
    DeleteNode,
    ReplaceNode,
    ReplaceValue,
    RenameNode,
    PutDocument,
    apply_updates,
)

__all__ = [
    "PendingUpdateList",
    "UpdatePrimitive",
    "InsertInto",
    "InsertFirst",
    "InsertLast",
    "InsertBefore",
    "InsertAfter",
    "DeleteNode",
    "ReplaceNode",
    "ReplaceValue",
    "RenameNode",
    "PutDocument",
    "apply_updates",
]
