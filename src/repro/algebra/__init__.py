"""Relational algebra over iter|pos|item tables (Table 1 of the paper).

MonetDB/XQuery represents every XQuery sequence as a relational table
with schema ``pos|item`` (``iter|pos|item`` once loop-lifted), and the
Pathfinder compiler emits plans over a vanilla relational algebra.  This
package implements that algebra:

========  =====================================================
σ         select rows where a boolean column is true
π         project + rename (no duplicate removal)
δ         duplicate elimination
∪         disjoint union
⋈         equi-join
ρ         row numbering (DENSE_RANK), optional partitioning
table     literal table
========  =====================================================

plus the two Pathfinder helpers every real plan needs: ``attach``
(constant column) and ``fun`` (row-wise computed column).
"""

from repro.algebra.table import Table

__all__ = ["Table"]
