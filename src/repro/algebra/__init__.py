"""Relational algebra over iter|pos|item tables (Table 1 of the paper).

MonetDB/XQuery represents every XQuery sequence as a relational table
with schema ``pos|item`` (``iter|pos|item`` once loop-lifted), and the
Pathfinder compiler emits plans over a vanilla relational algebra.  This
package implements that algebra:

========  =====================================================
σ         select rows where a boolean column is true
π         project + rename (no duplicate removal)
δ         duplicate elimination
∪         disjoint union
⋈         equi-join
ρ         row numbering (DENSE_RANK), optional partitioning
table     literal table
========  =====================================================

plus the two Pathfinder helpers every real plan needs: ``attach``
(constant column) and ``fun`` (row-wise computed column).

:mod:`repro.algebra.paths` adds the XPath-accelerator axis-step
operator: path steps over ``iter|pos|item`` node tables evaluate as
staircase-pruned window scans over the structural index columns.
"""

from repro.algebra.table import Table
from repro.algebra.paths import LIFTED_AXES, axis_step

__all__ = ["Table", "LIFTED_AXES", "axis_step"]
