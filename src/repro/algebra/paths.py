"""Axis-step operators over ``iter|pos|item`` node tables.

This is the relational pushdown the ROADMAP asks for: a path step in a
loop-lifted plan evaluates as window predicates over the per-tree
:class:`~repro.xdm.structural.StructuralIndex` columns (descendant:
``pre in (pre, pre+size]``; child: descendant ∧ ``level = level+1``,
realised as the size-skipping scan; attribute via the separate attribute
table; name tests via the tag partition) instead of per-node tree walks.

The staircase-join core itself lives in
:func:`repro.xdm.structural.axis_window_scan` — one implementation
shared with the interpreter's accelerated axis evaluation — so the
output of every step is duplicate-free and document-ordered *by
construction*; the operator only re-derives the dense ``pos`` column
per iteration.
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.algebra.table import Table
from repro.xdm.nodes import AttributeNode, Node
from repro.xdm.sequence import document_order_sort
from repro.xdm.structural import (
    BATCHED_AXES,
    REVERSE_AXES,
    axis_scan_batched,
    axis_window_scan,
    split_context,
    structural_index,
    tree_groups,
)
from repro.xquery.evaluator import axis_value_index, positional_spec_keep

__all__ = [
    "LIFTED_AXES",
    "REVERSE_AXES",
    "axis_step",
    "contains_filter",
    "equality_probe_step",
    "merge_exploded_contexts",
    "positional_filter",
]

#: Axes the algebra layer evaluates as window scans — since the lifted
#: core closed, *every* XPath axis: the downward axes, ``parent``/
#: ``ancestor(-or-self)`` over the index's owner chain, ``following``/
#: ``preceding`` as staircase boundary windows, and the sibling axes as
#: parent-window size-skips.
LIFTED_AXES = BATCHED_AXES


def axis_step(table: Table, axis: str, matches: Callable[[Node], bool],
              local_name: Optional[str] = None,
              match_all: bool = False,
              limit: Optional[int] = None) -> Table:
    """Map an ``iter|pos|item`` node table through one axis step.

    Every iteration's context sequence becomes a staircase-pruned window
    scan over its trees' pre/size/level columns; the result rows carry a
    fresh dense ``pos`` per iteration and are emitted in iteration order.

    Parameters
    ----------
    table:
        ``iter|pos|item`` relation whose items are all nodes.
    axis:
        One of :data:`LIFTED_AXES`.
    matches:
        Node-test predicate for candidates (see
        :func:`repro.xquery.evaluator.node_test_matches`).
    local_name:
        Non-wildcard element name test — scans the tag partition.
    match_all:
        The test is ``node()``; skip per-candidate filtering.
    limit:
        Keep only each iteration's first *limit* matches in axis order
        (the early-exit for a leading positional ``[n]`` predicate).
        Applied on the batched single-context path only — the general
        path returns the full window, which the positional rank filter
        trims to the identical result.

    Raises
    ------
    ValueError:
        Unsupported axis, or a non-node item in the context (callers
        translate this into their fallback signal).
    """
    if axis not in LIFTED_AXES:
        raise ValueError(f"axis {axis} is not lifted")
    iter_index = table.col("iter")
    item_index = table.col("item")
    # Group rows by iteration, preserving the table's (typically already
    # iter-sorted) order; only pay a sort when input arrives shuffled.
    by_iter: dict = {}
    ascending = True
    previous = None
    for row in table.rows:
        it = row[iter_index]
        item = row[item_index]
        if not isinstance(item, Node):
            raise ValueError("path step over a non-node item")
        members = by_iter.get(it)
        if members is None:
            by_iter[it] = [item]
            if previous is not None and it < previous:
                ascending = False
            previous = it
        else:
            members.append(item)
    iters = list(by_iter) if ascending else sorted(by_iter)
    rows: list[tuple] = []
    # Batch accumulator: consecutive iterations whose context is a
    # single tree node of the same tree — the shape every for-lifted
    # step produces — scan in ONE set-at-a-time pass instead of paying
    # per-iteration grouping/pruning/dispatch overhead.
    batchable = axis in BATCHED_AXES
    pending: list[tuple] = []
    pending_index = None

    def flush() -> None:
        nonlocal pending_index
        if not pending:
            return
        scanned = axis_scan_batched(pending_index, axis, pending,
                                    matches=matches, local_name=local_name,
                                    match_all=match_all, limit=limit)
        last = None
        pos = 0
        for tag, node in scanned:
            if tag != last:
                last = tag
                pos = 0
            pos += 1
            rows.append((tag, pos, node))
        pending.clear()
        pending_index = None

    for it in iters:
        members = by_iter[it]
        if batchable and len(members) == 1 \
                and not isinstance(members[0], AttributeNode):
            node = members[0]
            index = structural_index(node.root())
            if pending_index is not None and index is not pending_index:
                flush()
            pending_index = index
            pending.append((it, index.rank_of(node)))
            continue
        flush()
        # General path: multi-node (or attribute) contexts go through
        # tree grouping, context splitting and staircase pruning.
        results: list[Node] = []
        for root, group in tree_groups(members):
            index = structural_index(root)
            ctx_pres, attr_members = split_context(index, group)
            results.extend(axis_window_scan(
                index, axis, ctx_pres, attr_members, matches=matches,
                local_name=local_name, match_all=match_all))
        for pos, node in enumerate(results, start=1):
            rows.append((it, pos, node))
    flush()
    return Table(("iter", "pos", "item"), rows)


def contains_filter(table: Table, needle: str) -> Table:
    """``[contains(., "lit")]`` as a posting-list prefilter + verify.

    The keyword-search twin of the equality probe: instead of computing
    every candidate's string value and substring-testing it (the
    interpreter's per-candidate cost — ``string_value`` walks the whole
    subtree), consult the tree's lazily built
    :class:`~repro.search.index.TermIndex`.  The needle's token
    constraints are joined against the term postings over each
    candidate's ``[pre, pre + size]`` serial window (two bisects per
    token), and only the surviving candidates pay the exact
    (case-sensitive) substring verify — so results stay byte-identical
    to the interpreter's ``fn:contains`` while non-matching subtrees
    are dismissed without touching their text.

    Rows keep document order within each iteration; ``pos`` is
    re-derived dense per iteration, exactly like the other predicates.
    """
    from repro.search.index import term_index_for
    from repro.search.stats import SEARCH_STATS

    iter_index = table.col("iter")
    item_index = table.col("item")
    plans: dict[int, object] = {}
    rows: list[tuple] = []
    current_iter = None
    pos = 0
    hits = 0
    for row in table.rows:
        item = row[item_index]
        if isinstance(item, Node):
            root = item.root()
            plan = plans.get(id(root))
            if plan is None:
                plan = term_index_for(root).contains_plan(needle)
                plans[id(root)] = plan
            if not plan.candidate(item):
                continue
            if needle not in item.string_value():
                continue
        else:
            # Atomized/constructed items: plain row-wise containment.
            value = item.string_value() \
                if hasattr(item, "string_value") else str(item)
            if needle not in value:
                continue
        it = row[iter_index]
        if it != current_iter:
            current_iter = it
            pos = 0
        pos += 1
        hits += 1
        rows.append((it, pos, item))
    SEARCH_STATS.bump("search_queries")
    if hits:
        SEARCH_STATS.bump("postings_hits", hits)
    return Table(("iter", "pos", "item"), rows)


def positional_filter(table: Table, spec: tuple,
                      reverse: bool = False) -> Table:
    """Positional predicate as a rank computation over per-iteration
    doc-ordered windows.

    Each iteration's rows form one context window (the compiler
    explodes multi-node contexts so one iteration is one context
    node).  The row's rank in the window is its position — counted
    from the window's *end* for reverse axes, where XPath numbers
    nearest-first — and *spec* (see
    :func:`repro.xquery.evaluator.positional_predicate_spec`) decides
    which ranks survive.  Rows stay in document order; ``pos`` is
    re-derived dense per iteration.
    """
    iter_index = table.col("iter")
    item_index = table.col("item")
    by_iter: dict = {}
    for row in table.rows:
        by_iter.setdefault(row[iter_index], []).append(row[item_index])
    rows: list[tuple] = []
    for it, window in by_iter.items():
        count = len(window)
        pos = 0
        for rank, item in enumerate(window, start=1):
            position = count - rank + 1 if reverse else rank
            if positional_spec_keep(spec, position, count):
                pos += 1
                rows.append((it, pos, item))
    return Table(("iter", "pos", "item"), rows)


def merge_exploded_contexts(table: Table, mapping: Table) -> Table:
    """Undo a per-context explosion: map inner iterations back to their
    outer iteration and re-establish *step* semantics — the per-context
    results of one outer iteration union into a duplicate-free,
    document-ordered sequence (unlike a FLWOR unwind, which
    concatenates).
    """
    joined = table.join(mapping, "iter", "inner")
    outer_index = joined.col("outer")
    item_index = joined.col("item")
    by_outer: dict = {}
    order: list = []
    for row in joined.rows:
        outer = row[outer_index]
        members = by_outer.get(outer)
        if members is None:
            by_outer[outer] = [row[item_index]]
            order.append(outer)
        else:
            members.append(row[item_index])
    order.sort()
    rows: list[tuple] = []
    for outer in order:
        for pos, node in enumerate(document_order_sort(by_outer[outer]),
                                   start=1):
            rows.append((outer, pos, node))
    return Table(("iter", "pos", "item"), rows)


def equality_probe_step(table: Table, axis: str, node_test,
                        key_path: tuple,
                        probes_by_iter: dict[int, list[str]],
                        static) -> Optional[Table]:
    """Axis step + equality predicate as one hash-join probe.

    The relational form of ``axis::name[path = value]``: instead of
    scanning the axis window and re-evaluating the predicate per
    candidate (a per-iteration re-scan), probe the per-anchor value
    index the interpreter already builds
    (:func:`repro.xquery.evaluator.axis_value_index`, cached on the
    tree's ``StructuralIndex``) with each iteration's probe strings.
    Matches come back in document order, duplicate handling identical to
    the interpreter's indexed step.

    Parameters
    ----------
    table:
        ``iter|pos|item`` context relation.
    axis:
        ``child`` or ``descendant`` (the indexable axes).
    node_test:
        Non-wildcard :class:`~repro.xquery.xast.NameTest` of the step.
    key_path:
        Hashable predicate key path from
        ``_indexable_predicate_key_path``.
    probes_by_iter:
        Probe strings per iteration (an absent iteration probes
        nothing: ``[x = ()]`` keeps no candidates).
    static:
        Static context for name-test namespace resolution.

    Returns ``None`` when a context shape the probe cannot serve
    appears (multi-node or attribute contexts, non-node items) —
    callers fall back to the scan-then-filter pipeline.
    """
    iter_index = table.col("iter")
    item_index = table.col("item")
    by_iter: dict = {}
    ascending = True
    previous = None
    for row in table.rows:
        it = row[iter_index]
        item = row[item_index]
        if not isinstance(item, Node) or isinstance(item, AttributeNode):
            return None
        members = by_iter.get(it)
        if members is None:
            by_iter[it] = [item]
            if previous is not None and it < previous:
                ascending = False
            previous = it
        else:
            return None  # multi-node context: staircase scan handles it
    rows: list[tuple] = []
    for it in (by_iter if ascending else sorted(by_iter)):
        probes = probes_by_iter.get(it)
        if not probes:
            continue
        [anchor] = by_iter[it]
        index = axis_value_index(anchor, axis, node_test, key_path, static)
        matches: list[Node] = []
        for value in probes:
            matches.extend(index.get(value, ()))
        for pos, node in enumerate(document_order_sort(matches), start=1):
            rows.append((it, pos, node))
    return Table(("iter", "pos", "item"), rows)
