"""The Table data structure and its algebra operators.

Rows are Python tuples; ``item`` cells hold XDM items (AtomicValue or
Node) or plain Python values.  Operators return new tables — the algebra
is side-effect free, like the relational plans Pathfinder emits.
"""

from __future__ import annotations

from typing import Any, Callable, Iterable, Optional, Sequence

from repro.xdm.atomic import AtomicValue


def _cell_key(value: Any) -> Any:
    """Hashable ordering/grouping key for a cell."""
    if type(value) is int:  # iter/pos columns dominate; skip the checks
        return value
    if isinstance(value, AtomicValue):
        if value.is_numeric:
            return ("num", float(value.value))
        return (value.type.name, value.string_value())
    return value


class Table:
    """An ordered relation with named columns.

    Although relational semantics are set-oriented, Pathfinder plans
    maintain explicit order columns (``pos``) and the physical MonetDB
    tables are ordered; we keep rows in insertion order and expose
    :meth:`sort` for explicit ordering.
    """

    __slots__ = ("columns", "rows", "_index")

    def __init__(self, columns: Sequence[str],
                 rows: Optional[Iterable[tuple]] = None) -> None:
        self.columns = tuple(columns)
        self.rows: list[tuple] = [tuple(row) for row in (rows or [])]
        self._index = {name: i for i, name in enumerate(self.columns)}
        for row in self.rows:
            if len(row) != len(self.columns):
                raise ValueError(
                    f"row width {len(row)} != column count {len(self.columns)}")

    # -- helpers ------------------------------------------------------------

    def col(self, name: str) -> int:
        try:
            return self._index[name]
        except KeyError:
            raise KeyError(f"no column {name!r} in {self.columns}")

    def column_values(self, name: str) -> list:
        index = self.col(name)
        return [row[index] for row in self.rows]

    def __len__(self) -> int:
        return len(self.rows)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Table):
            return NotImplemented
        return self.columns == other.columns and self.rows == other.rows

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        header = "|".join(self.columns)
        body = "\n".join(str(row) for row in self.rows[:20])
        return f"Table[{header}]\n{body}"

    # -- Table 1 operators ------------------------------------------------------

    def select(self, column: str) -> "Table":
        """σ_a: keep rows whose boolean column *a* is true."""
        index = self.col(column)
        return Table(self.columns, [r for r in self.rows if r[index]])

    def select_eq(self, column: str, value: Any) -> "Table":
        """Convenience fusion of fun(=)+σ (constant selection)."""
        index = self.col(column)
        key = _cell_key(value)
        return Table(self.columns,
                     [r for r in self.rows if _cell_key(r[index]) == key])

    def project(self, *specs: str) -> "Table":
        """π: project and possibly rename columns.

        Each spec is ``"name"`` or ``"new:old"`` (rename old → new).
        No duplicate elimination, per Table 1.
        """
        names: list[str] = []
        indices: list[int] = []
        for spec in specs:
            if ":" in spec:
                new, old = spec.split(":", 1)
            else:
                new = old = spec
            names.append(new)
            indices.append(self.col(old))
        return Table(names, [tuple(row[i] for i in indices)
                             for row in self.rows])

    def distinct(self) -> "Table":
        """δ: duplicate elimination (preserving first-seen order)."""
        seen: set = set()
        rows: list[tuple] = []
        for row in self.rows:
            key = tuple(_cell_key(cell) for cell in row)
            if key not in seen:
                seen.add(key)
                rows.append(row)
        return Table(self.columns, rows)

    def union(self, other: "Table") -> "Table":
        """∪ (disjoint union): same schema, concatenated rows."""
        if self.columns != other.columns:
            raise ValueError(
                f"union schema mismatch: {self.columns} vs {other.columns}")
        return Table(self.columns, self.rows + other.rows)

    def join(self, other: "Table", left_on: str, right_on: str) -> "Table":
        """⋈: equi-join; right-side join column is dropped, clashing
        right columns get a ``'``-suffix."""
        left_index = self.col(left_on)
        right_index = other.col(right_on)
        hash_side: dict[Any, list[tuple]] = {}
        for row in other.rows:
            hash_side.setdefault(_cell_key(row[right_index]), []).append(row)
        out_columns = list(self.columns)
        keep_right = [i for i in range(len(other.columns)) if i != right_index]
        for i in keep_right:
            name = other.columns[i]
            out_columns.append(name if name not in out_columns else name + "'")
        rows: list[tuple] = []
        for row in self.rows:
            for match in hash_side.get(_cell_key(row[left_index]), ()):
                rows.append(row + tuple(match[i] for i in keep_right))
        return Table(out_columns, rows)

    def rownum(self, new_column: str, order_by: Sequence[str],
               partition_by: Optional[str] = None) -> "Table":
        """ρ: dense numbering 1..n by *order_by* within each partition."""
        order_indices = [self.col(name) for name in order_by]
        partition_index = self.col(partition_by) if partition_by else None
        decorated = sorted(
            range(len(self.rows)),
            key=lambda i: tuple(_cell_key(self.rows[i][j])
                                for j in order_indices))
        counters: dict[Any, int] = {}
        numbers = [0] * len(self.rows)
        for row_position in decorated:
            row = self.rows[row_position]
            partition = (_cell_key(row[partition_index])
                         if partition_index is not None else None)
            counters[partition] = counters.get(partition, 0) + 1
            numbers[row_position] = counters[partition]
        return Table(self.columns + (new_column,),
                     [row + (numbers[i],) for i, row in enumerate(self.rows)])

    @classmethod
    def literal(cls, columns: Sequence[str],
                rows: Iterable[tuple]) -> "Table":
        """Literal table constructor."""
        return cls(columns, rows)

    # -- Pathfinder helpers ------------------------------------------------------

    def attach(self, column: str, value: Any) -> "Table":
        """Attach a constant column."""
        return Table(self.columns + (column,),
                     [row + (value,) for row in self.rows])

    def fun(self, column: str, func: Callable[..., Any],
            *input_columns: str) -> "Table":
        """Row-wise computed column."""
        indices = [self.col(name) for name in input_columns]
        return Table(
            self.columns + (column,),
            [row + (func(*(row[i] for i in indices)),) for row in self.rows])

    def sort(self, *order_by: str) -> "Table":
        """Explicit (stable) reordering by the given columns."""
        indices = [self.col(name) for name in order_by]
        return Table(self.columns, sorted(
            self.rows,
            key=lambda row: tuple(_cell_key(row[i]) for i in indices)))

    def drop(self, *columns: str) -> "Table":
        keep = [name for name in self.columns if name not in columns]
        return self.project(*keep)
