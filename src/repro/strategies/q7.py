"""Q7 and its distributed rewrites (section 5 of the paper)."""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.workloads.modules import FUNCTIONS_B_LOCATION

if TYPE_CHECKING:  # pragma: no cover
    from repro.rpc.peer import XRPCPeer

STRATEGY_NAMES = (
    "data shipping",
    "predicate push-down",
    "execution relocation",
    "distributed semi-join",
)


def query_data_shipping(b_host: str) -> str:
    """Q7 as written: peer A pulls auctions.xml in full."""
    return f"""
    for $p in doc("persons.xml")//person,
        $ca in doc("xrpc://{b_host}/auctions.xml")//closed_auction
    where $p/@id = $ca/buyer/@person
    return <result>{{$p, $ca/annotation}}</result>
    """


def query_predicate_pushdown(b_host: str) -> str:
    """Q7_1: push the //closed_auction predicate into peer B."""
    return f"""
    import module namespace b="functions_b" at "{FUNCTIONS_B_LOCATION}";
    for $p in doc("persons.xml")//person,
        $ca in execute at {{"xrpc://{b_host}"}} {{ b:Q_B1() }}
    where $p/@id = $ca/buyer/@person
    return <result>{{$p, $ca/annotation}}</result>
    """


def query_execution_relocation(b_host: str) -> str:
    """Relocate all execution onto peer B (which fetches persons.xml)."""
    return f"""
    import module namespace b="functions_b" at "{FUNCTIONS_B_LOCATION}";
    execute at {{"xrpc://{b_host}"}} {{ b:Q_B2() }}
    """


def query_semijoin(b_host: str) -> str:
    """Q7_3: the classical distributed semi-join, loop-dependent param."""
    return f"""
    import module namespace b="functions_b" at "{FUNCTIONS_B_LOCATION}";
    for $p in doc("persons.xml")//person
    let $ca := execute at {{"xrpc://{b_host}"}} {{ b:Q_B3(string($p/@id)) }}
    return if (empty($ca)) then ()
           else <result>{{$p, $ca/annotation}}</result>
    """


_BUILDERS = {
    "data shipping": query_data_shipping,
    "predicate push-down": query_predicate_pushdown,
    "execution relocation": query_execution_relocation,
    "distributed semi-join": query_semijoin,
}


def build_strategy_query(strategy: str, b_host: str) -> str:
    """Query text for one of :data:`STRATEGY_NAMES`."""
    try:
        builder = _BUILDERS[strategy]
    except KeyError:
        raise ValueError(
            f"unknown strategy {strategy!r}; pick one of {STRATEGY_NAMES}")
    return builder(b_host)


@dataclass
class StrategyRun:
    """One strategy execution with its measurements."""

    strategy: str
    results: int                # number of <result> elements (paper: 6)
    total_seconds: float        # originating peer wall time
    local_cpu_seconds: float    # peer A CPU (the paper's "MonetDB Time")
    remote_seconds: float       # total - local (the paper's "Saxon Time")
    messages_sent: int
    bytes_shipped: int


def run_strategy(strategy: str, peer_a: "XRPCPeer", b_host: str,
                 network=None, remote_seconds_fn=None) -> StrategyRun:
    """Execute one strategy from peer A and collect the Table 4 row.

    The split follows the paper: "Saxon Time was measured by subtracting
    MonetDB time from total, such that it also included communication".
    Pass ``remote_seconds_fn`` (a zero-argument callable returning the
    remote peer's accumulated busy seconds) to measure the remote share
    directly; local time is then total minus remote.
    """
    query = build_strategy_query(strategy, b_host)
    bytes_before = 0
    if network is not None:
        bytes_before = network.bytes_sent + network.bytes_received
    remote_before = remote_seconds_fn() if remote_seconds_fn else 0.0

    wall_started = time.process_time()
    outcome = peer_a.execute_query(query)
    total = time.process_time() - wall_started

    remote = (remote_seconds_fn() - remote_before) if remote_seconds_fn else 0.0
    bytes_shipped = 0
    if network is not None:
        bytes_shipped = (network.bytes_sent + network.bytes_received
                         - bytes_before)
    return StrategyRun(
        strategy=strategy,
        results=len(outcome.sequence),
        total_seconds=total,
        local_cpu_seconds=max(total - remote, 0.0),
        remote_seconds=remote,
        messages_sent=outcome.messages_sent,
        bytes_shipped=bytes_shipped,
    )
