"""Distributed query execution strategies (section 5 of the paper).

Query Q7 joins persons (peer A) with closed auctions (peer B).  The
paper shows four ways to express its distribution in XRPC; this package
provides the exact rewritten query texts and a uniform runner:

* **data shipping** — Q7 as written: ``doc("xrpc://B/auctions.xml")``
  ships the whole remote document;
* **predicate push-down** — Q7_1: function ``b:Q_B1()`` returns only the
  ``closed_auction`` nodes;
* **execution relocation** — ``b:Q_B2()`` moves the entire join (and the
  fetch of persons.xml) to peer B;
* **distributed semi-join** — Q7_3: ``b:Q_B3($pid)`` is called once per
  person with a loop-dependent parameter; Bulk RPC ships all 250 probes
  in one message.
"""

from repro.strategies.q7 import (
    STRATEGY_NAMES,
    StrategyRun,
    query_data_shipping,
    query_predicate_pushdown,
    query_execution_relocation,
    query_semijoin,
    build_strategy_query,
    run_strategy,
)

__all__ = [
    "STRATEGY_NAMES",
    "StrategyRun",
    "query_data_shipping",
    "query_predicate_pushdown",
    "query_execution_relocation",
    "query_semijoin",
    "build_strategy_query",
    "run_strategy",
]
