"""XQuery Data Model (XDM) implementation.

This package provides the data model of XQuery 1.0 / XPath 2.0 as used by
the XRPC paper: atomic values annotated with XML Schema types, the seven
node kinds with node identity and document order, and sequence operations
(atomization, effective boolean value, deep-equal).

Sequences are represented as plain Python lists of items; an *item* is
either an :class:`~repro.xdm.atomic.AtomicValue` or a
:class:`~repro.xdm.nodes.Node`.
"""

from repro.xdm.types import XSType, xs, UNTYPED_ATOMIC, type_by_name
from repro.xdm.atomic import AtomicValue, untyped, string, integer, decimal, double, boolean
from repro.xdm.nodes import (
    Node,
    DocumentNode,
    ElementNode,
    AttributeNode,
    TextNode,
    CommentNode,
    ProcessingInstructionNode,
    NodeFactory,
    copy_tree,
)
from repro.xdm.nodes import KEY_STRIDE
from repro.xdm.structural import (
    ENCODING_STATS,
    EncodingStats,
    StructuralIndex,
    invalidate_structural_index,
    reencode_spliced_attributes,
    reencode_spliced_children,
    reencode_tree,
    rekey_detached,
    structural_index,
)
from repro.xdm.sequence import (
    atomize,
    effective_boolean_value,
    string_value,
    deep_equal,
    is_node,
    is_atomic,
    singleton,
    document_order_sort,
)

__all__ = [
    "XSType",
    "xs",
    "UNTYPED_ATOMIC",
    "type_by_name",
    "AtomicValue",
    "untyped",
    "string",
    "integer",
    "decimal",
    "double",
    "boolean",
    "Node",
    "DocumentNode",
    "ElementNode",
    "AttributeNode",
    "TextNode",
    "CommentNode",
    "ProcessingInstructionNode",
    "NodeFactory",
    "copy_tree",
    "KEY_STRIDE",
    "ENCODING_STATS",
    "EncodingStats",
    "StructuralIndex",
    "structural_index",
    "invalidate_structural_index",
    "reencode_spliced_attributes",
    "reencode_spliced_children",
    "reencode_tree",
    "rekey_detached",
    "atomize",
    "effective_boolean_value",
    "string_value",
    "deep_equal",
    "is_node",
    "is_atomic",
    "singleton",
    "document_order_sort",
]
