"""XPath-accelerator structural encoding and per-tree index.

This module adds the storage-layer machinery of the *XPath accelerator*
(Grust's pre/size/level encoding, the representation Pathfinder compiles
paths against inside MonetDB/XQuery):

* every node carries a ``pre / size / level`` stamp — ``pre`` is the
  node's document-order serial (``order_key[1]``), ``size`` the number of
  serials issued inside its subtree (attributes included), ``level`` its
  construction depth;
* per tree root, a lazily built :class:`StructuralIndex` materialises the
  pre-ordered node array plus subtree extents and depths, and partitions
  element pres by tag name — the columns a window scan needs to answer
  ``descendant`` (``pre in (pre, pre+size]``), ``following``
  (``pre > pre+size``) and friends without walking the tree;
* :func:`reencode_tree` restamps a tree after structural mutation (XQUF
  PUL application), restoring the dense-serial invariant the window
  arithmetic and global document order rely on.

Index invalidation is O(1) at mutation time: building an index stamps
every tree node with a back-reference (``_sidx``); the mutating entry
points (``append``/``set_attribute``/PUL primitives/``n2s`` adoption)
flip the referenced index's ``stale`` bit when such a stamp is present.
"""

from __future__ import annotations

from bisect import bisect_left, bisect_right
from typing import Iterator, Optional

from repro.xdm.nodes import ElementNode, Node, _next_doc_id


class StructuralIndex:
    """Pre/size/level columns of one tree, in document order.

    ``nodes[pre]`` is the tree node with positional pre rank ``pre``
    (attributes are not ranked; they are reached through their owner
    element, matching the accelerator's separate attribute table).
    ``sizes[pre]`` is the number of tree nodes in the subtree below it,
    so the descendant window of ``pre`` is ``(pre, pre + sizes[pre]]``.
    ``levels[pre]`` is the depth below the tree root.
    """

    __slots__ = ("root", "generation", "stale", "nodes", "sizes", "levels",
                 "pre_of", "_by_name", "value_indexes")

    def __init__(self, root: Node, generation: int) -> None:
        self.root = root
        self.generation = generation
        self.stale = False
        # Equality-predicate value indexes (the evaluator's hash-join
        # probes) live on the index so tree mutation drops them with it.
        self.value_indexes: dict = {}
        self._by_name: Optional[dict[str, list[int]]] = None
        self._build(root)

    # -- construction ------------------------------------------------------

    def _build(self, root: Node) -> None:
        nodes: list[Node] = [root]
        sizes: list[int] = [0]
        levels: list[int] = [0]
        pre_of: dict[int, int] = {id(root): 0}
        root._sidx = self
        for attribute in root.attributes:
            attribute._sidx = self
        stack: list[tuple[int, Iterator[Node]]] = [(0, iter(root.children))]
        while stack:
            parent_pre, children = stack[-1]
            child = next(children, None)
            if child is None:
                stack.pop()
                sizes[parent_pre] = len(nodes) - parent_pre - 1
                continue
            pre = len(nodes)
            pre_of[id(child)] = pre
            nodes.append(child)
            sizes.append(0)
            levels.append(len(stack))
            child._sidx = self
            for attribute in child.attributes:
                attribute._sidx = self
            stack.append((pre, iter(child.children)))
        self.nodes = nodes
        self.sizes = sizes
        self.levels = levels
        self.pre_of = pre_of

    # -- tag-name partition ------------------------------------------------

    def name_pres(self, local_name: str) -> list[int]:
        """Sorted pre ranks of elements with the given local name."""
        by_name = self._by_name
        if by_name is None:
            by_name = self._by_name = {}
            for pre, node in enumerate(self.nodes):
                if isinstance(node, ElementNode):
                    by_name.setdefault(node.local_name, []).append(pre)
        return by_name.get(local_name, _EMPTY_PRES)

    # -- window scans ------------------------------------------------------

    def window(self, low: int, high: int,
               local_name: Optional[str] = None) -> list[int]:
        """Pre ranks in the half-open window ``(low, high]``."""
        if local_name is None:
            return list(range(low + 1, min(high, len(self.nodes) - 1) + 1))
        pres = self.name_pres(local_name)
        return pres[bisect_right(pres, low):bisect_right(pres, high)]

    def after(self, boundary: int,
              local_name: Optional[str] = None) -> list[int]:
        """Pre ranks strictly greater than *boundary* (following window)."""
        if local_name is None:
            return list(range(boundary + 1, len(self.nodes)))
        pres = self.name_pres(local_name)
        return pres[bisect_right(pres, boundary):]

    def before(self, boundary: int,
               local_name: Optional[str] = None) -> list[int]:
        """Pre ranks strictly less than *boundary* (preceding window)."""
        if local_name is None:
            return list(range(0, boundary))
        pres = self.name_pres(local_name)
        return pres[:bisect_left(pres, boundary)]

    def ancestor_pres(self, pre: int) -> list[int]:
        """Pre ranks of the ancestors of *pre*, nearest first."""
        result: list[int] = []
        node = self.nodes[pre].parent
        while node is not None:
            result.append(self.pre_of[id(node)])
            node = node.parent
        return result


_EMPTY_PRES: list[int] = []


def structural_index(root: Node) -> StructuralIndex:
    """The (cached) structural index of the tree rooted at *root*.

    Rebuilt lazily when the cached index is stale (tree mutated) or was
    built for a different root (the node was adopted into another tree).
    """
    index = root._sidx
    if index is not None and not index.stale and index.root is root:
        return index
    generation = getattr(root, "_struct_gen", 0) + 1
    root._struct_gen = generation
    return StructuralIndex(root, generation)


def invalidate_structural_index(node: Node) -> None:
    """Mark the index covering *node* stale, if one was ever built."""
    index = node._sidx
    if index is not None:
        index.stale = True


def reencode_tree(root: Node) -> None:
    """Restamp ``order_key`` / ``size`` / ``level`` over a mutated tree.

    XQUF updates splice in nodes minted by other factories, breaking the
    invariant that serials are dense and increasing in document order
    (inserted nodes would globally sort by their construction key, not
    their tree position).  One pre-order pass re-keys the whole tree
    under a fresh ``doc_id`` — attributes are stamped directly after
    their owner, exactly like the parsers do — and invalidates any
    cached structural index.
    """
    invalidate_structural_index(root)
    doc_id = _next_doc_id()
    serial = 0
    root.order_key = (doc_id, serial)
    root.level = 0
    for attribute in root.attributes:
        serial += 1
        attribute.order_key = (doc_id, serial)
        attribute.level = 1
        attribute.size = 0
        invalidate_structural_index(attribute)
    stack: list[tuple[Node, Iterator[Node]]] = [(root, iter(root.children))]
    while stack:
        parent, children = stack[-1]
        child = next(children, None)
        if child is None:
            stack.pop()
            parent.size = serial - parent.order_key[1]
            continue
        invalidate_structural_index(child)
        serial += 1
        child.order_key = (doc_id, serial)
        child.level = parent.level + 1
        for attribute in child.attributes:
            serial += 1
            attribute.order_key = (doc_id, serial)
            attribute.level = child.level + 1
            attribute.size = 0
            invalidate_structural_index(attribute)
        stack.append((child, iter(child.children)))


def staircase_prune(sorted_pres: list[int], sizes: list[int]) -> list[int]:
    """Drop context pres covered by an earlier context's subtree window.

    This is the staircase-join pruning step: on a pre-sorted context
    sequence, any node inside a previous node's ``(pre, pre+size]``
    window contributes no new descendants (and no new following nodes),
    so the windows that remain are disjoint and ascending — their
    concatenated scans are duplicate-free and document-ordered *by
    construction*.
    """
    pruned: list[int] = []
    covered = -1
    for pre in sorted_pres:
        if pre <= covered:
            continue
        pruned.append(pre)
        end = pre + sizes[pre]
        if end > covered:
            covered = end
    return pruned


def tree_groups(nodes: list[Node]) -> list[tuple[Node, list[Node]]]:
    """Group nodes by tree root, groups ordered by global document order.

    Every tree root carries the minimal order key of its tree and
    distinct trees occupy disjoint key ranges, so concatenating per-group
    results in root-key order equals one global document-order merge.
    """
    groups: dict[int, tuple[Node, list[Node]]] = {}
    for node in nodes:
        root = node.root()
        entry = groups.get(id(root))
        if entry is None:
            groups[id(root)] = (root, [node])
        else:
            entry[1].append(node)
    return sorted(groups.values(), key=lambda entry: entry[0].order_key)
