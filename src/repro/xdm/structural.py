"""XPath-accelerator structural encoding and per-tree index.

This module adds the storage-layer machinery of the *XPath accelerator*
(Grust's pre/size/level encoding, the representation Pathfinder compiles
paths against inside MonetDB/XQuery):

* every node carries a ``pre / size / level`` stamp — ``pre`` is the
  node's document-order serial (``order_key[1]``), ``size`` the number of
  serials issued inside its subtree (attributes included), ``level`` its
  construction depth;
* per tree root, a lazily built :class:`StructuralIndex` materialises the
  pre-ordered node array plus subtree extents and depths, and partitions
  element pres by tag name — the columns a window scan needs to answer
  ``descendant`` (``pre in (pre, pre+size]``), ``following``
  (``pre > pre+size``) and friends without walking the tree;
* :func:`reencode_tree` restamps a tree after structural mutation (XQUF
  PUL application), restoring the dense-serial invariant the window
  arithmetic and global document order rely on.

Index invalidation is O(1) at mutation time: building an index stamps
every tree node with a back-reference (``_sidx``); the mutating entry
points (``append``/``set_attribute``/PUL primitives/``n2s`` adoption)
flip the referenced index's ``stale`` bit when such a stamp is present.
"""

from __future__ import annotations

from bisect import bisect_left, bisect_right
from typing import Callable, Iterator, Optional

from repro.xdm.nodes import AttributeNode, ElementNode, Node, _next_doc_id


class StructuralIndex:
    """Pre/size/level columns of one tree, in document order.

    ``nodes[pre]`` is the tree node with positional pre rank ``pre``
    (attributes are not ranked; they are reached through their owner
    element, matching the accelerator's separate attribute table).
    ``sizes[pre]`` is the number of tree nodes in the subtree below it,
    so the descendant window of ``pre`` is ``(pre, pre + sizes[pre]]``.
    ``levels[pre]`` is the depth below the tree root.
    """

    __slots__ = ("root", "generation", "stale", "nodes", "sizes", "levels",
                 "pre_of", "_by_name", "value_indexes")

    def __init__(self, root: Node, generation: int) -> None:
        self.root = root
        self.generation = generation
        self.stale = False
        # Equality-predicate value indexes (the evaluator's hash-join
        # probes) live on the index so tree mutation drops them with it.
        self.value_indexes: dict = {}
        self._by_name: Optional[dict[str, list[int]]] = None
        self._build(root)

    # -- construction ------------------------------------------------------

    def _build(self, root: Node) -> None:
        nodes: list[Node] = [root]
        sizes: list[int] = [0]
        levels: list[int] = [0]
        pre_of: dict[int, int] = {id(root): 0}
        root._sidx = self
        for attribute in root.attributes:
            attribute._sidx = self
        stack: list[tuple[int, Iterator[Node]]] = [(0, iter(root.children))]
        while stack:
            parent_pre, children = stack[-1]
            child = next(children, None)
            if child is None:
                stack.pop()
                sizes[parent_pre] = len(nodes) - parent_pre - 1
                continue
            pre = len(nodes)
            pre_of[id(child)] = pre
            nodes.append(child)
            sizes.append(0)
            levels.append(len(stack))
            child._sidx = self
            for attribute in child.attributes:
                attribute._sidx = self
            stack.append((pre, iter(child.children)))
        self.nodes = nodes
        self.sizes = sizes
        self.levels = levels
        self.pre_of = pre_of

    # -- tag-name partition ------------------------------------------------

    def name_pres(self, local_name: str) -> list[int]:
        """Sorted pre ranks of elements with the given local name."""
        by_name = self._by_name
        if by_name is None:
            by_name = self._by_name = {}
            for pre, node in enumerate(self.nodes):
                if isinstance(node, ElementNode):
                    by_name.setdefault(node.local_name, []).append(pre)
        return by_name.get(local_name, _EMPTY_PRES)

    # -- window scans ------------------------------------------------------

    def window(self, low: int, high: int,
               local_name: Optional[str] = None) -> list[int]:
        """Pre ranks in the half-open window ``(low, high]``."""
        if local_name is None:
            return list(range(low + 1, min(high, len(self.nodes) - 1) + 1))
        pres = self.name_pres(local_name)
        return pres[bisect_right(pres, low):bisect_right(pres, high)]

    def after(self, boundary: int,
              local_name: Optional[str] = None) -> list[int]:
        """Pre ranks strictly greater than *boundary* (following window)."""
        if local_name is None:
            return list(range(boundary + 1, len(self.nodes)))
        pres = self.name_pres(local_name)
        return pres[bisect_right(pres, boundary):]

    def before(self, boundary: int,
               local_name: Optional[str] = None) -> list[int]:
        """Pre ranks strictly less than *boundary* (preceding window)."""
        if local_name is None:
            return list(range(0, boundary))
        pres = self.name_pres(local_name)
        return pres[:bisect_left(pres, boundary)]

    def ancestor_pres(self, pre: int) -> list[int]:
        """Pre ranks of the ancestors of *pre*, nearest first."""
        result: list[int] = []
        node = self.nodes[pre].parent
        while node is not None:
            result.append(self.pre_of[id(node)])
            node = node.parent
        return result


_EMPTY_PRES: list[int] = []


def structural_index(root: Node) -> StructuralIndex:
    """The (cached) structural index of the tree rooted at *root*.

    Rebuilt lazily when the cached index is stale (tree mutated) or was
    built for a different root (the node was adopted into another tree).
    """
    index = root._sidx
    if index is not None and not index.stale and index.root is root:
        return index
    generation = getattr(root, "_struct_gen", 0) + 1
    root._struct_gen = generation
    return StructuralIndex(root, generation)


def invalidate_structural_index(node: Node) -> None:
    """Mark the index covering *node* stale, if one was ever built."""
    index = node._sidx
    if index is not None:
        index.stale = True


def reencode_tree(root: Node) -> None:
    """Restamp ``order_key`` / ``size`` / ``level`` over a mutated tree.

    XQUF updates splice in nodes minted by other factories, breaking the
    invariant that serials are dense and increasing in document order
    (inserted nodes would globally sort by their construction key, not
    their tree position).  One pre-order pass re-keys the whole tree
    under a fresh ``doc_id`` — attributes are stamped directly after
    their owner, exactly like the parsers do — and invalidates any
    cached structural index.
    """
    invalidate_structural_index(root)
    doc_id = _next_doc_id()
    serial = 0
    root.order_key = (doc_id, serial)
    root.level = 0
    for attribute in root.attributes:
        serial += 1
        attribute.order_key = (doc_id, serial)
        attribute.level = 1
        attribute.size = 0
        invalidate_structural_index(attribute)
    stack: list[tuple[Node, Iterator[Node]]] = [(root, iter(root.children))]
    while stack:
        parent, children = stack[-1]
        child = next(children, None)
        if child is None:
            stack.pop()
            parent.size = serial - parent.order_key[1]
            continue
        invalidate_structural_index(child)
        serial += 1
        child.order_key = (doc_id, serial)
        child.level = parent.level + 1
        for attribute in child.attributes:
            serial += 1
            attribute.order_key = (doc_id, serial)
            attribute.level = child.level + 1
            attribute.size = 0
            invalidate_structural_index(attribute)
        stack.append((child, iter(child.children)))


def staircase_prune(sorted_pres: list[int], sizes: list[int]) -> list[int]:
    """Drop context pres covered by an earlier context's subtree window.

    This is the staircase-join pruning step: on a pre-sorted context
    sequence, any node inside a previous node's ``(pre, pre+size]``
    window contributes no new descendants (and no new following nodes),
    so the windows that remain are disjoint and ascending — their
    concatenated scans are duplicate-free and document-ordered *by
    construction*.
    """
    pruned: list[int] = []
    covered = -1
    for pre in sorted_pres:
        if pre <= covered:
            continue
        pruned.append(pre)
        end = pre + sizes[pre]
        if end > covered:
            covered = end
    return pruned


def split_context(index: StructuralIndex,
                  members: list) -> tuple[list[int], list[Node]]:
    """Split a context sequence into pre-ranked tree nodes and attributes.

    The accelerator keeps attributes out of the pre array (MonetDB's
    separate attribute table), so window scans take sorted unique context
    pres plus the attribute members to route through their owners.
    """
    pre_of = index.pre_of
    pres_seen: set[int] = set()
    ctx_pres: list[int] = []
    attr_seen: set[int] = set()
    attr_members: list[Node] = []
    for node in members:
        if isinstance(node, AttributeNode):
            if id(node) not in attr_seen:
                attr_seen.add(id(node))
                attr_members.append(node)
        else:
            pre = pre_of[id(node)]
            if pre not in pres_seen:
                pres_seen.add(pre)
                ctx_pres.append(pre)
    ctx_pres.sort()
    return ctx_pres, attr_members


def axis_window_scan(index: StructuralIndex, axis: str,
                     ctx_pres: list[int], attr_members: list[Node],
                     matches: Callable[[Node], bool],
                     local_name: Optional[str] = None,
                     match_all: bool = False) -> list[Node]:
    """Whole-context axis step as window scans over one tree's columns.

    This is the set-at-a-time staircase-join core shared by the
    interpreter's accelerated axis evaluation and the algebra layer's
    axis-step operator: ``descendant`` is ``pre in (pre, pre+size]``,
    ``child`` additionally skips over subtrees, ``following`` is
    ``pre > pre+size``, ``ancestor`` walks parent chains with staircase
    early exit.  Covered context nodes are pruned before scanning, so
    results are duplicate-free and document-ordered *by construction*.

    Parameters
    ----------
    matches:
        Node-test predicate applied to candidates.
    local_name:
        Tag partition to scan instead of the full pre range (a
        non-wildcard element name test).
    match_all:
        The test is ``node()`` — skip per-candidate filtering.
    """
    nodes = index.nodes
    sizes = index.sizes
    pre_of = index.pre_of

    if axis == "attribute":
        out_attrs: list[Node] = []
        for p in ctx_pres:
            for attribute in nodes[p].attributes:
                if matches(attribute):
                    out_attrs.append(attribute)
        return out_attrs

    # Attribute context nodes: upward/order axes go through the owner
    # element; self-including axes contribute the attribute itself.
    owner_pres = [pre_of[id(a.parent)] for a in attr_members
                  if a.parent is not None]
    extra: list[Node] = []
    if axis in ("self", "descendant-or-self", "ancestor-or-self"):
        extra = [a for a in attr_members if matches(a)]

    out_pres: list[int] = []
    if axis == "self":
        out_pres = ctx_pres
    elif axis in ("descendant", "descendant-or-self"):
        for p in staircase_prune(ctx_pres, sizes):
            if axis == "descendant-or-self":
                out_pres.append(p)  # non-matching selves filtered below
            out_pres.extend(index.window(p, p + sizes[p], local_name))
    elif axis == "child":
        gathered: list[int] = []
        if local_name is not None:
            # child = descendant ∧ level = level+1: scan the tag
            # partition inside the subtree window and keep the rows one
            # level down — far fewer candidates than walking the child
            # list when elements have many non-matching children.
            levels = index.levels
            for p in ctx_pres:
                child_level = levels[p] + 1
                gathered.extend(
                    q for q in index.window(p, p + sizes[p], local_name)
                    if levels[q] == child_level)
        else:
            for p in ctx_pres:
                end = p + sizes[p]
                q = p + 1
                while q <= end:
                    gathered.append(q)
                    q += sizes[q] + 1
        gathered.sort()  # children of nested contexts interleave
        out_pres = gathered
    elif axis == "parent":
        parent_set: set[int] = set(owner_pres)
        for p in ctx_pres:
            parent = nodes[p].parent
            if parent is not None:
                parent_set.add(pre_of[id(parent)])
        out_pres = sorted(parent_set)
    elif axis in ("ancestor", "ancestor-or-self"):
        ancestor_set: set[int] = set()
        chains = [nodes[p].parent for p in ctx_pres]
        chains.extend(a.parent for a in attr_members)
        for node in chains:
            while node is not None:
                q = pre_of[id(node)]
                if q in ancestor_set:
                    break  # staircase early exit: chain already seen
                ancestor_set.add(q)
                node = node.parent
        if axis == "ancestor-or-self":
            ancestor_set.update(ctx_pres)
        out_pres = sorted(ancestor_set)
    elif axis in ("following-sibling", "preceding-sibling"):
        sibling_set: set[int] = set()
        for p in ctx_pres:
            parent = nodes[p].parent
            if parent is None:
                continue
            pp = pre_of[id(parent)]
            if axis == "following-sibling":
                q = p + sizes[p] + 1
                end = pp + sizes[pp]
                while q <= end:
                    sibling_set.add(q)
                    q += sizes[q] + 1
            else:
                q = pp + 1
                while q < p:
                    sibling_set.add(q)
                    q += sizes[q] + 1
        out_pres = sorted(sibling_set)
    elif axis == "following":
        ends = [p + sizes[p] for p in ctx_pres]
        ends.extend(p + sizes[p] for p in owner_pres)
        if ends:
            out_pres = index.after(min(ends), local_name)
    elif axis == "preceding":
        starts = ctx_pres + owner_pres
        if starts:
            boundary = max(starts)
            ancestors = set(index.ancestor_pres(boundary))
            out_pres = [q for q in index.before(boundary, local_name)
                        if q not in ancestors]
    else:  # pragma: no cover - callers restrict axes
        raise ValueError(f"unknown axis {axis}")

    if match_all:
        out_nodes = [nodes[q] for q in out_pres]
    else:
        out_nodes = [node for node in (nodes[q] for q in out_pres)
                     if matches(node)]
    if extra:
        from repro.xdm.sequence import document_order_sort
        return document_order_sort(out_nodes + extra)
    return out_nodes


#: The downward axes :func:`axis_scan_batched` supports — declared next
#: to the implementation so callers gating on it cannot drift.
BATCHED_AXES = frozenset(
    ("self", "child", "descendant", "descendant-or-self", "attribute"))


def axis_scan_batched(index: StructuralIndex, axis: str,
                      pairs: list[tuple],
                      matches: Callable[[Node], bool],
                      local_name: Optional[str] = None,
                      match_all: bool = False) -> list[tuple]:
    """Set-at-a-time downward-axis scan over many single-node contexts.

    *pairs* is ``[(tag, pre), ...]`` — one context node per tag (a
    loop-lifted iteration), tags in emission order.  One call scans
    every context against the shared pre/size/level columns with the
    per-axis dispatch hoisted out of the loop, returning ``(tag, node)``
    rows in per-tag document order — the batched form of
    :func:`axis_window_scan` the algebra layer uses for the
    overwhelmingly common one-context-per-iteration plans.

    Downward axes only: a single context node needs no staircase
    pruning, so each context's window scan is independent.
    """
    nodes = index.nodes
    sizes = index.sizes
    out: list[tuple] = []
    if axis == "attribute":
        for tag, p in pairs:
            for attribute in nodes[p].attributes:
                if matches(attribute):
                    out.append((tag, attribute))
    elif axis == "self":
        for tag, p in pairs:
            node = nodes[p]
            if match_all or matches(node):
                out.append((tag, node))
    elif axis == "child":
        levels = index.levels
        if local_name is not None:
            pres = index.name_pres(local_name)
            for tag, p in pairs:
                child_level = levels[p] + 1
                lo = bisect_right(pres, p)
                hi = bisect_right(pres, p + sizes[p], lo)
                for q in pres[lo:hi]:
                    if levels[q] == child_level:
                        node = nodes[q]
                        if matches(node):
                            out.append((tag, node))
        else:
            for tag, p in pairs:
                end = p + sizes[p]
                q = p + 1
                while q <= end:
                    node = nodes[q]
                    if match_all or matches(node):
                        out.append((tag, node))
                    q += sizes[q] + 1
    elif axis in ("descendant", "descendant-or-self"):
        include_self = axis == "descendant-or-self"
        if local_name is not None:
            pres = index.name_pres(local_name)
            for tag, p in pairs:
                if include_self:
                    node = nodes[p]
                    if matches(node):
                        out.append((tag, node))
                lo = bisect_right(pres, p)
                hi = bisect_right(pres, p + sizes[p], lo)
                for q in pres[lo:hi]:
                    node = nodes[q]
                    if matches(node):
                        out.append((tag, node))
        else:
            for tag, p in pairs:
                start = p if include_self else p + 1
                for q in range(start, p + sizes[p] + 1):
                    node = nodes[q]
                    if match_all or matches(node):
                        out.append((tag, node))
    else:  # pragma: no cover - callers restrict axes
        raise ValueError(f"axis {axis} is not a batched downward axis")
    return out


def tree_groups(nodes: list[Node]) -> list[tuple[Node, list[Node]]]:
    """Group nodes by tree root, groups ordered by global document order.

    Every tree root carries the minimal order key of its tree and
    distinct trees occupy disjoint key ranges, so concatenating per-group
    results in root-key order equals one global document-order merge.
    """
    groups: dict[int, tuple[Node, list[Node]]] = {}
    for node in nodes:
        root = node.root()
        entry = groups.get(id(root))
        if entry is None:
            groups[id(root)] = (root, [node])
        else:
            entry[1].append(node)
    return sorted(groups.values(), key=lambda entry: entry[0].order_key)
