"""XPath-accelerator structural encoding and per-tree index.

This module adds the storage-layer machinery of the *XPath accelerator*
(Grust's pre/size/level encoding, the representation Pathfinder compiles
paths against inside MonetDB/XQuery):

* every node carries a ``pre / size / level`` stamp — ``pre`` is the
  node's document-order serial (``order_key[1]``), ``size`` the number of
  serials issued inside its subtree (attributes included), ``level`` its
  construction depth;
* per tree root, a lazily built :class:`StructuralIndex` materialises the
  pre-ordered node array plus subtree extents and depths, and partitions
  element pres by tag name — the columns a window scan needs to answer
  ``descendant`` (``pre in (pre, pre+size]``), ``following``
  (``pre > pre+size``) and friends without walking the tree;
* the *gapped pre-plane*: order-key serials are spaced
  :data:`~repro.xdm.nodes.KEY_STRIDE` apart, so a small XQUF splice
  usually mints its keys inside the gap between its document-order
  neighbours (:func:`reencode_spliced_children` /
  :func:`reencode_spliced_attributes`) in O(change); when a gap is
  exhausted, the nearest enclosing region is re-spread
  (:func:`_respread_region`), and only in the worst case does
  :func:`reencode_tree` restamp the whole tree;
* incremental :class:`StructuralIndex` maintenance: the PUL applier
  splices/evicts rows, patches the tag-name partitions and rekeys or
  evicts the cached value indexes (``patch_insert`` / ``patch_delete``
  / ``patch_rename`` / ``patch_content``) instead of the historical
  stale-flag → full rebuild;
* :data:`ENCODING_STATS` counts what the update path actually did
  (``reencodes_full`` / ``reencodes_subtree`` / ``gap_respreads`` /
  ``index_patches`` …), surfaced through ``Explain`` and
  ``Database.stats()``.

Index invalidation stays O(1) at mutation time: building an index
stamps every tree node with a back-reference (``_sidx``); the mutating
entry points (``append``/``set_attribute``/PUL primitives/``n2s``
adoption) flip the referenced index's ``stale`` bit when such a stamp
is present.  The staircase windows below operate on *positional* pre
ranks (array indices of the index, always dense) — they compare and
slice, never assume the stamped serials are dense, so sparse order
keys need no changes there.
"""

from __future__ import annotations

import threading
from array import array
from bisect import bisect_left, bisect_right, insort
from typing import Callable, Iterator, Optional

from repro.xdm.nodes import (
    KEY_STRIDE,
    AttributeNode,
    ElementNode,
    Node,
    _next_doc_id,
)


class EncodingStats:
    """Process-wide counters of the incremental update machinery.

    ``reencodes_full`` — whole-tree restamps (the worst-case fallback);
    ``reencodes_subtree`` — splices that only stamped the new content
    (gap minting) or one enclosing region; ``gap_respreads`` — the
    subset of those that had to re-spread an enclosing region's keys;
    ``index_patches`` — in-place :class:`StructuralIndex` row/partition
    patches; ``index_builds`` — full index (re)builds;
    ``value_index_evictions`` — cached equality-probe indexes dropped by
    patches.

    Counters accumulate both process-wide (``snapshot()``, reported by
    ``Database.stats()``) and per *thread* (``snapshot_local()``):
    executions may run concurrently (the HTTP daemon is threaded), so
    per-execution deltas in ``Explain`` are taken against the executing
    thread's counters — overlapping executions cannot attribute each
    other's update costs.
    """

    FIELDS = ("reencodes_full", "reencodes_subtree", "gap_respreads",
              "index_patches", "index_builds", "value_index_evictions")

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._local = threading.local()
        for field in self.FIELDS:
            setattr(self, field, 0)

    def bump(self, field: str, count: int = 1) -> None:
        with self._lock:
            setattr(self, field, getattr(self, field) + count)
        local = self._local.__dict__  # thread-local: no lock needed
        local[field] = local.get(field, 0) + count

    def snapshot(self) -> dict[str, int]:
        """Process-wide totals."""
        with self._lock:
            return {field: getattr(self, field) for field in self.FIELDS}

    def snapshot_local(self) -> dict[str, int]:
        """The calling thread's totals (per-execution delta basis)."""
        local = self._local.__dict__
        return {field: local.get(field, 0) for field in self.FIELDS}

    def reset(self) -> None:
        with self._lock:
            for field in self.FIELDS:
                setattr(self, field, 0)
        self._local.__dict__.clear()


#: The process-wide counter instance (updates may run from any thread;
#: the RPC server applies PULs on worker threads).
ENCODING_STATS = EncodingStats()


class StructuralIndex:
    """Pre/size/level columns of one tree, in document order.

    ``nodes[pre]`` is the tree node with positional pre rank ``pre``
    (attributes are not ranked; they are reached through their owner
    element, matching the accelerator's separate attribute table).
    ``sizes[pre]`` is the number of tree nodes in the subtree below it,
    so the descendant window of ``pre`` is ``(pre, pre + sizes[pre]]``.
    ``levels[pre]`` is the depth below the tree root.

    ``sizes`` and ``levels`` are flat ``array.array("q")`` planes (the
    node row array stays a Python list of node objects): window kernels
    bisect and slice contiguous machine-word columns instead of chasing
    a pointer per comparison, and the O(change) update path splices the
    planes in place with the same slice operations as the node rows.
    """

    __slots__ = ("root", "generation", "stale", "nodes", "sizes", "levels",
                 "pre_of", "_by_name", "value_indexes", "term_index")

    def __init__(self, root: Node, generation: int) -> None:
        self.root = root
        self.generation = generation
        self.stale = False
        # Equality-predicate value indexes (the evaluator's hash-join
        # probes) live on the index so tree mutation drops them with it.
        self.value_indexes: dict = {}
        # Inverted term index (repro.search.TermIndex), attached lazily
        # by term_index_for(); duck-typed here so the storage layer does
        # not depend on the search package.  It shares this index's
        # lifetime (a stale structural index drops the postings too) and
        # is patched by the same hooks that splice the columns.
        self.term_index = None
        self._by_name: Optional[dict[str, list[int]]] = None
        self._build(root)

    # -- construction ------------------------------------------------------

    def _build(self, root: Node) -> None:
        nodes: list[Node] = [root]
        sizes: list[int] = [0]
        levels: list[int] = [0]
        pre_of: dict[int, int] = {id(root): 0}
        root._sidx = self
        for attribute in root.attributes:
            attribute._sidx = self
        stack: list[tuple[int, Iterator[Node]]] = [(0, iter(root.children))]
        while stack:
            parent_pre, children = stack[-1]
            child = next(children, None)
            if child is None:
                stack.pop()
                sizes[parent_pre] = len(nodes) - parent_pre - 1
                continue
            pre = len(nodes)
            pre_of[id(child)] = pre
            nodes.append(child)
            sizes.append(0)
            levels.append(len(stack))
            child._sidx = self
            for attribute in child.attributes:
                attribute._sidx = self
            stack.append((pre, iter(child.children)))
        self.nodes = nodes
        self.sizes = array("q", sizes)
        self.levels = array("q", levels)
        self.pre_of = pre_of
        ENCODING_STATS.bump("index_builds")

    # -- rank lookup (self-healing) ----------------------------------------
    #
    # ``pre_of`` is a *cache* of node → positional rank, complete after a
    # build.  Row splices do NOT eagerly renumber the tail (that would
    # make every patch O(doc)); instead each lookup validates its cached
    # rank against the node array (``nodes[rank] is node``) and lazily
    # re-resolves through an order-key bisect when a splice shifted it.
    # Read-only workloads always hit; after an update only the ranks a
    # query actually touches pay the O(log n) repair.

    def rank_of(self, node: Node) -> int:
        """Positional pre rank of *node*; raises KeyError when the node
        is not a ranked row of this index (e.g. an attribute)."""
        rank = self.rank_of_opt(node)
        if rank is None:
            raise KeyError(node)
        return rank

    def rank_of_opt(self, node: Node) -> Optional[int]:
        """Like :meth:`rank_of`, but ``None`` for unranked nodes."""
        nodes = self.nodes
        rank = self.pre_of.get(id(node))
        if rank is not None and rank < len(nodes) and nodes[rank] is node:
            return rank
        if isinstance(node, AttributeNode):
            return None  # attributes are never ranked: no O(n) fallback
        rank = self._resolve_rank(node)
        if rank is not None:
            self.pre_of[id(node)] = rank
        return rank

    def _resolve_rank(self, node: Node) -> Optional[int]:
        """Bisect the node array by order key (monotone in rank for
        every tree the incremental path maintains), with a linear scan
        as the safety net for hand-assembled non-monotone trees."""
        nodes = self.nodes
        key = node.order_key
        low, high = 0, len(nodes)
        while low < high:
            mid = (low + high) // 2
            if nodes[mid].order_key < key:
                low = mid + 1
            else:
                high = mid
        if low < len(nodes) and nodes[low] is node:
            return low
        for rank, candidate in enumerate(nodes):
            if candidate is node:
                return rank
        return None

    # -- incremental maintenance -------------------------------------------
    #
    # The XQUF applier keeps a live index consistent across a PUL by
    # splicing/evicting rows at the mutation point instead of letting the
    # stale flag force a full rebuild.  All patches work on *positional*
    # pre ranks; the gapped order-key serials never enter here.  Every
    # patch returns False when it cannot locate its splice point (node
    # not covered by this index) — the caller stale-marks and falls back.

    def patch_insert(self, parent: Node, roots: list[Node]) -> bool:
        """Splice freshly inserted subtrees into the columns.

        *roots* are contiguous new children of *parent*, already present
        in its child list.  Rows are inserted at the run's document
        position, ancestor subtree sizes grow, the tag partitions shift,
        and value indexes anchored on an ancestor are evicted (their
        member lists may now be missing the new nodes).
        """
        parent_pre = self.rank_of_opt(parent)
        if parent_pre is None:
            return False
        if not roots:
            return True
        siblings = parent.children
        first = _identity_index(siblings, roots[0])
        if first is None:
            return False
        if first == 0:
            pos = parent_pre + 1
        else:
            prev_pre = self.rank_of_opt(siblings[first - 1])
            if prev_pre is None:
                return False
            pos = prev_pre + self.sizes[prev_pre] + 1
        new_nodes: list[Node] = []
        new_sizes: list[int] = []
        new_levels: list[int] = []
        base_level = self.levels[parent_pre] + 1
        for root in roots:
            offset = len(new_nodes)
            new_nodes.append(root)
            new_sizes.append(0)
            new_levels.append(base_level)
            root._sidx = self
            for attribute in root.attributes:
                attribute._sidx = self
            stack: list[tuple[int, Iterator[Node]]] = [
                (offset, iter(root.children))]
            while stack:
                parent_offset, children = stack[-1]
                child = next(children, None)
                if child is None:
                    stack.pop()
                    new_sizes[parent_offset] = \
                        len(new_nodes) - parent_offset - 1
                    continue
                child_offset = len(new_nodes)
                new_nodes.append(child)
                new_sizes.append(0)
                new_levels.append(new_levels[parent_offset] + 1)
                child._sidx = self
                for attribute in child.attributes:
                    attribute._sidx = self
                stack.append((child_offset, iter(child.children)))
        count = len(new_nodes)
        self.nodes[pos:pos] = new_nodes
        # array.array slice assignment requires a same-typecode array.
        self.sizes[pos:pos] = array("q", new_sizes)
        self.levels[pos:pos] = array("q", new_levels)
        evict: set[int] = set()
        ancestor: Optional[Node] = parent
        while ancestor is not None:
            ancestor_pre = self.rank_of(ancestor)
            self.sizes[ancestor_pre] += count
            evict.add(ancestor_pre)
            ancestor = ancestor.parent
        new_elements = [
            (pos + offset, node.local_name)
            for offset, node in enumerate(new_nodes)
            if isinstance(node, ElementNode)]
        self._patch_partitions(pos, count, new_elements)
        self._patch_value_indexes(pos, count, evict)
        if self.term_index is not None:
            self.term_index.on_insert(new_nodes)
        ENCODING_STATS.bump("index_patches")
        return True

    def patch_delete(self, target: Node) -> bool:
        """Evict the rows of *target*'s subtree.

        Must run while *target* is still attached — ancestor sizes are
        reached through its parent chain.  The gapped key plane needs no
        key work for deletes (freed serials simply become gaps).
        """
        pre_of = self.pre_of
        pos = self.rank_of_opt(target)
        if pos is None:
            return False
        count = self.sizes[pos] + 1
        removed = self.nodes[pos:pos + count]
        for node in removed:
            pre_of.pop(id(node), None)
            if node._sidx is self:
                node._sidx = None
            for attribute in node.attributes:
                if attribute._sidx is self:
                    attribute._sidx = None
        evict: set[int] = set()
        ancestor = target.parent
        while ancestor is not None:
            ancestor_pre = self.rank_of(ancestor)
            self.sizes[ancestor_pre] -= count
            evict.add(ancestor_pre)
            ancestor = ancestor.parent
        del self.nodes[pos:pos + count]
        del self.sizes[pos:pos + count]
        del self.levels[pos:pos + count]
        self._patch_partitions(pos, -count)
        self._patch_value_indexes(pos, -count, evict)
        if self.term_index is not None:
            # After the row splice: the seam repair must see the
            # post-delete text sequence (the detached nodes still hold
            # their content, so un-posting needs no reverse lookup).
            self.term_index.on_delete(removed)
        ENCODING_STATS.bump("index_patches")
        return True

    def patch_rename(self, node: Node, old_local: Optional[str]) -> bool:
        """Re-partition one renamed element (or an attribute's owner)."""
        if isinstance(node, AttributeNode):
            return self.patch_content(node)
        pos = self.rank_of_opt(node)
        if pos is None:
            return False
        by_name = self._by_name
        if by_name is not None and isinstance(node, ElementNode):
            old = by_name.get(old_local)
            if old is not None:
                index = bisect_left(old, pos)
                if index < len(old) and old[index] == pos:
                    old.pop(index)
            insort(by_name.setdefault(node.local_name, []), pos)
        self._evict_covering(pos)
        ENCODING_STATS.bump("index_patches")
        return True

    def patch_content(self, node: Node) -> bool:
        """A value-only mutation (replace value, attribute set/remove):
        rows and order keys stay valid; only value indexes probing
        through the node can be stale."""
        anchor = node.parent if isinstance(node, AttributeNode) else node
        if anchor is None:
            return False
        pos = self.rank_of_opt(anchor)
        if pos is None:
            return False
        self._evict_covering(pos)
        if self.term_index is not None:
            self.term_index.on_content(node)
        ENCODING_STATS.bump("index_patches")
        return True

    def patch_attributes(self, owner: Node,
                         attrs: list[Node] = ()) -> bool:
        """Attribute-table change on *owner* (insert/replace/delete).

        Attributes are not ranked, so no rows move; new attributes are
        stamped with this index's back-reference and value indexes
        covering the owner are evicted.
        """
        pos = self.rank_of_opt(owner)
        if pos is None:
            return False
        for attribute in attrs:
            attribute._sidx = self
        self._evict_covering(pos)
        if self.term_index is not None:
            self.term_index.on_attributes(owner)
        ENCODING_STATS.bump("index_patches")
        return True

    def _patch_partitions(self, pos: int, delta: int,
                          new_elements: list[tuple[int, str]] = ()) -> None:
        """Shift the tag-name partitions across a row splice at *pos*
        (``delta`` rows inserted, or ``-delta`` rows removed from
        ``[pos, pos - delta)``) and register new element ranks.  Each
        list is sorted, so only its suffix past the splice is touched."""
        by_name = self._by_name
        if by_name is None:
            return
        if delta > 0:
            for pres in by_name.values():
                start = bisect_left(pres, pos)
                if start < len(pres):
                    pres[start:] = [q + delta for q in pres[start:]]
        elif delta < 0:
            cut = pos - delta
            for pres in by_name.values():
                low = bisect_left(pres, pos)
                if low == len(pres):
                    continue
                high = bisect_left(pres, cut, low)
                pres[low:] = [q + delta for q in pres[high:]]
        for pre, name in new_elements:
            insort(by_name.setdefault(name, []), pre)

    def _patch_value_indexes(self, pos: int, delta: int,
                             evict: set[int]) -> None:
        """Rekey value-index anchors across a row splice and evict the
        entries whose anchor subtree covered the mutation (*evict* holds
        those anchors' — the change's ancestors' — pre ranks)."""
        if not self.value_indexes:
            return
        removed_end = pos - delta if delta < 0 else pos
        kept: dict = {}
        evicted = 0
        for key, value_index in self.value_indexes.items():
            anchor = key[0]
            if anchor in evict or pos <= anchor < removed_end:
                evicted += 1
                continue
            if anchor >= pos:
                key = (anchor + delta,) + key[1:]
            kept[key] = value_index
        self.value_indexes = kept
        if evicted:
            ENCODING_STATS.bump("value_index_evictions", evicted)

    def _evict_covering(self, pos: int) -> None:
        """Evict value indexes whose anchor is an ancestor-or-self of
        rank *pos* (the only anchors whose probe values can reach it)."""
        if not self.value_indexes:
            return
        sizes = self.sizes
        kept: dict = {}
        evicted = 0
        for key, value_index in self.value_indexes.items():
            anchor = key[0]
            if anchor <= pos <= anchor + sizes[anchor]:
                evicted += 1
                continue
            kept[key] = value_index
        self.value_indexes = kept
        if evicted:
            ENCODING_STATS.bump("value_index_evictions", evicted)

    # -- tag-name partition ------------------------------------------------

    def name_pres(self, local_name: str) -> list[int]:
        """Sorted pre ranks of elements with the given local name."""
        by_name = self._by_name
        if by_name is None:
            by_name = self._by_name = {}
            for pre, node in enumerate(self.nodes):
                if isinstance(node, ElementNode):
                    by_name.setdefault(node.local_name, []).append(pre)
        return by_name.get(local_name, _EMPTY_PRES)

    # -- window scans ------------------------------------------------------

    def window(self, low: int, high: int,
               local_name: Optional[str] = None) -> list[int]:
        """Pre ranks in the half-open window ``(low, high]``."""
        if local_name is None:
            return list(range(low + 1, min(high, len(self.nodes) - 1) + 1))
        pres = self.name_pres(local_name)
        return pres[bisect_right(pres, low):bisect_right(pres, high)]

    def after(self, boundary: int,
              local_name: Optional[str] = None) -> list[int]:
        """Pre ranks strictly greater than *boundary* (following window)."""
        if local_name is None:
            return list(range(boundary + 1, len(self.nodes)))
        pres = self.name_pres(local_name)
        return pres[bisect_right(pres, boundary):]

    def before(self, boundary: int,
               local_name: Optional[str] = None) -> list[int]:
        """Pre ranks strictly less than *boundary* (preceding window)."""
        if local_name is None:
            return list(range(0, boundary))
        pres = self.name_pres(local_name)
        return pres[:bisect_left(pres, boundary)]

    def ancestor_pres(self, pre: int) -> list[int]:
        """Pre ranks of the ancestors of *pre*, nearest first."""
        result: list[int] = []
        node = self.nodes[pre].parent
        while node is not None:
            result.append(self.rank_of(node))
            node = node.parent
        return result


_EMPTY_PRES: list[int] = []


def structural_index(root: Node) -> StructuralIndex:
    """The (cached) structural index of the tree rooted at *root*.

    Rebuilt lazily when the cached index is stale (tree mutated) or was
    built for a different root (the node was adopted into another tree).
    """
    index = root._sidx
    if index is not None and not index.stale and index.root is root:
        return index
    generation = getattr(root, "_struct_gen", 0) + 1
    root._struct_gen = generation
    return StructuralIndex(root, generation)


def invalidate_structural_index(node: Node) -> None:
    """Mark the index covering *node* stale, if one was ever built."""
    index = node._sidx
    if index is not None:
        index.stale = True


def reencode_tree(root: Node, stride: Optional[int] = None) -> None:
    """Restamp ``order_key`` / ``size`` / ``level`` over a whole tree.

    The worst-case fallback of the update path (and the repair pass for
    hand-assembled trees whose keys are not monotone): one pre-order
    pass re-keys the whole tree under a fresh ``doc_id`` — attributes
    are stamped directly after their owner, exactly like the parsers do
    — and invalidates any cached structural index.  Keys are re-issued
    *with gaps* (``stride``, default :data:`~repro.xdm.nodes.KEY_STRIDE`)
    so subsequent small updates return to the O(change) fast path.
    """
    step = KEY_STRIDE if stride is None else max(1, stride)
    invalidate_structural_index(root)
    _restamp_tree(root, _next_doc_id(), step)
    ENCODING_STATS.bump("reencodes_full")


def rekey_detached(root: Node) -> None:
    """Restamp a subtree an update just detached under a fresh doc id.

    A delete frees its serials into the source tree's gap plane, where
    a later insert may mint them again — so a held reference to the
    detached node must not keep its old key, or two distinct nodes
    could compare as the same document position.  Restamping the
    detached fragment (O(detached), part of the change) preserves the
    process-wide uniqueness of order keys, exactly like ``copy_tree``
    fragments and the historical full re-encode did.
    """
    _restamp_tree(root, _next_doc_id(), KEY_STRIDE)


def _restamp_tree(root: Node, doc_id: int, step: int) -> None:
    """One pre-order restamp pass over *root*'s whole subtree."""
    root.order_key = (doc_id, 0)
    root.level = 0
    serial = _stamp_attributes(root.attributes, doc_id, 0, step, 1)
    root.size = _stamp_run(root.children, doc_id, serial, step, 1)


# -- O(change) re-encoding: gap minting and region respreads ---------------


def _identity_index(nodes_list: list, target: Node) -> Optional[int]:
    """Position of *target* (by identity) in a sibling list, or None —
    works even while *target* carries a foreign, non-monotone key."""
    for index, node in enumerate(nodes_list):
        if node is target:
            return index
    return None


def subtree_key_count(node: Node) -> int:
    """Number of order keys a subtree occupies (attributes included)."""
    count = 0
    stack = [node]
    while stack:
        current = stack.pop()
        count += 1 + len(current.attributes)
        stack.extend(current.children)
    return count


def _next_key_after(node: Node) -> Optional[tuple[int, int]]:
    """Order key of the first node *after* node's subtree in document
    order, or ``None`` when the subtree ends the document."""
    current = node
    while True:
        parent = current.parent
        if parent is None:
            return None
        siblings = parent.children
        index = _identity_index(siblings, current)
        if index is not None and index + 1 < len(siblings):
            return siblings[index + 1].order_key
        current = parent


def _stamp_attributes(attrs: list, doc_id: int, serial: int, step: int,
                      level: int) -> int:
    """Stamp an attribute run (keys directly after their owner, size 0),
    invalidating each attribute's previous index back-reference;
    returns the last serial issued."""
    for attribute in attrs:
        serial += step
        attribute.order_key = (doc_id, serial)
        attribute.level = level
        attribute.size = 0
        invalidate_structural_index(attribute)
    return serial


def _stamp_run(roots: list[Node], doc_id: int, prev_serial: int,
               step: int, base_level: int) -> int:
    """Preorder-restamp sibling subtrees with serials ``prev_serial +
    step, + 2*step, ...`` (attributes directly after their owner);
    returns the last serial issued (``prev_serial`` for an empty run).
    Every stamped node's previous index back-reference is invalidated.
    """
    serial = prev_serial
    for root in roots:
        invalidate_structural_index(root)
        serial += step
        root.order_key = (doc_id, serial)
        root.level = base_level
        serial = _stamp_attributes(root.attributes, doc_id, serial, step,
                                   base_level + 1)
        stack: list[tuple[Node, Iterator[Node]]] = [(root, iter(root.children))]
        while stack:
            parent, children = stack[-1]
            child = next(children, None)
            if child is None:
                stack.pop()
                parent.size = serial - parent.order_key[1]
                continue
            invalidate_structural_index(child)
            serial += step
            child.order_key = (doc_id, serial)
            child.level = parent.level + 1
            serial = _stamp_attributes(child.attributes, doc_id, serial,
                                       step, child.level + 1)
            stack.append((child, iter(child.children)))
    return serial


def _bump_ancestor_sizes(node: Optional[Node], last_serial: int,
                         doc_id: int) -> None:
    """Extend the serial-unit subtree extents on *node* and its
    ancestors so freshly minted serials up to *last_serial* fall inside
    their descendant windows (only needed for end-of-subtree splices,
    where the gap borrowed room from an ancestor's envelope)."""
    while node is not None:
        if node.order_key[0] == doc_id:
            extent = last_serial - node.order_key[1]
            if extent > node.size:
                node.size = extent
        node = node.parent


def _respread_region(region: Node) -> bool:
    """Re-spread every key inside *region*'s subtree evenly across its
    serial envelope ``(region.serial, next-key-after-region)`` — the
    local recovery when a splice gap is exhausted.  Region's own key is
    kept.  Returns False when even the envelope is too small (the
    caller climbs towards the root)."""
    prev_key = region.order_key
    needed = subtree_key_count(region) - 1
    next_key = _next_key_after(region)
    if next_key is None:
        step = KEY_STRIDE
    else:
        if next_key[0] != prev_key[0] or next_key[1] - prev_key[1] <= needed:
            return False
        step = (next_key[1] - prev_key[1]) // (needed + 1)
    doc_id = prev_key[0]
    serial = _stamp_attributes(region.attributes, doc_id, prev_key[1],
                               step, region.level + 1)
    last = _stamp_run(region.children, doc_id, serial, step,
                      region.level + 1)
    region.size = last - prev_key[1]
    _bump_ancestor_sizes(region.parent, last, doc_id)
    return True


def _climb_respread(start: Node) -> str:
    """Gap exhausted at *start*: re-spread the nearest enclosing region
    with room, falling back to a whole-tree re-encode at the root."""
    region = start
    while region.parent is not None:
        if _respread_region(region):
            ENCODING_STATS.bump("gap_respreads")
            ENCODING_STATS.bump("reencodes_subtree")
            return "respread"
        region = region.parent
    reencode_tree(region)
    return "full"


def reencode_spliced_children(parent: Node, roots: list[Node]) -> str:
    """Mint order keys for subtrees freshly spliced under *parent*.

    Fast path: the run's keys fit in the serial gap between its
    document-order neighbours, so *only the new nodes* are stamped —
    O(inserted) regardless of document size (``"subtree"``).  When the
    gap is exhausted (or the boundary keys are unusable — foreign
    doc ids, non-monotone hand-built trees), the nearest enclosing
    region is re-spread (``"respread"``); at the very worst the whole
    tree is re-encoded (``"full"``).  Returns which path ran.

    O(change) necessarily trusts the keys it does not look at: a tree
    whose existing keys are monotone (everything the parsers,
    ``copy_tree``, the constructors and ``reencode_tree`` produce)
    stays monotone, but pre-existing disorder far from the splice point
    is *not* repaired here — axis evaluation is unaffected (it reads
    the positional index), and :func:`reencode_tree` remains the
    explicit repair pass.
    """
    if not roots:
        return "subtree"
    siblings = parent.children
    first = _identity_index(siblings, roots[0])
    last_index = _identity_index(siblings, roots[-1])
    if first is None or last_index is None:
        reencode_tree(parent.root())
        return "full"
    if first == 0:
        attrs = parent.attributes
        prev_key = attrs[-1].order_key if attrs else parent.order_key
    else:
        prev_sibling = siblings[first - 1]
        prev_key = (prev_sibling.order_key[0],
                    prev_sibling.order_key[1] + prev_sibling.size)
    if last_index + 1 < len(siblings):
        next_key: Optional[tuple] = siblings[last_index + 1].order_key
    else:
        next_key = _next_key_after(parent)
    doc_id = prev_key[0]
    needed = sum(subtree_key_count(root) for root in roots)
    if next_key is None:
        step = KEY_STRIDE
    elif next_key[0] == doc_id and next_key[1] - prev_key[1] > needed:
        step = (next_key[1] - prev_key[1]) // (needed + 1)
    else:
        return _climb_respread(parent)
    last = _stamp_run(roots, doc_id, prev_key[1], step, parent.level + 1)
    _bump_ancestor_sizes(parent, last, doc_id)
    ENCODING_STATS.bump("reencodes_subtree")
    return "subtree"


def reencode_spliced_attributes(owner: Node, attrs: list[Node]) -> str:
    """Mint order keys for attributes freshly added to *owner*.

    Attribute keys live between the owner (plus its prior attributes)
    and the owner's first child, so the XDM rule "attributes sort after
    their element, before its children" keeps holding under global
    document-order merges.  Same gap → respread → full ladder as
    :func:`reencode_spliced_children`.
    """
    if not attrs:
        return "subtree"
    existing = owner.attributes
    first = _identity_index(existing, attrs[0])
    last_index = _identity_index(existing, attrs[-1])
    if first is None or last_index is None:
        reencode_tree(owner.root())
        return "full"
    prev_key = existing[first - 1].order_key if first > 0 \
        else owner.order_key
    if last_index + 1 < len(existing):
        next_key: Optional[tuple] = existing[last_index + 1].order_key
    elif owner.children:
        next_key = owner.children[0].order_key
    else:
        next_key = _next_key_after(owner)
    doc_id = prev_key[0]
    needed = len(attrs)
    if next_key is None:
        step = KEY_STRIDE
    elif next_key[0] == doc_id and next_key[1] - prev_key[1] > needed:
        step = (next_key[1] - prev_key[1]) // (needed + 1)
    else:
        return _climb_respread(owner)
    serial = _stamp_attributes(attrs, doc_id, prev_key[1], step,
                               owner.level + 1)
    _bump_ancestor_sizes(owner, serial, doc_id)
    ENCODING_STATS.bump("reencodes_subtree")
    return "subtree"


def staircase_prune(sorted_pres: list[int], sizes: list[int]) -> list[int]:
    """Drop context pres covered by an earlier context's subtree window.

    This is the staircase-join pruning step: on a pre-sorted context
    sequence, any node inside a previous node's ``(pre, pre+size]``
    window contributes no new descendants (and no new following nodes),
    so the windows that remain are disjoint and ascending — their
    concatenated scans are duplicate-free and document-ordered *by
    construction*.
    """
    pruned: list[int] = []
    covered = -1
    for pre in sorted_pres:
        if pre <= covered:
            continue
        pruned.append(pre)
        end = pre + sizes[pre]
        if end > covered:
            covered = end
    return pruned


def split_context(index: StructuralIndex,
                  members: list) -> tuple[list[int], list[Node]]:
    """Split a context sequence into pre-ranked tree nodes and attributes.

    The accelerator keeps attributes out of the pre array (MonetDB's
    separate attribute table), so window scans take sorted unique context
    pres plus the attribute members to route through their owners.
    """
    rank_of = index.rank_of
    pres_seen: set[int] = set()
    ctx_pres: list[int] = []
    attr_seen: set[int] = set()
    attr_members: list[Node] = []
    for node in members:
        if isinstance(node, AttributeNode):
            if id(node) not in attr_seen:
                attr_seen.add(id(node))
                attr_members.append(node)
        else:
            pre = rank_of(node)
            if pre not in pres_seen:
                pres_seen.add(pre)
                ctx_pres.append(pre)
    ctx_pres.sort()
    return ctx_pres, attr_members


def _preceding_ranges(index: StructuralIndex, boundary: int,
                      local_name: Optional[str]) -> list[int]:
    """Pre ranks of ``preceding(boundary)`` in document order.

    The preceding window is ``[0, boundary)`` minus the boundary's
    ancestors; since the ancestors partition that interval, the result
    is the concatenation of the contiguous ranges between consecutive
    ancestor ranks — no per-candidate membership test, and with a tag
    partition each range is one bisect + slice.
    """
    ancestors = sorted(index.ancestor_pres(boundary))
    out: list[int] = []
    if local_name is None:
        low = 0
        for a in ancestors:
            out.extend(range(low, a))
            low = a + 1
        out.extend(range(low, boundary))
        return out
    pres = index.name_pres(local_name)
    low = 0
    lo = 0
    for a in ancestors:
        hi = bisect_left(pres, a, lo)
        out.extend(pres[lo:hi])
        low = a + 1
        lo = bisect_left(pres, low, hi)
    hi = bisect_left(pres, boundary, lo)
    out.extend(pres[lo:hi])
    return out


def axis_window_scan(index: StructuralIndex, axis: str,
                     ctx_pres: list[int], attr_members: list[Node],
                     matches: Callable[[Node], bool],
                     local_name: Optional[str] = None,
                     match_all: bool = False) -> list[Node]:
    """Whole-context axis step as window scans over one tree's columns.

    This is the set-at-a-time staircase-join core shared by the
    interpreter's accelerated axis evaluation and the algebra layer's
    axis-step operator: ``descendant`` is ``pre in (pre, pre+size]``,
    ``child`` additionally skips over subtrees, ``following`` is
    ``pre > pre+size``, ``ancestor`` walks parent chains with staircase
    early exit.  Covered context nodes are pruned before scanning, so
    results are duplicate-free and document-ordered *by construction*.

    Parameters
    ----------
    matches:
        Node-test predicate applied to candidates.
    local_name:
        Tag partition to scan instead of the full pre range (a
        non-wildcard element name test).
    match_all:
        The test is ``node()`` — skip per-candidate filtering.
    """
    nodes = index.nodes
    sizes = index.sizes
    rank_of = index.rank_of

    if axis == "attribute":
        out_attrs: list[Node] = []
        for p in ctx_pres:
            for attribute in nodes[p].attributes:
                if matches(attribute):
                    out_attrs.append(attribute)
        return out_attrs

    # Attribute context nodes: upward/order axes go through the owner
    # element; self-including axes contribute the attribute itself.
    owner_pres = [rank_of(a.parent) for a in attr_members
                  if a.parent is not None]
    extra: list[Node] = []
    if axis in ("self", "descendant-or-self", "ancestor-or-self"):
        extra = [a for a in attr_members if matches(a)]

    out_pres: list[int] = []
    if axis == "self":
        out_pres = ctx_pres
    elif axis in ("descendant", "descendant-or-self"):
        for p in staircase_prune(ctx_pres, sizes):
            if axis == "descendant-or-self":
                out_pres.append(p)  # non-matching selves filtered below
            out_pres.extend(index.window(p, p + sizes[p], local_name))
    elif axis == "child":
        gathered: list[int] = []
        if local_name is not None:
            # child = descendant ∧ level = level+1: scan the tag
            # partition inside the subtree window and keep the rows one
            # level down — far fewer candidates than walking the child
            # list when elements have many non-matching children.
            levels = index.levels
            for p in ctx_pres:
                child_level = levels[p] + 1
                gathered.extend(
                    q for q in index.window(p, p + sizes[p], local_name)
                    if levels[q] == child_level)
        else:
            for p in ctx_pres:
                end = p + sizes[p]
                q = p + 1
                while q <= end:
                    gathered.append(q)
                    q += sizes[q] + 1
        gathered.sort()  # children of nested contexts interleave
        out_pres = gathered
    elif axis == "parent":
        parent_set: set[int] = set(owner_pres)
        for p in ctx_pres:
            parent = nodes[p].parent
            if parent is not None:
                parent_set.add(rank_of(parent))
        out_pres = sorted(parent_set)
    elif axis in ("ancestor", "ancestor-or-self"):
        ancestor_set: set[int] = set()
        chains = [nodes[p].parent for p in ctx_pres]
        chains.extend(a.parent for a in attr_members)
        for node in chains:
            while node is not None:
                q = rank_of(node)
                if q in ancestor_set:
                    break  # staircase early exit: chain already seen
                ancestor_set.add(q)
                node = node.parent
        if axis == "ancestor-or-self":
            ancestor_set.update(ctx_pres)
        out_pres = sorted(ancestor_set)
    elif axis in ("following-sibling", "preceding-sibling"):
        sibling_set: set[int] = set()
        for p in ctx_pres:
            parent = nodes[p].parent
            if parent is None:
                continue
            pp = rank_of(parent)
            if axis == "following-sibling":
                q = p + sizes[p] + 1
                end = pp + sizes[pp]
                while q <= end:
                    sibling_set.add(q)
                    q += sizes[q] + 1
            else:
                q = pp + 1
                while q < p:
                    sibling_set.add(q)
                    q += sizes[q] + 1
        out_pres = sorted(sibling_set)
    elif axis == "following":
        ends = [p + sizes[p] for p in ctx_pres]
        ends.extend(p + sizes[p] for p in owner_pres)
        if ends:
            out_pres = index.after(min(ends), local_name)
    elif axis == "preceding":
        starts = ctx_pres + owner_pres
        if starts:
            # preceding(p1) ⊆ preceding(p2) for p1 < p2, so the whole
            # context collapses to the max boundary's window.  Instead
            # of materialising [0, boundary) and testing every rank
            # against the ancestor set, emit the contiguous ranges
            # *between* the boundary's ancestor ranks — the window
            # shrinks to exactly the preceding rows, and the tag
            # partition case bisects each range instead of filtering.
            boundary = max(starts)
            out_pres = _preceding_ranges(index, boundary, local_name)
    else:  # pragma: no cover - callers restrict axes
        raise ValueError(f"unknown axis {axis}")

    if match_all:
        out_nodes = [nodes[q] for q in out_pres]
    else:
        out_nodes = [node for node in (nodes[q] for q in out_pres)
                     if matches(node)]
    if extra:
        from repro.xdm.sequence import document_order_sort
        return document_order_sort(out_nodes + extra)
    return out_nodes


#: The axes :func:`axis_scan_batched` supports — declared next to the
#: implementation so callers gating on it cannot drift.  All twelve
#: XPath axes: a single context node needs no staircase pruning, so
#: each context's scan is an independent window kernel.
BATCHED_AXES = frozenset(
    ("self", "child", "descendant", "descendant-or-self", "attribute",
     "parent", "ancestor", "ancestor-or-self", "following", "preceding",
     "following-sibling", "preceding-sibling"))

#: Axes whose predicate positions count in *reverse* document order
#: (XPath: position 1 is the nearest ancestor / closest preceding
#: node).  Step output is document-ordered regardless — only the
#: positional-predicate rank computation flips direction.
REVERSE_AXES = frozenset(
    ("ancestor", "ancestor-or-self", "preceding", "preceding-sibling"))


def axis_scan_batched(index: StructuralIndex, axis: str,
                      pairs: list[tuple],
                      matches: Callable[[Node], bool],
                      local_name: Optional[str] = None,
                      match_all: bool = False,
                      limit: Optional[int] = None) -> list[tuple]:
    """Set-at-a-time axis scan over many single-node contexts.

    *pairs* is ``[(tag, pre), ...]`` — one context node per tag (a
    loop-lifted iteration), tags in emission order.  One call scans
    every context against the shared pre/size/level columns with the
    per-axis dispatch hoisted out of the loop, returning ``(tag, node)``
    rows in per-tag document order — the batched form of
    :func:`axis_window_scan` the algebra layer uses for the
    overwhelmingly common one-context-per-iteration plans.

    The windows per axis: descendant is ``(p, p+size]``; child is
    descendant ∧ ``level = level+1`` (the size-skip scan, or the tag
    partition with a level filter); following is ``pre > p+size``
    (everything past the subtree — ancestors precede ``p``, so the
    boundary alone suffices); preceding is ``[0, p)`` minus the
    ancestor ranks, emitted as the contiguous ranges between them;
    siblings are the parent's window with size-skips; ancestors walk
    the (cached-rank) parent chain.

    ``limit`` keeps only each context's first *limit* matches in *axis
    order* — the early-exit for a leading positional ``[n]`` predicate:
    forward axes stop scanning after the limit-th hit, reverse axes
    keep the last *limit* document-ordered matches (their first in axis
    order).  Output rows stay in document order either way.
    """
    nodes = index.nodes
    sizes = index.sizes
    rank_of = index.rank_of
    out: list[tuple] = []
    if limit is not None and limit <= 0:
        return out
    if axis == "attribute":
        for tag, p in pairs:
            emitted = 0
            for attribute in nodes[p].attributes:
                if matches(attribute):
                    out.append((tag, attribute))
                    emitted += 1
                    if emitted == limit:
                        break
    elif axis == "self":
        for tag, p in pairs:
            node = nodes[p]
            if match_all or matches(node):
                out.append((tag, node))
    elif axis == "parent":
        # The level−1 ancestor: the nearest q < p with
        # levels[q] == levels[p] − 1, reached in O(1) through the
        # owner chain the index maintains.
        for tag, p in pairs:
            parent = nodes[p].parent
            if parent is not None and (match_all or matches(parent)):
                out.append((tag, parent))
    elif axis == "child":
        levels = index.levels
        if local_name is not None:
            pres = index.name_pres(local_name)
            for tag, p in pairs:
                child_level = levels[p] + 1
                lo = bisect_right(pres, p)
                hi = bisect_right(pres, p + sizes[p], lo)
                emitted = 0
                for q in pres[lo:hi]:
                    if levels[q] == child_level:
                        node = nodes[q]
                        if matches(node):
                            out.append((tag, node))
                            emitted += 1
                            if emitted == limit:
                                break
        else:
            for tag, p in pairs:
                end = p + sizes[p]
                q = p + 1
                emitted = 0
                while q <= end:
                    node = nodes[q]
                    if match_all or matches(node):
                        out.append((tag, node))
                        emitted += 1
                        if emitted == limit:
                            break
                    q += sizes[q] + 1
    elif axis in ("descendant", "descendant-or-self"):
        include_self = axis == "descendant-or-self"
        if local_name is not None:
            pres = index.name_pres(local_name)
            for tag, p in pairs:
                emitted = 0
                if include_self:
                    node = nodes[p]
                    if matches(node):
                        out.append((tag, node))
                        emitted += 1
                if emitted == limit:
                    continue
                lo = bisect_right(pres, p)
                hi = bisect_right(pres, p + sizes[p], lo)
                for q in pres[lo:hi]:
                    node = nodes[q]
                    if matches(node):
                        out.append((tag, node))
                        emitted += 1
                        if emitted == limit:
                            break
        else:
            for tag, p in pairs:
                start = p if include_self else p + 1
                emitted = 0
                for q in range(start, p + sizes[p] + 1):
                    node = nodes[q]
                    if match_all or matches(node):
                        out.append((tag, node))
                        emitted += 1
                        if emitted == limit:
                            break
    elif axis in ("ancestor", "ancestor-or-self"):
        # Axis order is nearest-first (reverse document order): collect
        # up the chain — the early exit truncates there — then reverse
        # into document order for emission.
        for tag, p in pairs:
            chain: list[Node] = []
            node = nodes[p]
            if axis == "ancestor-or-self" and (match_all or matches(node)):
                chain.append(node)
            if limit is None or len(chain) < limit:
                parent = node.parent
                while parent is not None:
                    if match_all or matches(parent):
                        chain.append(parent)
                        if limit is not None and len(chain) == limit:
                            break
                    parent = parent.parent
            for node in reversed(chain):
                out.append((tag, node))
    elif axis == "following-sibling":
        for tag, p in pairs:
            parent = nodes[p].parent
            if parent is None:
                continue
            pp = rank_of(parent)
            end = pp + sizes[pp]
            q = p + sizes[p] + 1
            emitted = 0
            while q <= end:
                node = nodes[q]
                if match_all or matches(node):
                    out.append((tag, node))
                    emitted += 1
                    if emitted == limit:
                        break
                q += sizes[q] + 1
    elif axis == "preceding-sibling":
        # Size-skips only run forward, so collect the parent's window in
        # document order and keep the *last* limit matches (nearest
        # siblings first in axis order).
        for tag, p in pairs:
            parent = nodes[p].parent
            if parent is None:
                continue
            pp = rank_of(parent)
            collected: list[Node] = []
            q = pp + 1
            while q < p:
                node = nodes[q]
                if match_all or matches(node):
                    collected.append(node)
                q += sizes[q] + 1
            if limit is not None:
                collected = collected[-limit:]
            for node in collected:
                out.append((tag, node))
    elif axis == "following":
        if local_name is not None:
            pres = index.name_pres(local_name)
            for tag, p in pairs:
                emitted = 0
                for q in pres[bisect_right(pres, p + sizes[p]):]:
                    node = nodes[q]
                    if matches(node):
                        out.append((tag, node))
                        emitted += 1
                        if emitted == limit:
                            break
        else:
            total = len(nodes)
            for tag, p in pairs:
                emitted = 0
                for q in range(p + sizes[p] + 1, total):
                    node = nodes[q]
                    if match_all or matches(node):
                        out.append((tag, node))
                        emitted += 1
                        if emitted == limit:
                            break
    elif axis == "preceding":
        for tag, p in pairs:
            collected = []
            for q in _preceding_ranges(index, p, local_name):
                node = nodes[q]
                if match_all or matches(node):
                    collected.append(node)
            if limit is not None:
                collected = collected[-limit:]
            for node in collected:
                out.append((tag, node))
    else:  # pragma: no cover - callers restrict axes
        raise ValueError(f"axis {axis} is not a batched axis")
    return out


def tree_groups(nodes: list[Node]) -> list[tuple[Node, list[Node]]]:
    """Group nodes by tree root, groups ordered by global document order.

    Every tree root carries the minimal order key of its tree and
    distinct trees occupy disjoint key ranges, so concatenating per-group
    results in root-key order equals one global document-order merge.
    """
    groups: dict[int, tuple[Node, list[Node]]] = {}
    for node in nodes:
        root = node.root()
        entry = groups.get(id(root))
        if entry is None:
            groups[id(root)] = (root, [node])
        else:
            entry[1].append(node)
    return sorted(groups.values(), key=lambda entry: entry[0].order_key)
