"""Typed atomic values and the XQuery casting / comparison rules.

An :class:`AtomicValue` pairs a Python value with an XML Schema type
annotation.  The casting table follows XQuery 1.0 functions & operators
(F&O) section 17; we implement the subset reachable from the types the
XRPC protocol serialises.
"""

from __future__ import annotations

import math
from decimal import Decimal, InvalidOperation
from typing import Any

from repro.errors import DynamicError, TypeError_
from repro.xdm.types import XSType, xs, type_by_name


class AtomicValue:
    """A single typed atomic value.

    Parameters
    ----------
    value:
        The underlying Python value (``str``, ``int``, ``Decimal``,
        ``float`` or ``bool``; dates are stored in lexical form).
    type_:
        XML Schema type annotation.
    """

    __slots__ = ("value", "type")

    def __init__(self, value: Any, type_: XSType) -> None:
        self.value = value
        self.type = type_

    # -- lexical form -----------------------------------------------------

    def string_value(self) -> str:
        """Canonical lexical representation (used by serialization)."""
        if self.type is xs.boolean:
            return "true" if self.value else "false"
        if self.type.derives_from(xs.double) or self.type.derives_from(xs.float):
            return _double_to_lexical(float(self.value))
        if isinstance(self.value, Decimal):
            text = format(self.value, "f")
            if "." in text:
                text = text.rstrip("0").rstrip(".")
            return text or "0"
        return str(self.value)

    # -- numeric helpers --------------------------------------------------

    @property
    def is_numeric(self) -> bool:
        return self.type.is_numeric

    def as_float(self) -> float:
        return float(self.value)

    # -- comparisons ------------------------------------------------------

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"{self.type.name}({self.string_value()!r})"

    def __eq__(self, other: object) -> bool:
        """Structural equality, used mainly in tests.

        Query-level comparisons go through :func:`value_compare` which
        applies the XQuery casting rules; this is plain value+type equality
        with numeric cross-type tolerance.
        """
        if not isinstance(other, AtomicValue):
            return NotImplemented
        if self.is_numeric and other.is_numeric:
            return float(self.value) == float(other.value)
        return self.type is other.type and self.value == other.value

    def __hash__(self) -> int:
        if self.is_numeric:
            return hash(float(self.value))
        return hash((self.type.name, self.value))


# ---------------------------------------------------------------------------
# Constructors


def untyped(text: str) -> AtomicValue:
    return AtomicValue(text, xs.untypedAtomic)


def string(text: str) -> AtomicValue:
    return AtomicValue(text, xs.string)


def integer(value: int) -> AtomicValue:
    return AtomicValue(int(value), xs.integer)


def decimal(value: Decimal | int | str) -> AtomicValue:
    return AtomicValue(Decimal(value), xs.decimal)


def double(value: float) -> AtomicValue:
    return AtomicValue(float(value), xs.double)


def boolean(value: bool) -> AtomicValue:
    return AtomicValue(bool(value), xs.boolean)


def anyuri(value: str) -> AtomicValue:
    return AtomicValue(value, xs.anyURI)


# ---------------------------------------------------------------------------
# Casting


def _double_to_lexical(value: float) -> str:
    if math.isnan(value):
        return "NaN"
    if math.isinf(value):
        return "INF" if value > 0 else "-INF"
    if value == int(value) and abs(value) < 1e15:
        return str(int(value))
    return repr(value)


def _parse_double(text: str) -> float:
    text = text.strip()
    if text == "INF":
        return math.inf
    if text == "-INF":
        return -math.inf
    if text == "NaN":
        return math.nan
    return float(text)


def cast(value: AtomicValue, target: XSType) -> AtomicValue:
    """Cast *value* to *target* following XQuery casting rules.

    Raises
    ------
    DynamicError
        With code ``FORG0001`` when the lexical form is invalid for the
        target type, or ``XPTY0004`` when the cast is not permitted.
    """
    if value.type is target:
        return value
    if value.type.derives_from(target):
        return AtomicValue(value.value, target)

    text = value.string_value()
    try:
        if target is xs.string or target.derives_from(xs.string):
            return AtomicValue(text, target)
        if target is xs.untypedAtomic:
            return AtomicValue(text, target)
        if target is xs.anyURI:
            return AtomicValue(text.strip(), target)
        if target is xs.boolean:
            return _cast_boolean(value, text)
        if target.derives_from(xs.integer):
            return _cast_integer(value, text, target)
        if target.derives_from(xs.decimal):
            return _cast_decimal(value, text, target)
        if target is xs.double or target is xs.float:
            return AtomicValue(_parse_double(text), target)
        if target in (xs.date, xs.time, xs.dateTime, xs.duration,
                      xs.gYear, xs.gMonth, xs.gDay, xs.QName,
                      xs.base64Binary, xs.hexBinary):
            # Stored in lexical form; validated lightly.
            return AtomicValue(text.strip(), target)
    except (ValueError, InvalidOperation) as exc:
        raise DynamicError(
            "FORG0001",
            f"cannot cast {value.type.name} value {text!r} to {target.name}",
        ) from exc
    raise TypeError_(
        "XPTY0004", f"cast from {value.type.name} to {target.name} not allowed"
    )


def _cast_boolean(value: AtomicValue, text: str) -> AtomicValue:
    if value.is_numeric:
        number = float(value.value)
        return AtomicValue(not (number == 0 or math.isnan(number)), xs.boolean)
    text = text.strip()
    if text in ("true", "1"):
        return AtomicValue(True, xs.boolean)
    if text in ("false", "0"):
        return AtomicValue(False, xs.boolean)
    raise DynamicError("FORG0001", f"invalid boolean lexical form {text!r}")


def _cast_integer(value: AtomicValue, text: str, target: XSType) -> AtomicValue:
    if value.type is xs.boolean:
        return AtomicValue(1 if value.value else 0, target)
    if value.is_numeric:
        number = float(value.value)
        if math.isnan(number) or math.isinf(number):
            raise DynamicError("FOCA0002", f"cannot cast {text} to integer")
        return AtomicValue(int(number), target)
    return AtomicValue(int(text.strip()), target)


def _cast_decimal(value: AtomicValue, text: str, target: XSType) -> AtomicValue:
    if value.type is xs.boolean:
        return AtomicValue(Decimal(1 if value.value else 0), target)
    if value.is_numeric:
        return AtomicValue(Decimal(str(value.value)), target)
    return AtomicValue(Decimal(text.strip()), target)


def cast_by_name(value: AtomicValue, type_name: str) -> AtomicValue:
    """Cast using a lexical type name, e.g. ``"xs:integer"``."""
    return cast(value, type_by_name(type_name))


# ---------------------------------------------------------------------------
# Value comparison (the 'eq', 'lt', ... operators and general comparisons)


_OPS = {
    "eq": lambda c: c == 0,
    "ne": lambda c: c != 0,
    "lt": lambda c: c < 0,
    "le": lambda c: c <= 0,
    "gt": lambda c: c > 0,
    "ge": lambda c: c >= 0,
}


def _numeric_key(value: AtomicValue) -> float:
    return float(value.value)


def value_compare(left: AtomicValue, op: str, right: AtomicValue) -> bool:
    """Apply a value comparison operator with XQuery casting rules.

    ``xs:untypedAtomic`` operands are cast to ``xs:string`` (value
    comparison rule); numeric operands are promoted to a common type.
    """
    if left.type is xs.untypedAtomic:
        left = cast(left, xs.string)
    if right.type is xs.untypedAtomic:
        right = cast(right, xs.string)
    ordering = _compare_key(left, right)
    return _OPS[op](ordering)


def general_compare_pair(left: AtomicValue, op: str, right: AtomicValue) -> bool:
    """One atom-pair of a general comparison (``=``, ``<`` ...).

    General comparison casts untypedAtomic operands to the *other*
    operand's type (or double when compared against a numeric, string when
    both are untyped).
    """
    if left.type is xs.untypedAtomic and right.type is xs.untypedAtomic:
        left, right = cast(left, xs.string), cast(right, xs.string)
    elif left.type is xs.untypedAtomic:
        target = xs.double if right.is_numeric else (
            xs.string if right.type is xs.anyURI else right.type)
        left = cast(left, target)
    elif right.type is xs.untypedAtomic:
        target = xs.double if left.is_numeric else (
            xs.string if left.type is xs.anyURI else left.type)
        right = cast(right, target)
    return _OPS[op](_compare_key(left, right))


def _compare_key(left: AtomicValue, right: AtomicValue) -> int:
    """Return -1/0/+1 ordering between two comparable atomic values."""
    if left.is_numeric and right.is_numeric:
        lv, rv = _numeric_key(left), _numeric_key(right)
        if math.isnan(lv) or math.isnan(rv):
            # NaN compares false to everything; signal via sentinel.
            return 2  # no _OPS predicate matches 2 except 'ne'
        return (lv > rv) - (lv < rv)
    if left.type is xs.boolean and right.type is xs.boolean:
        return (left.value > right.value) - (left.value < right.value)
    lk, rk = _comparable_strings(left, right)
    return (lk > rk) - (lk < rk)


def _comparable_strings(left: AtomicValue, right: AtomicValue) -> tuple[str, str]:
    string_like = (xs.string, xs.anyURI, xs.untypedAtomic)
    l_ok = any(left.type.derives_from(t) for t in string_like)
    r_ok = any(right.type.derives_from(t) for t in string_like)
    same_family = left.type.derives_from(right.type) or right.type.derives_from(left.type)
    if (l_ok and r_ok) or same_family:
        return left.string_value(), right.string_value()
    raise TypeError_(
        "XPTY0004",
        f"cannot compare {left.type.name} with {right.type.name}",
    )
