"""XML Schema atomic type lattice used by the XDM.

The XRPC SOAP protocol annotates every atomic parameter value with its
XML Schema type (``xsi:type="xs:string"`` etc.), so the type system needs
to round-trip faithfully through messages.  We implement the subset of
the XML Schema type hierarchy that XQuery 1.0 exposes as atomic types,
plus ``xs:untypedAtomic`` and ``xs:anyAtomicType``.
"""

from __future__ import annotations

from typing import Optional


class XSType:
    """A named XML Schema atomic type.

    Types form a single-inheritance hierarchy rooted at
    ``xs:anyAtomicType``; :meth:`derives_from` walks it.
    """

    def __init__(self, local_name: str, parent: Optional["XSType"]) -> None:
        self.local_name = local_name
        self.parent = parent

    @property
    def name(self) -> str:
        """Prefixed lexical name, e.g. ``"xs:integer"``."""
        return f"xs:{self.local_name}"

    def derives_from(self, other: "XSType") -> bool:
        """True if *self* is *other* or a (transitive) subtype of it."""
        cursor: Optional[XSType] = self
        while cursor is not None:
            if cursor is other:
                return True
            cursor = cursor.parent
        return False

    @property
    def is_numeric(self) -> bool:
        return any(
            self.derives_from(t)
            for t in (xs.decimal, xs.double, xs.float)
        )

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"XSType({self.name})"


class _Registry:
    """Namespace-style holder of the built-in atomic types (``xs.*``)."""

    def __init__(self) -> None:
        self.anyAtomicType = XSType("anyAtomicType", None)
        self.untypedAtomic = XSType("untypedAtomic", self.anyAtomicType)
        self.string = XSType("string", self.anyAtomicType)
        self.boolean = XSType("boolean", self.anyAtomicType)
        self.decimal = XSType("decimal", self.anyAtomicType)
        self.integer = XSType("integer", self.decimal)
        self.long = XSType("long", self.integer)
        self.int = XSType("int", self.long)
        self.short = XSType("short", self.int)
        self.byte = XSType("byte", self.short)
        self.nonNegativeInteger = XSType("nonNegativeInteger", self.integer)
        self.positiveInteger = XSType("positiveInteger", self.nonNegativeInteger)
        self.unsignedLong = XSType("unsignedLong", self.nonNegativeInteger)
        self.unsignedInt = XSType("unsignedInt", self.unsignedLong)
        self.double = XSType("double", self.anyAtomicType)
        self.float = XSType("float", self.anyAtomicType)
        self.date = XSType("date", self.anyAtomicType)
        self.time = XSType("time", self.anyAtomicType)
        self.dateTime = XSType("dateTime", self.anyAtomicType)
        self.duration = XSType("duration", self.anyAtomicType)
        self.anyURI = XSType("anyURI", self.anyAtomicType)
        self.QName = XSType("QName", self.anyAtomicType)
        self.base64Binary = XSType("base64Binary", self.anyAtomicType)
        self.hexBinary = XSType("hexBinary", self.anyAtomicType)
        self.gYear = XSType("gYear", self.anyAtomicType)
        self.gMonth = XSType("gMonth", self.anyAtomicType)
        self.gDay = XSType("gDay", self.anyAtomicType)
        self.normalizedString = XSType("normalizedString", self.string)
        self.token = XSType("token", self.normalizedString)
        self.language = XSType("language", self.token)
        self.Name = XSType("Name", self.token)
        self.NCName = XSType("NCName", self.Name)
        self.ID = XSType("ID", self.NCName)
        self.IDREF = XSType("IDREF", self.NCName)

    def all_types(self) -> dict[str, XSType]:
        return {
            value.name: value
            for value in vars(self).values()
            if isinstance(value, XSType)
        }


xs = _Registry()
UNTYPED_ATOMIC = xs.untypedAtomic

_BY_NAME = xs.all_types()


def type_by_name(name: str) -> XSType:
    """Resolve a lexical type name like ``"xs:integer"`` to its type object.

    Raises
    ------
    KeyError
        If the name is not a known built-in atomic type.
    """
    if ":" not in name:
        name = f"xs:{name}"
    return _BY_NAME[name]


def is_known_type(name: str) -> bool:
    if ":" not in name:
        name = f"xs:{name}"
    return name in _BY_NAME
