"""Sequence-level XDM operations.

XQuery values are flat sequences of items.  This module implements the
operations the evaluator needs on whole sequences: atomization, effective
boolean value (EBV), string value, fn:deep-equal, and document-order
sorting with duplicate elimination (the semantics of path steps and the
``|`` operator).
"""

from __future__ import annotations

from typing import Iterable, Sequence as PySequence, Union

from repro.errors import DynamicError, TypeError_
from repro.xdm.atomic import AtomicValue, boolean as make_boolean, value_compare
from repro.xdm.nodes import (
    AttributeNode,
    CommentNode,
    DocumentNode,
    ElementNode,
    Node,
    ProcessingInstructionNode,
    TextNode,
)
from repro.xdm.types import xs

Item = Union[AtomicValue, Node]
XDMSequence = list  # list[Item]


def is_node(item: Item) -> bool:
    return isinstance(item, Node)


def is_atomic(item: Item) -> bool:
    return isinstance(item, AtomicValue)


def atomize(sequence: Iterable[Item]) -> list[AtomicValue]:
    """fn:data() — replace each node by its typed value."""
    result: list[AtomicValue] = []
    for item in sequence:
        if isinstance(item, Node):
            result.extend(item.typed_value())
        else:
            result.append(item)
    return result


def effective_boolean_value(sequence: PySequence[Item]) -> bool:
    """The EBV rules of XPath 2.0 (fn:boolean)."""
    if not sequence:
        return False
    first = sequence[0]
    if isinstance(first, Node):
        return True
    if len(sequence) > 1:
        raise DynamicError(
            "FORG0006",
            "effective boolean value of a sequence of multiple atomic values",
        )
    value = first
    if value.type is xs.boolean:
        return bool(value.value)
    if value.is_numeric:
        number = float(value.value)
        return not (number == 0 or number != number)  # NaN check
    if value.type.derives_from(xs.string) or value.type in (
            xs.untypedAtomic, xs.anyURI):
        return bool(value.string_value())
    raise DynamicError(
        "FORG0006", f"no effective boolean value for type {value.type.name}")


def string_value(sequence: PySequence[Item]) -> str:
    """fn:string() applied to a zero-or-one item sequence."""
    if not sequence:
        return ""
    if len(sequence) > 1:
        raise TypeError_("XPTY0004", "fn:string expects at most one item")
    item = sequence[0]
    if isinstance(item, Node):
        return item.string_value()
    return item.string_value()


def singleton(item: Item) -> list[Item]:
    return [item]


def document_order_sort(nodes: Iterable[Node]) -> list[Node]:
    """Sort nodes by document order and remove duplicates (by identity)."""
    seen: set[int] = set()
    unique: list[Node] = []
    for node in nodes:
        if id(node) not in seen:
            seen.add(id(node))
            unique.append(node)
    unique.sort(key=lambda n: n.order_key)
    return unique


def deep_equal(left: PySequence[Item], right: PySequence[Item]) -> bool:
    """fn:deep-equal — pairwise structural equality of two sequences."""
    if len(left) != len(right):
        return False
    return all(_item_deep_equal(a, b) for a, b in zip(left, right))


def _item_deep_equal(left: Item, right: Item) -> bool:
    if isinstance(left, AtomicValue) and isinstance(right, AtomicValue):
        try:
            return value_compare(left, "eq", right)
        except (DynamicError, TypeError_):
            return False
    if isinstance(left, Node) and isinstance(right, Node):
        return _node_deep_equal(left, right)
    return False


def _node_deep_equal(left: Node, right: Node) -> bool:
    if left.kind != right.kind:
        return False
    if isinstance(left, (TextNode, CommentNode)):
        return left.string_value() == right.string_value()
    if isinstance(left, ProcessingInstructionNode):
        assert isinstance(right, ProcessingInstructionNode)
        return left.target == right.target and left.content == right.content
    if isinstance(left, AttributeNode):
        assert isinstance(right, AttributeNode)
        return left.local_name == right.local_name and left.value == right.value
    if isinstance(left, DocumentNode):
        return _children_deep_equal(left, right)
    if isinstance(left, ElementNode):
        assert isinstance(right, ElementNode)
        if left.local_name != right.local_name:
            return False
        left_attrs = {a.local_name: a.value for a in left.attributes
                      if not a.name.startswith("xmlns")}
        right_attrs = {a.local_name: a.value for a in right.attributes
                       if not a.name.startswith("xmlns")}
        if left_attrs != right_attrs:
            return False
        return _children_deep_equal(left, right)
    return False


def _comparable_children(node: Node) -> list[Node]:
    """Children relevant for deep-equal: elements and non-whitespace text."""
    children = []
    for child in node.children:
        if isinstance(child, TextNode):
            children.append(child)
        elif isinstance(child, ElementNode):
            children.append(child)
    return children


def _children_deep_equal(left: Node, right: Node) -> bool:
    left_children = _comparable_children(left)
    right_children = _comparable_children(right)
    if len(left_children) != len(right_children):
        return False
    return all(
        _node_deep_equal(a, b) for a, b in zip(left_children, right_children))


def ebv_atomic(value: bool) -> list[AtomicValue]:
    return [make_boolean(value)]
