"""XDM node kinds with node identity and global document order.

Node identity is Python object identity.  Document order is a total order
across *all* documents in a process: each node carries an ``order_key``
``(doc_id, serial)`` assigned by a :class:`NodeFactory` at construction
time.  Parsers and constructors create nodes in document order, so the
serial numbers directly encode the order within one tree, and ``doc_id``
provides the paper-mandated "consistent order over nodes from different
documents".

Call-by-value semantics of XRPC (section 2.2 of the paper) are realised
with :func:`copy_tree`: marshaling a node into a SOAP message and back
produces a fresh tree with new identity, whose upward/sideways axes are
empty at the remote side.
"""

from __future__ import annotations

import itertools
import threading
from typing import Iterator, Optional

from repro.xdm.atomic import AtomicValue, untyped

_doc_counter = itertools.count(1)
_doc_counter_lock = threading.Lock()

#: Default spacing between consecutive serials (the *gapped pre-plane*).
#: Stamping with gaps leaves ``KEY_STRIDE - 1`` unused serials between
#: neighbouring nodes, so a small XQUF insert usually mints its keys
#: inside the gap — O(change) — instead of restamping the whole tree.
#: ``stride=1`` recovers the historical dense encoding (the ablation
#: baseline of ``bench_incremental_updates``).
KEY_STRIDE = 32


def _next_doc_id() -> int:
    with _doc_counter_lock:
        return next(_doc_counter)


class NodeFactory:
    """Creates nodes of one tree, assigning document-order keys.

    One factory corresponds to one document (or one constructed fragment
    root): all nodes it makes share a ``doc_id`` and receive increasing
    serial numbers.  Serials are spaced ``stride`` apart (gapped
    pre-plane; see :data:`KEY_STRIDE`) so later inserts can mint
    in-between keys without restamping neighbours.  The serial is the
    node's *pre* coordinate in the XPath-accelerator encoding; creators
    that know their depth (the XML parser, ``copy_tree``) pass ``level``
    so nodes come out fully pre/size/level-stamped without a post-hoc
    walk — ``size`` (in serial units: the subtree's descendant window is
    ``pre < x <= pre + size``, attributes included) is stamped by the
    creator once the subtree is complete (see :meth:`last_serial`).
    """

    def __init__(self, stride: Optional[int] = None) -> None:
        self.doc_id = _next_doc_id()
        self.stride = KEY_STRIDE if stride is None else max(1, stride)
        self._next_serial = 0
        self._issued = 0

    def _key(self) -> tuple[int, int]:
        serial = self._next_serial
        self._next_serial = serial + self.stride
        self._issued += 1
        return (self.doc_id, serial)

    @property
    def issued(self) -> int:
        """Number of keys issued so far."""
        return self._issued

    @property
    def last_serial(self) -> int:
        """Serial of the most recently issued key (``-1`` before the
        first); a container created at serial ``s`` whose subtree is
        complete has ``size = factory.last_serial - s``."""
        return self._next_serial - self.stride

    def document(self, uri: Optional[str] = None,
                 level: int = 0) -> "DocumentNode":
        node = DocumentNode(self._key(), uri)
        node.level = level
        return node

    def element(self, name: str, ns_uri: Optional[str] = None,
                level: int = 0) -> "ElementNode":
        node = ElementNode(self._key(), name, ns_uri)
        node.level = level
        return node

    def attribute(self, name: str, value: str,
                  ns_uri: Optional[str] = None,
                  level: int = 0) -> "AttributeNode":
        node = AttributeNode(self._key(), name, value, ns_uri)
        node.level = level
        return node

    def text(self, content: str, level: int = 0) -> "TextNode":
        node = TextNode(self._key(), content)
        node.level = level
        return node

    def comment(self, content: str, level: int = 0) -> "CommentNode":
        node = CommentNode(self._key(), content)
        node.level = level
        return node

    def processing_instruction(self, target: str, content: str,
                               level: int = 0) -> "ProcessingInstructionNode":
        node = ProcessingInstructionNode(self._key(), target, content)
        node.level = level
        return node


class Node:
    """Base class of the seven XDM node kinds (we implement six;

    namespace nodes are not exposed by this engine, matching most XQuery
    implementations).
    """

    kind: str = "node"

    # XPath-accelerator stamps.  ``pre`` is the document-order serial
    # (the same key every document-order comparison in the engine uses);
    # serials are *gapped* (see :data:`KEY_STRIDE`), so the only
    # invariant is strict monotonicity in document order — never
    # density.  ``size`` is the subtree extent in serial units: every
    # descendant (attributes included) has ``pre < x <= pre + size``,
    # and the window may cover unused serials (insert gaps, freed
    # serials of deleted nodes).  ``level`` is the depth below the
    # construction root.  Stamped in one pass by the parsers /
    # ``copy_tree``; after updates the XQUF applier mints in-gap keys
    # for spliced content (worst case ``reencode_tree``).  Axis
    # evaluation itself reads the authoritative per-tree
    # :class:`~repro.xdm.structural.StructuralIndex` (positional pre
    # ranks), which also covers trees assembled without stamps.
    size: int = 0
    level: int = 0
    # Back-reference to the StructuralIndex that covers this node, set
    # when one is built; mutators flip its ``stale`` bit (O(1)).
    _sidx = None

    def __init__(self, order_key: tuple[int, int]) -> None:
        self.order_key = order_key
        self.parent: Optional[Node] = None

    @property
    def pre(self) -> int:
        return self.order_key[1]

    def _invalidate_index(self) -> None:
        index = self._sidx
        if index is not None:
            index.stale = True

    # -- axes ------------------------------------------------------------

    @property
    def children(self) -> list["Node"]:
        return []

    @property
    def attributes(self) -> list["AttributeNode"]:
        return []

    def root(self) -> "Node":
        node: Node = self
        while node.parent is not None:
            node = node.parent
        return node

    def ancestors(self) -> Iterator["Node"]:
        node = self.parent
        while node is not None:
            yield node
            node = node.parent

    def descendants(self, include_self: bool = False) -> Iterator["Node"]:
        """Subtree in document order, iteratively (deep trees would
        overflow the interpreter stack with the obvious recursion)."""
        if include_self:
            yield self
        stack = [iter(self.children)]
        while stack:
            child = next(stack[-1], None)
            if child is None:
                stack.pop()
                continue
            yield child
            children = child.children
            if children:
                stack.append(iter(children))

    def following_siblings(self) -> Iterator["Node"]:
        if self.parent is None or isinstance(self, AttributeNode):
            return
        siblings = self.parent.children
        index = _index_of(siblings, self)
        yield from siblings[index + 1:]

    def preceding_siblings(self) -> Iterator["Node"]:
        if self.parent is None or isinstance(self, AttributeNode):
            return
        siblings = self.parent.children
        index = _index_of(siblings, self)
        yield from reversed(siblings[:index])

    def following(self) -> Iterator["Node"]:
        """Nodes after self in document order, excluding descendants."""
        node: Node = self
        while node is not None:
            for sibling in node.following_siblings():
                yield from sibling.descendants(include_self=True)
            node = node.parent  # type: ignore[assignment]
            if node is None:
                break

    def preceding(self) -> Iterator["Node"]:
        """Nodes before self in document order, excluding ancestors.

        Yields in reverse document order without ever materialising the
        whole document: climbing the ancestor chain, each preceding
        sibling's subtree is emitted back-to-front.  Nodes *after* self
        are never visited (the old implementation walked the entire tree
        forward and reversed a list).  For an attribute, the chain starts
        at its owner, so the result equals the owner's preceding axis.
        """
        node: Optional[Node] = self
        while node is not None:
            for sibling in node.preceding_siblings():
                subtree = [sibling]
                subtree.extend(sibling.descendants())
                yield from reversed(subtree)
            node = node.parent

    # -- values ------------------------------------------------------------

    def string_value(self) -> str:
        raise NotImplementedError

    def typed_value(self) -> list[AtomicValue]:
        """Atomization result; untyped documents yield xs:untypedAtomic."""
        return [untyped(self.string_value())]

    @property
    def node_name(self) -> Optional[str]:
        return None

    def serialize(self, indent: bool = False) -> str:
        """Serialize this node to XML text (convenience wrapper)."""
        from repro.xml.serializer import serialize
        return serialize(self, indent=indent)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        name = self.node_name or ""
        return f"<{self.kind} {name} @{self.order_key}>"


def _index_of(nodes: list[Node], target: Node) -> int:
    """Position of *target* (by identity) in its parent's child list.

    Children are appended in document order, so a bisect on the order
    key finds the position in O(log n); identity is verified around the
    probe (several children cannot share a key within one tree), with a
    linear scan as the safety net for hand-assembled cross-factory trees
    whose keys may not be monotone.
    """
    key = target.order_key
    low, high = 0, len(nodes)
    while low < high:
        mid = (low + high) // 2
        if nodes[mid].order_key < key:
            low = mid + 1
        else:
            high = mid
    if low < len(nodes) and nodes[low] is target:
        return low
    for index, node in enumerate(nodes):
        if node is target:
            return index
    raise ValueError("node not found among parent's children")


class DocumentNode(Node):
    kind = "document"

    def __init__(self, order_key: tuple[int, int], uri: Optional[str] = None) -> None:
        super().__init__(order_key)
        self.uri = uri
        self._children: list[Node] = []

    @property
    def children(self) -> list[Node]:
        return self._children

    def append(self, child: Node) -> None:
        child.parent = self
        self._children.append(child)
        self._invalidate_index()

    def string_value(self) -> str:
        # Concatenated descendant text, via the iterative walk — nested
        # generator recursion overflowed on deep trees (atomization is
        # on the XRPC marshal hot path).
        return "".join(node.content for node in self.descendants()
                       if isinstance(node, TextNode))

    @property
    def root_element(self) -> Optional["ElementNode"]:
        for child in self._children:
            if isinstance(child, ElementNode):
                return child
        return None


class ElementNode(Node):
    kind = "element"

    def __init__(self, order_key: tuple[int, int], name: str,
                 ns_uri: Optional[str] = None) -> None:
        super().__init__(order_key)
        self.name = name            # lexical QName as written, e.g. "xrpc:call"
        # Cached local part: name tests probe it per candidate node, so
        # splitting the QName on every access is a measurable axis-step
        # cost.  Renames must go through :meth:`rename`.
        self._local_name = name.split(":")[-1] if ":" in name else name
        self.ns_uri = ns_uri        # resolved namespace URI or None
        self._attributes: list[AttributeNode] = []
        self._children: list[Node] = []
        # Prefix->URI bindings declared *on this element* (xmlns attrs).
        self.namespace_declarations: dict[str, str] = {}

    @property
    def local_name(self) -> str:
        return self._local_name

    def rename(self, name: str) -> None:
        """Change the lexical QName (XQUF ``rename node``), keeping the
        cached local part coherent."""
        self.name = name
        self._local_name = name.split(":")[-1] if ":" in name else name
        self._invalidate_index()

    @property
    def node_name(self) -> Optional[str]:
        return self.name

    @property
    def children(self) -> list[Node]:
        return self._children

    @property
    def attributes(self) -> list["AttributeNode"]:
        return self._attributes

    def append(self, child: Node) -> None:
        child.parent = self
        self._children.append(child)
        self._invalidate_index()

    def set_attribute(self, attribute: "AttributeNode") -> None:
        attribute.parent = self
        self._attributes.append(attribute)
        self._invalidate_index()

    def get_attribute(self, name: str) -> Optional["AttributeNode"]:
        """Lookup by lexical name first, falling back to local name."""
        for attribute in self._attributes:
            if attribute.name == name:
                return attribute
        for attribute in self._attributes:
            if attribute.local_name == name:
                return attribute
        return None

    def string_value(self) -> str:
        # Iterative for the same reason as DocumentNode.string_value.
        return "".join(node.content for node in self.descendants()
                       if isinstance(node, TextNode))

    def find(self, local_name: str, ns_uri: Optional[str] = None) -> Optional["ElementNode"]:
        """First child element with the given local name (+ namespace)."""
        for child in self._children:
            if isinstance(child, ElementNode) and child.local_name == local_name:
                if ns_uri is None or child.ns_uri == ns_uri:
                    return child
        return None

    def find_all(self, local_name: str, ns_uri: Optional[str] = None) -> list["ElementNode"]:
        return [
            child for child in self._children
            if isinstance(child, ElementNode) and child.local_name == local_name
            and (ns_uri is None or child.ns_uri == ns_uri)
        ]

    def child_elements(self) -> list["ElementNode"]:
        return [c for c in self._children if isinstance(c, ElementNode)]


class AttributeNode(Node):
    kind = "attribute"

    def __init__(self, order_key: tuple[int, int], name: str, value: str,
                 ns_uri: Optional[str] = None) -> None:
        super().__init__(order_key)
        self.name = name
        self._local_name = name.split(":")[-1] if ":" in name else name
        self.value = value
        self.ns_uri = ns_uri

    @property
    def local_name(self) -> str:
        return self._local_name

    def rename(self, name: str) -> None:
        """Change the lexical QName (XQUF ``rename node``), keeping the
        cached local part coherent."""
        self.name = name
        self._local_name = name.split(":")[-1] if ":" in name else name
        self._invalidate_index()

    @property
    def node_name(self) -> Optional[str]:
        return self.name

    def string_value(self) -> str:
        return self.value


class TextNode(Node):
    kind = "text"

    def __init__(self, order_key: tuple[int, int], content: str) -> None:
        super().__init__(order_key)
        self.content = content

    def string_value(self) -> str:
        return self.content


class CommentNode(Node):
    kind = "comment"

    def __init__(self, order_key: tuple[int, int], content: str) -> None:
        super().__init__(order_key)
        self.content = content

    def string_value(self) -> str:
        return self.content


class ProcessingInstructionNode(Node):
    kind = "processing-instruction"

    def __init__(self, order_key: tuple[int, int], target: str, content: str) -> None:
        super().__init__(order_key)
        self.target = target
        self.content = content

    @property
    def node_name(self) -> Optional[str]:
        return self.target

    def string_value(self) -> str:
        return self.content


def copy_tree(node: Node, factory: Optional[NodeFactory] = None) -> Node:
    """Deep-copy *node* into a fresh tree with new node identity.

    The copy is parentless (a standalone fragment), which is exactly the
    XRPC call-by-value guarantee: upward and horizontal axes evaluated on
    the copy yield empty results.
    """
    factory = factory or NodeFactory()
    return _copy_into(node, factory)


def copy_into(node: Node, factory: NodeFactory) -> Node:
    """Deep-copy *node* using an existing factory (same target tree)."""
    return _copy_into(node, factory)


def _copy_one(node: Node, factory: NodeFactory, level: int) -> Node:
    """Shallow-copy one node (attributes included — they precede the
    children in factory serial order, exactly like the parsers)."""
    if isinstance(node, DocumentNode):
        return factory.document(node.uri, level=level)
    if isinstance(node, ElementNode):
        copy = factory.element(node.name, node.ns_uri, level=level)
        copy.namespace_declarations = dict(node.namespace_declarations)
        for attribute in node.attributes:
            copy.set_attribute(
                factory.attribute(attribute.name, attribute.value,
                                  attribute.ns_uri, level=level + 1))
        return copy
    if isinstance(node, AttributeNode):
        return factory.attribute(node.name, node.value, node.ns_uri,
                                 level=level)
    if isinstance(node, TextNode):
        return factory.text(node.content, level=level)
    if isinstance(node, CommentNode):
        return factory.comment(node.content, level=level)
    if isinstance(node, ProcessingInstructionNode):
        return factory.processing_instruction(node.target, node.content,
                                              level=level)
    raise TypeError(f"cannot copy node kind {node.kind}")


def _copy_into(node: Node, factory: NodeFactory, level: int = 0) -> Node:
    """Iterative deep copy: an explicit work stack replaces the call
    stack (deep trees — XRPC call-by-value payloads routinely nest
    thousands of levels — must not hit the interpreter recursion limit).

    Serials are issued in document order by pre-order traversal, and a
    close marker stamps each container's ``size`` from the factory's
    serial counter once its subtree is complete — the same single-pass
    pre/size/level stamping the recursive version performed.
    """
    result: Optional[Node] = None
    # Work items: (source, parent_copy, level) visits, (None, copy, 0)
    # closes a container and stamps its subtree size.
    stack: list[tuple] = [(node, None, level)]
    while stack:
        source, parent_copy, depth = stack.pop()
        if source is None:
            copy = parent_copy
            copy.size = factory.last_serial - copy.order_key[1]
            continue
        copy = _copy_one(source, factory, depth)
        if result is None:
            result = copy
        if parent_copy is not None:
            parent_copy.append(copy)
        if isinstance(source, (DocumentNode, ElementNode)):
            stack.append((None, copy, 0))
            for child in reversed(source.children):
                stack.append((child, copy, depth + 1))
    assert result is not None
    return result
