"""The loop-lifting compiler.

Sequences are tables with schema ``iter|pos|item`` (section 3.1): one
row per item per iteration of the enclosing for-loop nest.  A ``loop``
relation holds the live iteration numbers so empty sequences are
representable (absence of rows).

Supported core: literals, sequence construction, ranges, variables,
FLWOR (for/let/where), arithmetic, comparisons, a few row-wise builtins
(``concat``, ``string``, ``doc``), path expressions over *every* XPath
axis — evaluated as window predicates over the
:class:`~repro.xdm.structural.StructuralIndex`
pre/size/level columns, see :mod:`repro.algebra.paths` — with
effective-boolean-value predicates and the statically positional shapes
(``[n]``, ``[last()]``, ``position()``/``last()`` comparisons, compiled
as rank computations over per-context windows), and ``execute at`` —
compiled by the Figure 2 rule.  Anything else raises
:class:`UnsupportedExpression`, signalling the caller to fall back to
the interpreter (MonetDB similarly falls back to non-loop-lifted paths
for exotic constructs).  Every :class:`UnsupportedExpression` carries a
stable ``code`` plus a message starting with the offending AST node's
type name (``"FLWOR: order by is outside the loop-lifted core"``), so
fallback telemetry can histogram *why* a query wasn't lifted.
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.algebra.paths import (
    LIFTED_AXES,
    REVERSE_AXES,
    axis_step,
    contains_filter,
    equality_probe_step,
    merge_exploded_contexts,
    positional_filter,
)
from repro.algebra.table import Table
from repro.errors import XRPCReproError
from repro.xdm.atomic import AtomicValue, general_compare_pair, integer, string
from repro.xdm.nodes import Node
from repro.xdm.sequence import atomize, effective_boolean_value
from repro.xdm.types import xs
from repro.xquery import xast as A
from repro.xquery.context import ExecutionContext, StaticContext
from repro.xquery.evaluator import (
    CompiledQuery,
    _arith,
    _fuse_descendant_steps,
    _indexable_predicate_key_path,
    node_test_matches,
    positional_predicate_spec,
)


def _ast_children(value):
    """Dataclass nodes directly reachable through one field value
    (descending through arbitrarily nested lists/tuples, so shapes like
    ``DirectElement.attributes: list[tuple[str, list[ContentPart]]]``
    are fully covered)."""
    import dataclasses

    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        yield value
    elif isinstance(value, (list, tuple)):
        for item in value:
            yield from _ast_children(item)


def iter_ast_nodes(root):
    """Every dataclass node reachable from *root*, root included."""
    import dataclasses

    stack = [root]
    while stack:
        node = stack.pop()
        yield node
        for field in dataclasses.fields(node):
            stack.extend(_ast_children(getattr(node, field.name)))


def remote_call_profile(compiled: CompiledQuery) -> tuple[int, bool]:
    """``(execute-at sites, any site calls an updating function)`` of a
    compiled query body — memoized on the compiled query, so plan-cache
    hits do not re-walk the AST.

    Both figures drive :meth:`repro.rpc.XRPCPeer.execute_query`'s
    routing.  The lifted pipeline ships one bulk message per (site,
    destination) while the batching executor groups recorded calls by
    (destination, function) *across* sites, so multi-site queries ship
    fewer messages through the latter.  The updating flag is the
    no-speculative-shipping guard: the lifted pipeline dispatches
    during evaluation, so a *dynamic* bail after an updating call
    shipped would make the interpreter fallback apply the update twice.
    Unresolvable call names count as updating (conservative: route to
    the record-then-ship batching executor).

    Compatibility shim: the figures now come from the static analyzer's
    site profile (:func:`repro.analysis.analyze_compiled`), which also
    covers ``execute at`` sites inside locally-called function bodies —
    the old body-only walk under-counted those.
    """
    from repro.analysis import analyze_compiled

    sites = analyze_compiled(compiled, has_dispatch=True).sites
    return sites.count, sites.updating_remote


def contains_predicate_spec(predicate: A.Expr) -> Optional[str]:
    """The needle of a liftable ``[contains(., "lit")]`` predicate.

    The shape the posting-list prefilter serves: an ``fn:contains``
    call whose haystack is the candidate context item and whose needle
    is a string literal (known at compile time, so the term-index plan
    can be built once per step instead of per candidate).  Returns the
    needle string, or ``None`` for every other shape.
    """
    if not isinstance(predicate, A.FunctionCall):
        return None
    if predicate.name.split(":")[-1] != "contains":
        return None
    if len(predicate.args) != 2:
        return None
    if not isinstance(predicate.args[0], A.ContextItem):
        return None
    needle = predicate.args[1]
    if not isinstance(needle, A.Literal):
        return None
    value = needle.value
    if not isinstance(value, AtomicValue) \
            or value.type not in (xs.string, xs.untypedAtomic) \
            or not isinstance(value.value, str):
        return None
    return value.value


def _dynamic_contains_needle(predicate: A.Expr) -> bool:
    """Is this a ``[contains(., needle)]`` whose needle is *not* a
    string literal?  (The liftable shape minus its static needle — the
    stable ``search-dynamic-needle`` fallback.)"""
    return (isinstance(predicate, A.FunctionCall)
            and predicate.name.split(":")[-1] == "contains"
            and len(predicate.args) == 2
            and isinstance(predicate.args[0], A.ContextItem))


def _context_free_probe(expr: A.Expr) -> bool:
    """May *expr* be evaluated under the outer loop (no candidate focus)?"""
    if isinstance(expr, (A.Literal, A.VarRef)):
        return True
    if isinstance(expr, A.SequenceExpr):
        return all(_context_free_probe(item) for item in expr.items)
    return False

# dispatch(destination, module_uri, location, function, arity,
#          calls, updating) -> list of result sequences, one per call
Dispatch = Callable[..., list]

# doc_resolver(uri) -> DocumentNode | None (same contract the
# interpreter's DynamicContext uses).
DocResolver = Callable[[str], Optional[Node]]

# Reserved environment key binding the context item ("."): not a valid
# variable name, so it can never clash with a user binding.  The context
# item lifts through for-clauses exactly like a variable table.
_DOT = "."


class UnsupportedExpression(XRPCReproError):
    """The expression is outside the loop-liftable core.

    Carries a stable machine-readable ``code`` alongside the
    human-readable message, so fallback telemetry can histogram *why*
    queries were not lifted without parsing prose (the codes survive
    message rewording):

    ===================== ==================================================
    code                  meaning
    ===================== ==================================================
    axis-not-lifted       a step uses an axis outside :data:`LIFTED_AXES`
    step-not-lifted       a non-axis path step (filter-expression step)
    expr-not-lifted       an expression kind outside the core
    clause-not-lifted     a FLWOR clause kind outside the core
    function-not-lifted   a function outside the row-wise builtins
    comparison-not-lifted a non-general comparison
    positional-runtime    a predicate produced a number at runtime
    search-dynamic-needle a ``contains(., needle)`` predicate whose
                          needle is not a string literal
    cardinality           more than one item where a singleton is required
    unbound-variable      variable reference with no binding
    context-item          path or ``.`` with no context item in scope
    document              ``fn:doc`` unavailable or unresolvable
    dispatch              ``execute at`` with no dispatch function
    non-node-path         a path step over a non-node item
    execute-at-routing    routed to the batching executor (peer layer)
    ===================== ==================================================
    """

    def __init__(self, message: str, code: str = "expr-not-lifted") -> None:
        super().__init__(message)
        self.code = code


def _unsupported(node: object, reason: str,
                 code: str = "expr-not-lifted") -> UnsupportedExpression:
    """Uniform fallback signal: ``<NodeType>: <reason>`` plus a stable code."""
    return UnsupportedExpression(f"{type(node).__name__}: {reason}", code)


class LoopLiftingCompiler:
    """Compiles (and immediately evaluates) loop-lifted plans.

    Parameters
    ----------
    static:
        Static context for function-name resolution of ``execute at``.
    dispatch:
        Callable shipping one bulk request; wired to a
        :class:`~repro.rpc.client.ClientSession` in production.
    trace:
        Record the per-peer intermediate tables (map/req/msg/res) of
        every ``execute at`` translation — lets tests and the Figure 1
        benchmark inspect the exact tables of the paper.
    doc_resolver:
        Resolves ``fn:doc`` URIs to document nodes, enabling path roots
        over stored documents.  Without one, ``fn:doc`` falls back.
    """

    def __init__(self, static: StaticContext,
                 dispatch: Optional[Dispatch] = None,
                 trace: bool = False,
                 doc_resolver: Optional[DocResolver] = None,
                 dispatch_parallel: Optional[Callable[[list], list]] = None,
                 ) -> None:
        self.static = static
        self.dispatch = dispatch
        self.dispatch_parallel = dispatch_parallel
        self.trace_enabled = trace
        self.trace: list[dict] = []
        self.doc_resolver = doc_resolver
        self._documents: dict[str, Node] = {}

    # ------------------------------------------------------------------

    def preflight(self, expr: A.Expr) -> None:
        """Static liftability check, mirroring :meth:`compile_expr`.

        Compilation in this pipeline *is* evaluation, so a mid-plan
        :class:`UnsupportedExpression` could fire after an ``execute
        at`` already shipped — and the interpreter fallback would ship
        it again.  Walking the AST first makes every statically
        detectable fallback happen before any side effect.  (Dynamic
        bails — runtime positional predicate values, non-node path
        items, unresolvable documents — can still surface later.)
        """
        if isinstance(expr, (A.Literal, A.VarRef, A.ContextItem)):
            return
        if isinstance(expr, A.SequenceExpr):
            for item in expr.items:
                self.preflight(item)
            return
        if isinstance(expr, A.RangeExpr):
            self.preflight(expr.start)
            self.preflight(expr.end)
            return
        if isinstance(expr, A.FLWOR):
            for clause in expr.clauses:
                if isinstance(clause, A.LetClause):
                    self.preflight(clause.value)
                elif isinstance(clause, A.ForClause):
                    self.preflight(clause.source)
                elif isinstance(clause, A.WhereClause):
                    self.preflight(clause.condition)
                else:
                    raise _unsupported(clause, "outside the loop-lifted core",
                                       "clause-not-lifted")
            self.preflight(expr.return_expr)
            return
        if isinstance(expr, A.ExecuteAt):
            if self.dispatch is None:
                raise _unsupported(
                    expr, "execute at requires a dispatch function",
                    "dispatch")
            self.preflight(expr.destination)
            for arg in expr.call.args:
                self.preflight(arg)
            return
        if isinstance(expr, A.Arithmetic):
            self.preflight(expr.left)
            self.preflight(expr.right)
            return
        if isinstance(expr, A.Comparison):
            if expr.kind != "general":
                raise _unsupported(expr, "only general comparisons are lifted",
                                   "comparison-not-lifted")
            self.preflight(expr.left)
            self.preflight(expr.right)
            return
        if isinstance(expr, A.FunctionCall):
            local = expr.name.split(":")[-1]
            if local == "doc" and len(expr.args) == 1:
                if self.doc_resolver is None:
                    raise _unsupported(
                        expr, "fn:doc requires a document resolver",
                        "document")
            elif local not in self._ROWWISE_STRING:
                raise _unsupported(
                    expr,
                    f"function {expr.name} is outside the loop-lifted core",
                    "function-not-lifted")
            for arg in expr.args:
                self.preflight(arg)
            return
        if isinstance(expr, A.PathExpr):
            if expr.start is not None:
                self.preflight(expr.start)
            for step in _fuse_descendant_steps(list(expr.steps)):
                if not isinstance(step, A.AxisStep):
                    raise _unsupported(
                        expr, f"step {type(step).__name__} is not lifted",
                        "step-not-lifted")
                if step.axis not in LIFTED_AXES:
                    raise _unsupported(
                        expr, f"axis {step.axis} is not lifted",
                        "axis-not-lifted")
                for predicate in step.predicates:
                    if positional_predicate_spec(predicate) is not None:
                        continue  # lifted as a rank computation
                    if contains_predicate_spec(predicate) is not None:
                        continue  # lifted as a posting-list prefilter
                    if _dynamic_contains_needle(predicate):
                        raise _unsupported(
                            predicate,
                            "contains() needle is not a string literal",
                            "search-dynamic-needle")
                    self.preflight(predicate)
            return
        raise _unsupported(expr, "outside the loop-lifted core")

    def compile_expr(self, expr: A.Expr, loop: Table,
                     env: dict[str, Table]) -> Table:
        """Compile *expr* under the given loop relation and environment;
        returns its iter|pos|item table."""
        if isinstance(expr, A.Literal):
            return Table(
                ("iter", "pos", "item"),
                [(it, 1, expr.value) for (it,) in loop.rows])
        if isinstance(expr, A.VarRef):
            if expr.name not in env:
                raise _unsupported(expr, f"unbound variable ${expr.name}",
                                   "unbound-variable")
            return env[expr.name]
        if isinstance(expr, A.ContextItem):
            dot = env.get(_DOT)
            if dot is None:
                raise _unsupported(expr, "no context item in scope",
                                   "context-item")
            return dot
        if isinstance(expr, A.SequenceExpr):
            return self._compile_sequence(expr, loop, env)
        if isinstance(expr, A.RangeExpr):
            return self._compile_range(expr, loop, env)
        if isinstance(expr, A.FLWOR):
            return self._compile_flwor(expr, loop, env)
        if isinstance(expr, A.ExecuteAt):
            return self._compile_execute_at(expr, loop, env)
        if isinstance(expr, A.Arithmetic):
            return self._compile_arith(expr, loop, env)
        if isinstance(expr, A.Comparison):
            return self._compile_comparison(expr, loop, env)
        if isinstance(expr, A.FunctionCall):
            return self._compile_function_call(expr, loop, env)
        if isinstance(expr, A.PathExpr):
            return self._compile_path(expr, loop, env)
        raise _unsupported(expr, "outside the loop-lifted core")

    # -- simple expressions -------------------------------------------------

    def _compile_sequence(self, expr: A.SequenceExpr, loop: Table,
                          env: dict[str, Table]) -> Table:
        if not expr.items:
            return Table(("iter", "pos", "item"))
        merged: Optional[Table] = None
        for ordinal, item in enumerate(expr.items):
            part = self.compile_expr(item, loop, env).attach("ord", ordinal)
            merged = part if merged is None else merged.union(part)
        assert merged is not None
        renumbered = merged.rownum("newpos", order_by=("ord", "pos"),
                                   partition_by="iter")
        return renumbered.project("iter", "pos:newpos", "item") \
                         .sort("iter", "pos")

    def _compile_range(self, expr: A.RangeExpr, loop: Table,
                       env: dict[str, Table]) -> Table:
        start = self._singleton_per_iter(
            self.compile_expr(expr.start, loop, env), "RangeExpr: range start")
        end = self._singleton_per_iter(
            self.compile_expr(expr.end, loop, env), "RangeExpr: range end")
        rows = []
        for (it,) in loop.rows:
            if it not in start or it not in end:
                continue
            low = int(atomize([start[it]])[0].value)
            high = int(atomize([end[it]])[0].value)
            for pos, value in enumerate(range(low, high + 1), start=1):
                rows.append((it, pos, integer(value)))
        return Table(("iter", "pos", "item"), rows)

    def _singleton_per_iter(self, table: Table, who: str) -> dict:
        values: dict = {}
        for it, pos, item in table.rows:
            if it in values:
                raise UnsupportedExpression(
                    f"{who} has more than one item per iteration",
                    "cardinality")
            values[it] = item
        return values

    # -- FLWOR ------------------------------------------------------------------

    def _compile_flwor(self, expr: A.FLWOR, loop: Table,
                       env: dict[str, Table]) -> Table:
        env = dict(env)
        # Stack of map tables (outer|inner) to unwind afterwards.
        maps: list[Table] = []
        for clause in expr.clauses:
            if isinstance(clause, A.LetClause):
                env[clause.var] = self.compile_expr(clause.value, loop, env)
            elif isinstance(clause, A.ForClause):
                loop, env, mapping = self._lift_for(clause, loop, env)
                maps.append(mapping)
            elif isinstance(clause, A.WhereClause):
                loop, env = self._apply_where(clause, loop, env)
            else:
                raise _unsupported(clause, "outside the loop-lifted core",
                                   "clause-not-lifted")
        result = self.compile_expr(expr.return_expr, loop, env)
        # Unwind nesting: map inner iterations back to outer ones.
        for mapping in reversed(maps):
            joined = result.join(mapping, "iter", "inner")
            renumbered = joined.rownum(
                "newpos", order_by=("iter", "pos"), partition_by="outer")
            result = renumbered.project("iter:outer", "pos:newpos", "item") \
                               .sort("iter", "pos")
        return result

    def _lift_for(self, clause: A.ForClause, loop: Table,
                  env: dict[str, Table]):
        source = self.compile_expr(clause.source, loop, env)
        numbered = source.rownum("inner", order_by=("iter", "pos"))
        mapping = numbered.project("outer:iter", "inner")
        new_loop = mapping.project("iter:inner")
        lifted_env: dict[str, Table] = {}
        for name, table in env.items():
            joined = table.join(mapping, "iter", "outer")
            lifted_env[name] = joined.project("iter:inner", "pos", "item") \
                                     .sort("iter", "pos")
        lifted_env[clause.var] = numbered.project(
            "iter:inner", "item").attach("pos", 1) \
            .project("iter", "pos", "item")
        if clause.position_var:
            positions = source.rownum(
                "relpos", order_by=("pos",), partition_by="iter") \
                .rownum("inner", order_by=("iter", "pos"))
            lifted_env[clause.position_var] = positions.project(
                "iter:inner", "relpos").fun(
                    "item", lambda p: integer(p), "relpos") \
                .attach("pos", 1).project("iter", "pos", "item")
        return new_loop, lifted_env, mapping

    def _apply_where(self, clause: A.WhereClause, loop: Table,
                     env: dict[str, Table]):
        condition = self.compile_expr(clause.condition, loop, env)
        keep: set = set()
        for it, pos, item in condition.rows:
            if isinstance(item, AtomicValue) and bool(item.value):
                keep.add(it)
        new_loop = Table(("iter",), [row for row in loop.rows
                                     if row[0] in keep])
        new_env = {
            name: Table(table.columns,
                        [row for row in table.rows if row[0] in keep])
            for name, table in env.items()
        }
        return new_loop, new_env

    # -- row-wise computation ----------------------------------------------------

    def _compile_arith(self, expr: A.Arithmetic, loop: Table,
                       env: dict[str, Table]) -> Table:
        left = self._singleton_per_iter(
            self.compile_expr(expr.left, loop, env), "Arithmetic: operand")
        right = self._singleton_per_iter(
            self.compile_expr(expr.right, loop, env), "Arithmetic: operand")
        rows = []
        for (it,) in loop.rows:
            if it in left and it in right:
                lv = atomize([left[it]])[0]
                rv = atomize([right[it]])[0]
                rows.append((it, 1, _arith(expr.op, lv, rv)))
        return Table(("iter", "pos", "item"), rows)

    def _compile_comparison(self, expr: A.Comparison, loop: Table,
                            env: dict[str, Table]) -> Table:
        if expr.kind != "general":
            raise _unsupported(expr, "only general comparisons are lifted",
                               "comparison-not-lifted")
        left = self.compile_expr(expr.left, loop, env)
        right = self.compile_expr(expr.right, loop, env)
        op = {"=": "eq", "!=": "ne", "<": "lt",
              "<=": "le", ">": "gt", ">=": "ge"}[expr.op]
        by_iter_left: dict = {}
        for it, pos, item in left.rows:
            by_iter_left.setdefault(it, []).append(item)
        by_iter_right: dict = {}
        for it, pos, item in right.rows:
            by_iter_right.setdefault(it, []).append(item)
        from repro.xdm.atomic import boolean as make_boolean
        rows = []
        for (it,) in loop.rows:
            outcome = any(
                general_compare_pair(lv, op, rv)
                for lv in atomize(by_iter_left.get(it, []))
                for rv in atomize(by_iter_right.get(it, [])))
            rows.append((it, 1, make_boolean(outcome)))
        return Table(("iter", "pos", "item"), rows)

    _ROWWISE_STRING = {
        "concat": lambda *parts: "".join(parts),
        "upper-case": lambda s: s.upper(),
        "lower-case": lambda s: s.lower(),
        "string": lambda s: s,
    }

    def _compile_function_call(self, expr: A.FunctionCall, loop: Table,
                               env: dict[str, Table]) -> Table:
        local = expr.name.split(":")[-1]
        if local == "doc" and len(expr.args) == 1:
            return self._compile_doc(expr, loop, env)
        func = self._ROWWISE_STRING.get(local)
        if func is None:
            raise _unsupported(
                expr, f"function {expr.name} is outside the loop-lifted core",
                "function-not-lifted")
        param_maps = [
            self._singleton_per_iter(
                self.compile_expr(arg, loop, env),
                f"FunctionCall: {expr.name} argument")
            for arg in expr.args
        ]
        rows = []
        for (it,) in loop.rows:
            parts = []
            missing = False
            for mapping in param_maps:
                if it not in mapping:
                    parts.append("")
                    continue
                parts.append(atomize([mapping[it]])[0].string_value())
            if not missing:
                rows.append((it, 1, string(func(*parts))))
        return Table(("iter", "pos", "item"), rows)

    def _compile_doc(self, expr: A.FunctionCall, loop: Table,
                     env: dict[str, Table]) -> Table:
        """``fn:doc`` — the absolute path root over stored documents."""
        if self.doc_resolver is None:
            raise _unsupported(expr, "fn:doc requires a document resolver",
                               "document")
        uris = self._singleton_per_iter(
            self.compile_expr(expr.args[0], loop, env),
            "FunctionCall: fn:doc uri")
        rows = []
        for (it,) in loop.rows:
            if it not in uris:
                raise _unsupported(expr, "fn:doc with an empty uri",
                                   "document")
            uri = atomize([uris[it]])[0].string_value()
            document = self._documents.get(uri)
            if document is None:
                document = self.doc_resolver(uri)
                if document is None:
                    raise _unsupported(expr, f"document {uri!r} not found",
                                       "document")
                self._documents[uri] = document
            rows.append((it, 1, document))
        return Table(("iter", "pos", "item"), rows)

    # -- path expressions: the relational pushdown ----------------------------
    #
    # An axis step over an iter|pos|item node table is one algebra
    # operator (repro.algebra.paths.axis_step): per iteration, the
    # context nodes become staircase-pruned window scans over the
    # structural index's pre/size/level columns, so every step's output
    # is duplicate-free and document-ordered by construction — the
    # set-at-a-time evaluation the interpreter's accelerator performs,
    # reused at the algebra layer.

    def _compile_path(self, expr: A.PathExpr, loop: Table,
                      env: dict[str, Table]) -> Table:
        steps: list = list(expr.steps)
        if expr.absolute != "none":
            dot = env.get(_DOT)
            if dot is None:
                raise _unsupported(expr, "absolute path without a context item",
                                   "context-item")
            rows = []
            for it, pos, item in dot.rows:
                if not isinstance(item, Node):
                    raise _unsupported(
                        expr, "absolute path over a non-node context item",
                        "non-node-path")
                rows.append((it, 1, item.root()))
            current = Table(("iter", "pos", "item"), rows)
            if expr.absolute == "root-descendant":
                steps.insert(0, A.AxisStep("descendant-or-self",
                                           A.KindTest("node")))
        elif expr.start is None:
            dot = env.get(_DOT)
            if dot is None:
                raise _unsupported(expr, "relative path without a context item",
                                   "context-item")
            current = dot
        else:
            current = self.compile_expr(expr.start, loop, env)
        for step in _fuse_descendant_steps(steps):
            if not isinstance(step, A.AxisStep):
                raise _unsupported(
                    expr, f"step {type(step).__name__} is not lifted",
                    "step-not-lifted")
            current = self._compile_axis_step(expr, step, current, loop, env)
        return current

    def _compile_axis_step(self, expr: A.PathExpr, step: A.AxisStep,
                           current: Table, loop: Table,
                           env: dict[str, Table]) -> Table:
        axis = step.axis
        if axis not in LIFTED_AXES:
            raise _unsupported(expr, f"axis {axis} is not lifted",
                               "axis-not-lifted")
        test = step.node_test
        local = None
        if isinstance(test, A.NameTest) and test.local != "*":
            local = test.local
        match_all = isinstance(test, A.KindTest) and test.kind == "node"
        matches = lambda node: node_test_matches(node, test, axis, self.static)
        specs = [positional_predicate_spec(p) for p in step.predicates]
        if not any(spec is not None for spec in specs):
            probed = self._try_equality_probe(step, current, loop, env)
            if probed is not None:
                return probed
            try:
                result = axis_step(current, axis, matches=matches,
                                   local_name=local, match_all=match_all)
            except ValueError as error:
                raise _unsupported(expr, str(error), "non-node-path")
            if step.predicates:
                result = self._apply_step_predicates(expr, result,
                                                     step.predicates, env)
            return result
        # Positional regime: position()/last() count within EACH context
        # node's candidate window, which the set-at-a-time step folds
        # away — so explode the context into one inner iteration per
        # context node (the for-clause map construction), rank each
        # window, and merge back to step semantics afterwards.
        numbered = current.rownum("inner", order_by=("iter", "pos"))
        mapping = numbered.project("outer:iter", "inner")
        lifted_env: dict[str, Table] = {}
        for name, bound in env.items():
            joined = bound.join(mapping, "iter", "outer")
            lifted_env[name] = joined.project("iter:inner", "pos", "item") \
                                     .sort("iter", "pos")
        exploded = numbered.project("iter:inner", "item") \
                           .attach("pos", 1).project("iter", "pos", "item")
        reverse = axis in REVERSE_AXES
        # A leading [n] early-exits the window scan after the n-th hit in
        # axis order — the rank filter result is identical on the
        # truncated window (forward: first n keep their ranks; reverse:
        # the n-th-from-the-end keeps rank n).
        limit = None
        if specs[0] is not None and specs[0][0] == "literal":
            n = specs[0][1]
            if n == int(n) and n >= 1:
                limit = int(n)
        try:
            result = axis_step(exploded, axis, matches=matches,
                               local_name=local, match_all=match_all,
                               limit=limit)
        except ValueError as error:
            raise _unsupported(expr, str(error), "non-node-path")
        for spec, predicate in zip(specs, step.predicates):
            if spec is not None:
                result = positional_filter(result, spec, reverse=reverse)
            else:
                result = self._apply_step_predicates(expr, result,
                                                     [predicate], lifted_env)
        return merge_exploded_contexts(result, mapping)

    def _try_equality_probe(self, step: A.AxisStep, current: Table,
                            loop: Table, env: dict[str, Table],
                            ) -> Optional[Table]:
        """``axis::name[path = value]`` as a value-index hash probe.

        The algebra twin of the interpreter's indexed step: when the
        step carries exactly one indexable equality predicate, probe the
        per-anchor value index cached on the tree's ``StructuralIndex``
        instead of scanning the axis window and re-filtering every
        candidate.  The probe expression compiles under the *outer*
        loop, so it must not reference the candidate context item —
        only literals, variables and sequences of those qualify (the
        ``[x = $v]`` / ``[x = 'lit']`` shapes of the ROADMAP item).
        Returns ``None`` whenever any precondition fails; the generic
        scan-then-filter pipeline takes over.
        """
        if len(step.predicates) != 1 or step.axis not in ("child", "descendant"):
            return None
        if not isinstance(step.node_test, A.NameTest) \
                or step.node_test.local == "*":
            return None
        key_path = _indexable_predicate_key_path(step.predicates[0])
        if key_path is None:
            return None
        predicate = step.predicates[0]
        assert isinstance(predicate, A.Comparison)
        if not _context_free_probe(predicate.right):
            return None
        probe = self.compile_expr(predicate.right, loop, env)
        probes_by_iter: dict[int, list[str]] = {}
        for it, pos, item in probe.rows:
            probes_by_iter.setdefault(it, []).append(item)
        for it, items in probes_by_iter.items():
            values = atomize(items)
            if not all(v.type in (xs.string, xs.untypedAtomic)
                       for v in values):
                return None  # non-string probes: general comparison rules
            probes_by_iter[it] = [v.string_value() for v in values]
        return equality_probe_step(current, step.axis, step.node_test,
                                   key_path, probes_by_iter, self.static)

    def _apply_step_predicates(self, expr: A.PathExpr, table: Table,
                               predicates: list, env: dict[str, Table]) -> Table:
        """Filter step candidates by effective-boolean-value predicates.

        Every candidate row becomes one inner iteration — the same map
        construction as a for-clause — with the candidate bound as the
        context item; the predicate compiles under that inner loop and
        filters by effective boolean value.  Statically positional
        predicates never reach here (``_compile_axis_step`` routes them
        through :func:`repro.algebra.paths.positional_filter`); a
        predicate whose *runtime* value turns out numeric still bails,
        because its semantics depend on a numbering this code path does
        not track.
        """
        for predicate in predicates:
            needle = contains_predicate_spec(predicate)
            if needle is not None:
                # Posting-list prefilter + exact verify over the term
                # index — never compiles the predicate body, so the
                # per-candidate focus machinery below is skipped whole.
                table = contains_filter(table, needle)
                continue
            if _dynamic_contains_needle(predicate):
                raise _unsupported(
                    predicate, "contains() needle is not a string literal",
                    "search-dynamic-needle")
            numbered = table.rownum("inner", order_by=("iter", "pos"))
            mapping = numbered.project("outer:iter", "inner")
            inner_loop = mapping.project("iter:inner")
            lifted_env: dict[str, Table] = {}
            for name, bound in env.items():
                joined = bound.join(mapping, "iter", "outer")
                lifted_env[name] = joined.project("iter:inner", "pos", "item") \
                                         .sort("iter", "pos")
            lifted_env[_DOT] = numbered.project("iter:inner", "item") \
                .attach("pos", 1).project("iter", "pos", "item")
            condition = self.compile_expr(predicate, inner_loop, lifted_env)
            by_inner: dict = {}
            for it, pos, item in condition.rows:
                by_inner.setdefault(it, []).append(item)
            keep: set = set()
            for (it,) in inner_loop.rows:
                items = by_inner.get(it, [])
                if len(items) == 1 and isinstance(items[0], AtomicValue) \
                        and items[0].is_numeric:
                    raise _unsupported(
                        expr, "predicate value is numeric at runtime",
                        "positional-runtime")
                if effective_boolean_value(items):
                    keep.add(it)
            inner_index = numbered.col("inner")
            kept = Table(numbered.columns,
                         [row for row in numbered.rows
                          if row[inner_index] in keep])
            table = kept.rownum("newpos", order_by=("pos",),
                                partition_by="iter") \
                        .project("iter", "pos:newpos", "item")
        return table

    # -- execute at: the Figure 2 rule ----------------------------------------

    def _compile_execute_at(self, expr: A.ExecuteAt, loop: Table,
                            env: dict[str, Table]) -> Table:
        if self.dispatch is None:
            raise _unsupported(expr, "execute at requires a dispatch function",
                               "dispatch")
        dst = self.compile_expr(expr.destination, loop, env)
        params = [self.compile_expr(arg, loop, env) for arg in expr.call.args]

        uri, local = self.static.resolve_function_name(expr.call.name)
        location = self.static.module_locations.get(uri)
        decl = self.static.lookup_function(uri, local, len(expr.call.args))
        updating = bool(decl is not None and getattr(decl, "updating", False))

        # Distinct destination peers: δ(π_item(dst)).
        peers = [atomize([item])[0].string_value()
                 for item in dst.project("item").distinct().column_values("item")]

        # Per-peer translation (Figure 2), requests gathered first so the
        # dispatch layer can ship them in parallel.
        per_peer: list[dict] = []
        for peer in peers:
            selected = dst.fun(
                "sel",
                lambda item, peer=peer:
                    atomize([item])[0].string_value() == peer,
                "item").select("sel")
            mapping = selected.rownum("iterp", order_by=("iter",)) \
                              .project("iter", "iterp")
            req_tables = []
            for param in params:
                joined = mapping.join(param, "iter", "iter")
                req = joined.rownum("newpos", order_by=("pos",),
                                    partition_by="iterp") \
                            .project("iterp", "pos:newpos", "item") \
                            .sort("iterp", "pos")
                req_tables.append(req)
            iterps = [row[mapping.col("iterp")] for row in mapping.rows]
            calls = []
            for iterp in sorted(iterps):
                call_params = []
                for req in req_tables:
                    sequence = [item for it_p, pos, item in req.rows
                                if it_p == iterp]
                    call_params.append(sequence)
                calls.append(call_params)
            per_peer.append({
                "peer": peer,
                "map": mapping,
                "req": req_tables,
                "calls": calls,
            })

        # Ship one Bulk RPC per peer — fanned out in parallel across
        # distinct destinations when the dispatch layer supports it
        # (Figure 2's parallel dispatch).
        if self.dispatch_parallel is not None and len(per_peer) > 1:
            requests = [
                (entry["peer"], uri, location, local, len(params),
                 entry["calls"], updating)
                for entry in per_peer
            ]
            all_results = self.dispatch_parallel(requests)
        else:
            all_results = [
                self.dispatch(entry["peer"], uri, location, local,
                              len(params), entry["calls"], updating)
                for entry in per_peer
            ]
        for entry, results in zip(per_peer, all_results):
            rows = []
            for iterp, sequence in enumerate(results, start=1):
                for pos, item in enumerate(sequence, start=1):
                    rows.append((iterp, pos, item))
            entry["msg"] = Table(("iterp", "pos", "item"), rows)

        # Map iterp back to iter and merge-union all peers' results.
        result = Table(("iter", "pos", "item"))
        for entry in per_peer:
            res = entry["msg"].join(entry["map"], "iterp", "iterp") \
                              .project("iter", "pos", "item")
            entry["res"] = res
            result = result.union(res)
        result = result.sort("iter", "pos")

        if self.trace_enabled:
            self.trace.append({
                "peers": peers,
                "per_peer": per_peer,
                "result": result,
            })
        return result


class LoopLiftedQuery:
    """Compile a main-module query through the loop-lifting pipeline.

    The query body is evaluated bottom-up into algebra tables under the
    singleton loop relation (iter=1), exactly as Pathfinder does for a
    top-level query.  Raises :class:`UnsupportedExpression` for queries
    outside the core — callers fall back to the interpreter.
    """

    def __init__(self, source: str, registry=None,
                 dispatch: Optional[Dispatch] = None,
                 trace: bool = False,
                 doc_resolver: Optional[DocResolver] = None,
                 compiled: Optional[CompiledQuery] = None,
                 context: Optional[ExecutionContext] = None) -> None:
        dispatch_parallel = None
        if context is not None:
            dispatch = dispatch or context.dispatch
            doc_resolver = doc_resolver or context.doc_resolver
            dispatch_parallel = context.dispatch_parallel
        self.compiled = compiled if compiled is not None \
            else CompiledQuery(source, registry)
        self.compiler = LoopLiftingCompiler(
            self.compiled.static, dispatch, trace=trace,
            doc_resolver=doc_resolver, dispatch_parallel=dispatch_parallel)

    @property
    def trace(self) -> list[dict]:
        return self.compiler.trace

    def run(self, variables: Optional[dict[str, list]] = None,
            context_item=None, *,
            context: Optional[ExecutionContext] = None) -> list:
        """Execute; returns the XDM result sequence of iteration 1.

        Variables and the context item come from the keyword arguments
        or, when an :class:`ExecutionContext` is given, from it.
        """
        if context is not None:
            variables = variables or context.variables
            if context_item is None:
                context_item = context.context_item
        loop = Table(("iter",), [(1,)])
        env: dict[str, Table] = {}
        for name, sequence in (variables or {}).items():
            env[name] = Table(
                ("iter", "pos", "item"),
                [(1, pos, item) for pos, item in enumerate(sequence, 1)])
        if context_item is not None:
            env[_DOT] = Table(("iter", "pos", "item"), [(1, 1, context_item)])
        body = self.compiled.ast.body
        assert body is not None
        # Reject statically-unsupported queries before evaluation — in
        # this compile-is-evaluate pipeline that is what keeps fallback
        # from re-shipping already-dispatched execute-at calls.
        self.compiler.preflight(body)
        table = self.compiler.compile_expr(body, loop, env)
        return [item for it, pos, item in table.sort("iter", "pos").rows]
