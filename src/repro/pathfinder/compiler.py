"""The loop-lifting compiler.

Sequences are tables with schema ``iter|pos|item`` (section 3.1): one
row per item per iteration of the enclosing for-loop nest.  A ``loop``
relation holds the live iteration numbers so empty sequences are
representable (absence of rows).

Supported core: literals, sequence construction, ranges, variables,
FLWOR (for/let/where), arithmetic, comparisons, a few row-wise builtins
(``concat``, ``string``), and ``execute at`` — compiled by the Figure 2
rule.  Anything else raises :class:`UnsupportedExpression`, signalling
the caller to fall back to the interpreter (MonetDB similarly falls back
to non-loop-lifted paths for exotic constructs).
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.algebra.table import Table
from repro.errors import XRPCReproError
from repro.xdm.atomic import AtomicValue, general_compare_pair, integer, string
from repro.xdm.sequence import atomize
from repro.xquery import xast as A
from repro.xquery.context import StaticContext
from repro.xquery.evaluator import CompiledQuery, _arith

# dispatch(destination, module_uri, location, function, arity,
#          calls, updating) -> list of result sequences, one per call
Dispatch = Callable[..., list]


class UnsupportedExpression(XRPCReproError):
    """The expression is outside the loop-liftable core."""


class LoopLiftingCompiler:
    """Compiles (and immediately evaluates) loop-lifted plans.

    Parameters
    ----------
    static:
        Static context for function-name resolution of ``execute at``.
    dispatch:
        Callable shipping one bulk request; wired to a
        :class:`~repro.rpc.client.ClientSession` in production.
    trace:
        Record the per-peer intermediate tables (map/req/msg/res) of
        every ``execute at`` translation — lets tests and the Figure 1
        benchmark inspect the exact tables of the paper.
    """

    def __init__(self, static: StaticContext,
                 dispatch: Optional[Dispatch] = None,
                 trace: bool = False) -> None:
        self.static = static
        self.dispatch = dispatch
        self.trace_enabled = trace
        self.trace: list[dict] = []

    # ------------------------------------------------------------------

    def compile_expr(self, expr: A.Expr, loop: Table,
                     env: dict[str, Table]) -> Table:
        """Compile *expr* under the given loop relation and environment;
        returns its iter|pos|item table."""
        if isinstance(expr, A.Literal):
            return Table(
                ("iter", "pos", "item"),
                [(it, 1, expr.value) for (it,) in loop.rows])
        if isinstance(expr, A.VarRef):
            if expr.name not in env:
                raise UnsupportedExpression(f"unbound variable ${expr.name}")
            return env[expr.name]
        if isinstance(expr, A.SequenceExpr):
            return self._compile_sequence(expr, loop, env)
        if isinstance(expr, A.RangeExpr):
            return self._compile_range(expr, loop, env)
        if isinstance(expr, A.FLWOR):
            return self._compile_flwor(expr, loop, env)
        if isinstance(expr, A.ExecuteAt):
            return self._compile_execute_at(expr, loop, env)
        if isinstance(expr, A.Arithmetic):
            return self._compile_arith(expr, loop, env)
        if isinstance(expr, A.Comparison):
            return self._compile_comparison(expr, loop, env)
        if isinstance(expr, A.FunctionCall):
            return self._compile_function_call(expr, loop, env)
        raise UnsupportedExpression(
            f"{type(expr).__name__} is outside the loop-lifted core")

    # -- simple expressions -------------------------------------------------

    def _compile_sequence(self, expr: A.SequenceExpr, loop: Table,
                          env: dict[str, Table]) -> Table:
        if not expr.items:
            return Table(("iter", "pos", "item"))
        merged: Optional[Table] = None
        for ordinal, item in enumerate(expr.items):
            part = self.compile_expr(item, loop, env).attach("ord", ordinal)
            merged = part if merged is None else merged.union(part)
        assert merged is not None
        renumbered = merged.rownum("newpos", order_by=("ord", "pos"),
                                   partition_by="iter")
        return renumbered.project("iter", "pos:newpos", "item") \
                         .sort("iter", "pos")

    def _compile_range(self, expr: A.RangeExpr, loop: Table,
                       env: dict[str, Table]) -> Table:
        start = self._singleton_per_iter(
            self.compile_expr(expr.start, loop, env), "range start")
        end = self._singleton_per_iter(
            self.compile_expr(expr.end, loop, env), "range end")
        rows = []
        for (it,) in loop.rows:
            if it not in start or it not in end:
                continue
            low = int(atomize([start[it]])[0].value)
            high = int(atomize([end[it]])[0].value)
            for pos, value in enumerate(range(low, high + 1), start=1):
                rows.append((it, pos, integer(value)))
        return Table(("iter", "pos", "item"), rows)

    def _singleton_per_iter(self, table: Table, who: str) -> dict:
        values: dict = {}
        for it, pos, item in table.rows:
            if it in values:
                raise UnsupportedExpression(f"{who}: more than one item per iteration")
            values[it] = item
        return values

    # -- FLWOR ------------------------------------------------------------------

    def _compile_flwor(self, expr: A.FLWOR, loop: Table,
                       env: dict[str, Table]) -> Table:
        env = dict(env)
        # Stack of map tables (outer|inner) to unwind afterwards.
        maps: list[Table] = []
        for clause in expr.clauses:
            if isinstance(clause, A.LetClause):
                env[clause.var] = self.compile_expr(clause.value, loop, env)
            elif isinstance(clause, A.ForClause):
                loop, env, mapping = self._lift_for(clause, loop, env)
                maps.append(mapping)
            elif isinstance(clause, A.WhereClause):
                loop, env = self._apply_where(clause, loop, env)
            else:
                raise UnsupportedExpression(
                    "order by is outside the loop-lifted core")
        result = self.compile_expr(expr.return_expr, loop, env)
        # Unwind nesting: map inner iterations back to outer ones.
        for mapping in reversed(maps):
            joined = result.join(mapping, "iter", "inner")
            renumbered = joined.rownum(
                "newpos", order_by=("iter", "pos"), partition_by="outer")
            result = renumbered.project("iter:outer", "pos:newpos", "item") \
                               .sort("iter", "pos")
        return result

    def _lift_for(self, clause: A.ForClause, loop: Table,
                  env: dict[str, Table]):
        source = self.compile_expr(clause.source, loop, env)
        numbered = source.rownum("inner", order_by=("iter", "pos"))
        mapping = numbered.project("outer:iter", "inner")
        new_loop = mapping.project("iter:inner")
        lifted_env: dict[str, Table] = {}
        for name, table in env.items():
            joined = table.join(mapping, "iter", "outer")
            lifted_env[name] = joined.project("iter:inner", "pos", "item") \
                                     .sort("iter", "pos")
        lifted_env[clause.var] = numbered.project(
            "iter:inner", "item").attach("pos", 1) \
            .project("iter", "pos", "item")
        if clause.position_var:
            positions = source.rownum(
                "relpos", order_by=("pos",), partition_by="iter") \
                .rownum("inner", order_by=("iter", "pos"))
            lifted_env[clause.position_var] = positions.project(
                "iter:inner", "relpos").fun(
                    "item", lambda p: integer(p), "relpos") \
                .attach("pos", 1).project("iter", "pos", "item")
        return new_loop, lifted_env, mapping

    def _apply_where(self, clause: A.WhereClause, loop: Table,
                     env: dict[str, Table]):
        condition = self.compile_expr(clause.condition, loop, env)
        keep: set = set()
        for it, pos, item in condition.rows:
            if isinstance(item, AtomicValue) and bool(item.value):
                keep.add(it)
        new_loop = Table(("iter",), [row for row in loop.rows
                                     if row[0] in keep])
        new_env = {
            name: Table(table.columns,
                        [row for row in table.rows if row[0] in keep])
            for name, table in env.items()
        }
        return new_loop, new_env

    # -- row-wise computation ----------------------------------------------------

    def _compile_arith(self, expr: A.Arithmetic, loop: Table,
                       env: dict[str, Table]) -> Table:
        left = self._singleton_per_iter(
            self.compile_expr(expr.left, loop, env), "arithmetic")
        right = self._singleton_per_iter(
            self.compile_expr(expr.right, loop, env), "arithmetic")
        rows = []
        for (it,) in loop.rows:
            if it in left and it in right:
                lv = atomize([left[it]])[0]
                rv = atomize([right[it]])[0]
                rows.append((it, 1, _arith(expr.op, lv, rv)))
        return Table(("iter", "pos", "item"), rows)

    def _compile_comparison(self, expr: A.Comparison, loop: Table,
                            env: dict[str, Table]) -> Table:
        if expr.kind != "general":
            raise UnsupportedExpression("only general comparisons are lifted")
        left = self.compile_expr(expr.left, loop, env)
        right = self.compile_expr(expr.right, loop, env)
        op = {"=": "eq", "!=": "ne", "<": "lt",
              "<=": "le", ">": "gt", ">=": "ge"}[expr.op]
        by_iter_left: dict = {}
        for it, pos, item in left.rows:
            by_iter_left.setdefault(it, []).append(item)
        by_iter_right: dict = {}
        for it, pos, item in right.rows:
            by_iter_right.setdefault(it, []).append(item)
        from repro.xdm.atomic import boolean as make_boolean
        rows = []
        for (it,) in loop.rows:
            outcome = any(
                general_compare_pair(lv, op, rv)
                for lv in atomize(by_iter_left.get(it, []))
                for rv in atomize(by_iter_right.get(it, [])))
            rows.append((it, 1, make_boolean(outcome)))
        return Table(("iter", "pos", "item"), rows)

    _ROWWISE_STRING = {
        "concat": lambda *parts: "".join(parts),
        "upper-case": lambda s: s.upper(),
        "lower-case": lambda s: s.lower(),
        "string": lambda s: s,
    }

    def _compile_function_call(self, expr: A.FunctionCall, loop: Table,
                               env: dict[str, Table]) -> Table:
        local = expr.name.split(":")[-1]
        func = self._ROWWISE_STRING.get(local)
        if func is None:
            raise UnsupportedExpression(
                f"function {expr.name} is outside the loop-lifted core")
        param_maps = [
            self._singleton_per_iter(
                self.compile_expr(arg, loop, env), expr.name)
            for arg in expr.args
        ]
        rows = []
        for (it,) in loop.rows:
            parts = []
            missing = False
            for mapping in param_maps:
                if it not in mapping:
                    parts.append("")
                    continue
                parts.append(atomize([mapping[it]])[0].string_value())
            if not missing:
                rows.append((it, 1, string(func(*parts))))
        return Table(("iter", "pos", "item"), rows)

    # -- execute at: the Figure 2 rule ----------------------------------------

    def _compile_execute_at(self, expr: A.ExecuteAt, loop: Table,
                            env: dict[str, Table]) -> Table:
        if self.dispatch is None:
            raise UnsupportedExpression(
                "execute at requires a dispatch function")
        dst = self.compile_expr(expr.destination, loop, env)
        params = [self.compile_expr(arg, loop, env) for arg in expr.call.args]

        uri, local = self.static.resolve_function_name(expr.call.name)
        location = self.static.module_locations.get(uri)
        decl = self.static.lookup_function(uri, local, len(expr.call.args))
        updating = bool(decl is not None and getattr(decl, "updating", False))

        # Distinct destination peers: δ(π_item(dst)).
        peers = [atomize([item])[0].string_value()
                 for item in dst.project("item").distinct().column_values("item")]

        # Per-peer translation (Figure 2), requests gathered first so the
        # dispatch layer can ship them in parallel.
        per_peer: list[dict] = []
        for peer in peers:
            selected = dst.fun(
                "sel",
                lambda item, peer=peer:
                    atomize([item])[0].string_value() == peer,
                "item").select("sel")
            mapping = selected.rownum("iterp", order_by=("iter",)) \
                              .project("iter", "iterp")
            req_tables = []
            for param in params:
                joined = mapping.join(param, "iter", "iter")
                req = joined.rownum("newpos", order_by=("pos",),
                                    partition_by="iterp") \
                            .project("iterp", "pos:newpos", "item") \
                            .sort("iterp", "pos")
                req_tables.append(req)
            iterps = [row[mapping.col("iterp")] for row in mapping.rows]
            calls = []
            for iterp in sorted(iterps):
                call_params = []
                for req in req_tables:
                    sequence = [item for it_p, pos, item in req.rows
                                if it_p == iterp]
                    call_params.append(sequence)
                calls.append(call_params)
            per_peer.append({
                "peer": peer,
                "map": mapping,
                "req": req_tables,
                "calls": calls,
            })

        # Ship one Bulk RPC per peer.
        for entry in per_peer:
            results = self.dispatch(
                entry["peer"], uri, location, local, len(params),
                entry["calls"], updating)
            rows = []
            for iterp, sequence in enumerate(results, start=1):
                for pos, item in enumerate(sequence, start=1):
                    rows.append((iterp, pos, item))
            entry["msg"] = Table(("iterp", "pos", "item"), rows)

        # Map iterp back to iter and merge-union all peers' results.
        result = Table(("iter", "pos", "item"))
        for entry in per_peer:
            res = entry["msg"].join(entry["map"], "iterp", "iterp") \
                              .project("iter", "pos", "item")
            entry["res"] = res
            result = result.union(res)
        result = result.sort("iter", "pos")

        if self.trace_enabled:
            self.trace.append({
                "peers": peers,
                "per_peer": per_peer,
                "result": result,
            })
        return result


class LoopLiftedQuery:
    """Compile a main-module query through the loop-lifting pipeline.

    The query body is evaluated bottom-up into algebra tables under the
    singleton loop relation (iter=1), exactly as Pathfinder does for a
    top-level query.  Raises :class:`UnsupportedExpression` for queries
    outside the core — callers fall back to the interpreter.
    """

    def __init__(self, source: str, registry=None,
                 dispatch: Optional[Dispatch] = None,
                 trace: bool = False) -> None:
        self.compiled = CompiledQuery(source, registry)
        self.compiler = LoopLiftingCompiler(
            self.compiled.static, dispatch, trace=trace)

    @property
    def trace(self) -> list[dict]:
        return self.compiler.trace

    def run(self, variables: Optional[dict[str, list]] = None) -> list:
        """Execute; returns the XDM result sequence of iteration 1."""
        loop = Table(("iter",), [(1,)])
        env: dict[str, Table] = {}
        for name, sequence in (variables or {}).items():
            env[name] = Table(
                ("iter", "pos", "item"),
                [(1, pos, item) for pos, item in enumerate(sequence, 1)])
        body = self.compiled.ast.body
        assert body is not None
        table = self.compiler.compile_expr(body, loop, env)
        return [item for it, pos, item in table.sort("iter", "pos").rows]
