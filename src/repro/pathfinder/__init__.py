"""Pathfinder-style loop-lifting compilation (sections 3.1–3.2).

Translates a core-XQuery subset into plans over the
:mod:`repro.algebra` iter|pos|item tables, with ``execute at`` compiled
per the Figure 2 rule: establish the distinct destination peers, build a
per-peer request table via the map-table construction, ship **one Bulk
RPC per peer** (dispatched in parallel), and merge-union the mapped-back
results to restore iteration order.

Path expressions over the downward axes compile to relational axis-step
operators (:mod:`repro.algebra.paths`) — window predicates over the
structural index's pre/size/level columns — so queries mixing ``execute
at`` with path steps no longer fall back wholesale to the interpreter.
:meth:`repro.engine.base.Engine.execute_lifted` provides the
fallback-with-telemetry entry point.

This module is the faithful, table-level realization of the paper's
technique; the production query path of :class:`~repro.rpc.XRPCPeer`
uses an operationally-equivalent batching executor that supports the
full language (see DESIGN.md).
"""

from repro.pathfinder.compiler import (
    LoopLiftingCompiler,
    LoopLiftedQuery,
    UnsupportedExpression,
    iter_ast_nodes,
    remote_call_profile,
)

__all__ = [
    "LoopLiftingCompiler",
    "LoopLiftedQuery",
    "UnsupportedExpression",
    "iter_ast_nodes",
    "remote_call_profile",
]
