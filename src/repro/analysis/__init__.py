"""Prepare-time static query analysis.

One pass over a compiled query's AST answers, *before* execution, the
questions XRPC's front door needs for admission and routing (Zhang &
Boncz, VLDB'07): can the plan loop-lift, is the query updating, which
``execute at`` sites does it touch, and is it semantically well-formed
(known functions, bound variables) — each finding carried with a
``line:column`` source span.

Entry point: :func:`analyze_compiled` (memoized per compiled query, so
plan-cache hits pay nothing).  The liftability verdict is produced by
the loop-lifting compiler's own :meth:`preflight
<repro.pathfinder.compiler.LoopLiftingCompiler.preflight>` plus a
static mirror of its environment checks — the predictor reuses the
compiler rather than re-implementing it, so the two cannot drift.
"""

from repro.analysis.analyzer import analyze_compiled
from repro.analysis.properties import Diagnostic, QueryProperties, SiteProfile

__all__ = [
    "Diagnostic",
    "QueryProperties",
    "SiteProfile",
    "analyze_compiled",
]
