"""The prepare-time analysis pass.

:func:`analyze_compiled` walks a :class:`CompiledQuery`'s AST once and
answers four questions:

* **liftability** — will the loop-lifting pipeline take this query, or
  fall back to the interpreter?  The verdict reuses the lifted
  compiler's own :meth:`preflight
  <repro.pathfinder.compiler.LoopLiftingCompiler.preflight>` (run with
  sentinel dispatch/doc-resolver capabilities) followed by a static
  mirror of :meth:`compile_expr`'s environment checks, so the predictor
  and the compiler cannot disagree: any statically detectable
  :class:`UnsupportedExpression` the runtime would raise, the analyzer
  reports with the *same* message and stable code.
* **updating-ness** — does the whole locally-evaluated expression tree
  (query body plus locally-called function bodies, transitively)
  contain XQUF update expressions, ``fn:put``, or updating remote
  calls?  This replaces the remote-call-only guard
  :func:`repro.pathfinder.remote_call_profile` with full coverage.
* **site profile** — how many ``execute at`` sites dispatch locally,
  to which destinations.
* **diagnostics** — unknown/mis-aritied functions, unbound variables,
  undeclared prefixes and unreachable remote bodies, each with the
  ``line:column`` of the offending main-module expression.

Results are memoized on the compiled query keyed by the capability
tuple, so plan-cache hits re-analyze nothing.
"""

from __future__ import annotations

import dataclasses

from repro.analysis.properties import Diagnostic, QueryProperties, SiteProfile
from repro.errors import XRPCReproError
from repro.pathfinder.compiler import (
    LoopLiftingCompiler,
    UnsupportedExpression,
    _unsupported,
)
from repro.xquery import xast as A
from repro.xquery.context import FN_NS
from repro.xquery.evaluator import (
    _fuse_descendant_steps,
    positional_predicate_spec,
)
from repro.xquery.functions import builtin_exists, builtin_known_name
from repro.xquery.lexer import source_location


def _sentinel_capability(*_args, **_kwargs):  # pragma: no cover
    raise AssertionError("analysis sentinel capability must never be called")


_UPDATE_NODES = (A.InsertExpr, A.DeleteExpr, A.ReplaceExpr, A.RenameExpr)


# ---------------------------------------------------------------------------
# Liftability: preflight + a static mirror of compile_expr's env checks


def _check_bindings(expr: A.Expr, bound: set, dot: bool) -> None:
    """Raise the :class:`UnsupportedExpression` that
    :meth:`LoopLiftingCompiler.compile_expr` would raise for the first
    unbound variable / missing context item, in evaluation order.

    ``compile_expr`` evaluates every branch structurally (compilation
    *is* evaluation over iter|pos|item tables), so a static walk over
    the same shapes is exact: no data-dependent path can skip an
    environment failure.  Only node kinds :meth:`preflight` admits can
    reach this walk — everything else already raised there.
    """
    if isinstance(expr, A.Literal):
        return
    if isinstance(expr, A.VarRef):
        if expr.name not in bound:
            raise _unsupported(expr, f"unbound variable ${expr.name}",
                               "unbound-variable")
        return
    if isinstance(expr, A.ContextItem):
        if not dot:
            raise _unsupported(expr, "no context item in scope",
                               "context-item")
        return
    if isinstance(expr, A.SequenceExpr):
        for item in expr.items:
            _check_bindings(item, bound, dot)
        return
    if isinstance(expr, A.RangeExpr):
        _check_bindings(expr.start, bound, dot)
        _check_bindings(expr.end, bound, dot)
        return
    if isinstance(expr, A.FLWOR):
        bound = set(bound)
        for clause in expr.clauses:
            if isinstance(clause, A.LetClause):
                _check_bindings(clause.value, bound, dot)
                bound.add(clause.var)
            elif isinstance(clause, A.ForClause):
                _check_bindings(clause.source, bound, dot)
                bound.add(clause.var)
                if clause.position_var:
                    bound.add(clause.position_var)
            elif isinstance(clause, A.WhereClause):
                _check_bindings(clause.condition, bound, dot)
        _check_bindings(expr.return_expr, bound, dot)
        return
    if isinstance(expr, A.ExecuteAt):
        _check_bindings(expr.destination, bound, dot)
        for arg in expr.call.args:
            _check_bindings(arg, bound, dot)
        return
    if isinstance(expr, (A.Arithmetic, A.Comparison)):
        _check_bindings(expr.left, bound, dot)
        _check_bindings(expr.right, bound, dot)
        return
    if isinstance(expr, A.FunctionCall):
        for arg in expr.args:
            _check_bindings(arg, bound, dot)
        return
    if isinstance(expr, A.PathExpr):
        if expr.absolute != "none":
            if not dot:
                raise _unsupported(
                    expr, "absolute path without a context item",
                    "context-item")
        elif expr.start is None:
            if not dot:
                raise _unsupported(
                    expr, "relative path without a context item",
                    "context-item")
        else:
            _check_bindings(expr.start, bound, dot)
        for step in _fuse_descendant_steps(list(expr.steps)):
            for predicate in step.predicates:
                if positional_predicate_spec(predicate) is not None:
                    continue  # lifted as a rank computation, never compiled
                # Non-positional predicates compile with the candidate
                # node bound as the context item.
                _check_bindings(predicate, bound, True)
        return


def _predict_lift(compiled, *, has_dispatch: bool, has_doc_resolver: bool,
                  bound: set, context_item: bool):
    """``(liftable, fallback_reason, fallback_code)`` — exactly what
    :meth:`Engine.attempt_lifted` will observe for this query under the
    given capabilities and bindings."""
    body = compiled.ast.body
    if body is None:
        return False, "QueryModule: library module has no query body", \
            "expr-not-lifted"
    checker = LoopLiftingCompiler(
        compiled.static,
        dispatch=_sentinel_capability if has_dispatch else None,
        doc_resolver=_sentinel_capability if has_doc_resolver else None)
    try:
        # Same order as LoopLiftedQuery.run: whole-tree preflight first,
        # then environment failures in evaluation order.
        checker.preflight(body)
        _check_bindings(body, bound, context_item)
    except UnsupportedExpression as error:
        return False, str(error), error.code
    return True, None, None


# ---------------------------------------------------------------------------
# Graph walk: sites, updating-ness, dynamic risks (environment-
# independent, memoized) — one pass, with per-type field caching: these
# walks run on every first prepare, so repeated dataclasses.fields()
# introspection is the difference between noise and real overhead.

_FIELD_NAMES: dict = {}
_IS_NODE: dict = {}


def _is_node(value) -> bool:
    kind = value.__class__
    flag = _IS_NODE.get(kind)
    if flag is None:
        flag = _IS_NODE[kind] = hasattr(kind, "__dataclass_fields__")
    return flag


def _child_exprs(node):
    """Dataclass children of one AST node, through nested lists/tuples."""
    kind = node.__class__
    names = _FIELD_NAMES.get(kind)
    if names is None:
        names = _FIELD_NAMES[kind] = \
            [field.name for field in dataclasses.fields(node)]
    for name in names:
        value = getattr(node, name)
        if _is_node(value):
            yield value
        elif isinstance(value, (list, tuple)):
            # Arbitrarily nested containers (DirectElement.attributes is
            # a list of (name, content-list) pairs) flatten fully.
            stack = list(value)
            while stack:
                item = stack.pop()
                if _is_node(item):
                    yield item
                elif isinstance(item, (list, tuple)):
                    stack.extend(item)


def _iter_tree(root):
    """Every dataclass node under *root* (root included), skipping the
    remotely-evaluated parts: an ``execute at`` target's body never runs
    locally, so only its destination and arguments are descended."""
    stack = [root]
    while stack:
        node = stack.pop()
        yield node
        if isinstance(node, A.ExecuteAt):
            stack.append(node.destination)
            stack.extend(node.call.args)
        else:
            stack.extend(_child_exprs(node))


def _resolve_call(static, name: str, arity: int):
    """``(uri, local, declaration-or-None)``; ``(None, None, None)`` when
    the prefix itself does not resolve."""
    try:
        uri, local = static.resolve_function_name(name)
    except XRPCReproError:
        return None, None, None
    return uri, local, static.lookup_function(uri, local, arity)


class _Graph:
    """Environment-independent facts about the locally-evaluated tree."""

    def __init__(self) -> None:
        self.site_count = 0
        self.destinations: list = []
        self.dynamic_destinations = 0
        self.updating_remote = False
        self.updating_local = False
        self.called_decl_ids: set = set()
        # Stable fallback codes that can still fire at runtime for a
        # statically liftable query (the honesty label on the
        # prediction): fn:doc may not resolve, a predicate may turn out
        # numeric, singleton-cardinality operators may see sequences,
        # a path may hit a non-node item.
        self.risks: list = []
        self._risk_seen: set = set()

    def risk(self, code: str) -> None:
        if code not in self._risk_seen:
            self._risk_seen.add(code)
            self.risks.append(code)


def _scan_local_tree(root, static, graph: _Graph) -> None:
    """Accumulate sites and updating-ness over *root* plus the bodies of
    every locally-called user function (transitively, each body once)."""
    for node in _iter_tree(root):
        if isinstance(node, _UPDATE_NODES):
            graph.updating_local = True
        elif isinstance(node, A.ExecuteAt):
            graph.site_count += 1
            destination = node.destination
            if isinstance(destination, A.Literal):
                value = destination.value
                graph.destinations.append(
                    value.string_value() if hasattr(value, "string_value")
                    else str(value))
            else:
                graph.dynamic_destinations += 1
            _, _, decl = _resolve_call(static, node.call.name,
                                       len(node.call.args))
            if decl is None or getattr(decl, "updating", False):
                # Unresolvable names count as updating (conservative:
                # no speculative shipping), matching remote_call_profile.
                graph.updating_remote = True
        elif isinstance(node, A.FunctionCall):
            if node.name.split(":")[-1] == "doc" and len(node.args) == 1:
                graph.risk("document")
            else:
                graph.risk("cardinality")
            uri, local, decl = _resolve_call(static, node.name,
                                             len(node.args))
            if isinstance(decl, A.FunctionDecl):
                if decl.updating:
                    graph.updating_local = True
                if id(decl) not in graph.called_decl_ids:
                    graph.called_decl_ids.add(id(decl))
                    _scan_local_tree(decl.body, static, graph)
            elif decl is None and uri == FN_NS and local == "put":
                # fn:put is the one updating builtin (XQUF §7).
                graph.updating_local = True
        elif isinstance(node, (A.RangeExpr, A.Arithmetic)):
            graph.risk("cardinality")
        elif isinstance(node, A.PathExpr):
            graph.risk("non-node-path")
        elif isinstance(node, A.AxisStep):
            for predicate in node.predicates:
                if positional_predicate_spec(predicate) is None:
                    graph.risk("positional-runtime")


def _build_graph(compiled) -> _Graph:
    graph = getattr(compiled, "_analysis_graph", None)
    if graph is not None:
        return graph
    graph = _Graph()
    if compiled.ast.body is not None:
        _scan_local_tree(compiled.ast.body, compiled.static, graph)
    compiled._analysis_graph = graph
    return graph


# ---------------------------------------------------------------------------
# Diagnostics: semantic lint over the main module, with source spans


class _DiagnosticCollector:
    def __init__(self, compiled, graph: _Graph) -> None:
        self.compiled = compiled
        self.static = compiled.static
        self.graph = graph
        self.diagnostics: list = []

    def emit(self, severity: str, code: str, message: str, node) -> None:
        line = column = None
        pos = getattr(node, "pos", None)
        if pos is not None:
            line, column = source_location(self.compiled.source, pos)
        self.diagnostics.append(
            Diagnostic(severity, code, message, line, column))

    # -- function-name checks ------------------------------------------------

    def _known_by_other_arity(self, uri: str, local: str) -> bool:
        if builtin_known_name(uri, local):
            return True
        return any(key[0] == uri and key[1] == local
                   for key in self.static.functions)

    def check_call_name(self, node, name: str, arity: int,
                        remote: bool) -> None:
        try:
            uri, local = self.static.resolve_function_name(name)
        except XRPCReproError as error:
            self.emit("error", "XPST0081", str(error).split("] ", 1)[-1],
                      node)
            return
        if self.static.lookup_function(uri, local, arity) is not None:
            return
        if not remote and builtin_exists(uri, local, arity):
            return
        if remote:
            # The remote peer resolves the function against its own
            # module registry; an unknown name here is only suspicious.
            self.emit(
                "warning", "XPST0017",
                f"remote function {name}#{arity} is not resolvable "
                "locally; the peer at the destination must provide it",
                node)
        elif self._known_by_other_arity(uri, local):
            self.emit("error", "XPST0017",
                      f"wrong arity for function {name}: "
                      f"no {arity}-argument form is declared", node)
        else:
            self.emit("error", "XPST0017",
                      f"unknown function {name}#{arity}", node)

    def check_execute_at(self, node: A.ExecuteAt) -> None:
        self.check_call_name(node, node.call.name, len(node.call.args),
                             remote=True)
        _, _, decl = _resolve_call(self.static, node.call.name,
                                   len(node.call.args))
        if isinstance(decl, A.FunctionDecl) \
                and id(decl) not in self.graph.called_decl_ids \
                and any(isinstance(inner, A.ExecuteAt)
                        for inner in _iter_tree(decl.body)):
            self.emit(
                "warning", "unreachable-remote-body",
                f"function {node.call.name} is only invoked through "
                "execute at; its body (including its nested execute at) "
                "runs at the remote peer and never dispatches locally",
                node)

    # -- scoped expression walk ----------------------------------------------

    def walk(self, expr, scope: set) -> None:
        if isinstance(expr, A.VarRef):
            if expr.name not in scope:
                self.emit("error", "XPST0008",
                          f"variable ${expr.name} is not declared", expr)
            return
        if isinstance(expr, A.FLWOR):
            scope = set(scope)
            for clause in expr.clauses:
                if isinstance(clause, A.LetClause):
                    self.walk(clause.value, scope)
                    scope.add(clause.var)
                elif isinstance(clause, A.ForClause):
                    self.walk(clause.source, scope)
                    scope.add(clause.var)
                    if clause.position_var:
                        scope.add(clause.position_var)
                elif isinstance(clause, A.WhereClause):
                    self.walk(clause.condition, scope)
                elif isinstance(clause, A.OrderByClause):
                    for spec in clause.specs:
                        self.walk(spec.key, scope)
            self.walk(expr.return_expr, scope)
            return
        if isinstance(expr, A.Quantified):
            scope = set(scope)
            for var, source in expr.bindings:
                self.walk(source, scope)
                scope.add(var)
            self.walk(expr.satisfies, scope)
            return
        if isinstance(expr, A.TypeSwitch):
            self.walk(expr.operand, scope)
            for case in list(expr.cases) + [expr.default]:
                case_scope = set(scope)
                if case.var:
                    case_scope.add(case.var)
                self.walk(case.body, case_scope)
            return
        if isinstance(expr, A.ExecuteAt):
            self.walk(expr.destination, scope)
            for arg in expr.call.args:
                self.walk(arg, scope)
            self.check_execute_at(expr)
            return
        if isinstance(expr, A.FunctionCall):
            self.check_call_name(expr, expr.name, len(expr.args),
                                 remote=False)
            for arg in expr.args:
                self.walk(arg, scope)
            return
        for child in _child_exprs(expr):
            self.walk(child, scope)


def _diagnose(compiled, graph: _Graph, extra_bound) -> tuple:
    collector = _DiagnosticCollector(compiled, graph)
    declared = set(extra_bound or ())
    for decl in compiled.ast.variables:
        if decl.value is not None:
            collector.walk(decl.value, set(declared))
        declared.add(decl.name)
    for fdecl in getattr(compiled, "_local_functions", []):
        # Function bodies see their parameters only — module-level
        # variables are NOT in a function's dynamic scope (matches
        # DynamicContext.function_scope), so lint them the same way.
        collector.walk(fdecl.body, {param.name for param in fdecl.params})
    if compiled.ast.body is not None:
        collector.walk(compiled.ast.body, declared)
    return tuple(collector.diagnostics)


# ---------------------------------------------------------------------------
# Entry point


def analyze_compiled(compiled, *, has_dispatch: bool = False,
                     has_doc_resolver: bool = True,
                     variables=None,
                     context_item: bool = False) -> QueryProperties:
    """Analyze a compiled query under the given execution capabilities.

    ``variables`` is the set (or dict) of variable names the caller will
    bind at execution time; ``None`` means "unknown" and assumes every
    ``declare variable ... external`` will be bound (the ``repro
    check`` stance).  Results are memoized per compiled query and
    capability key, so repeated :meth:`Engine.execute` calls on a
    plan-cache hit pay a dictionary lookup, not a re-analysis.
    """
    key = (has_dispatch, has_doc_resolver,
           frozenset(variables) if variables is not None else None,
           bool(context_item))
    cache = getattr(compiled, "_analysis_cache", None)
    if cache is None:
        cache = compiled._analysis_cache = {}
    cached = cache.get(key)
    if cached is not None:
        return cached

    if variables is not None:
        bound = set(variables)
        extra_scope = set(variables)
    else:
        bound = {decl.name for decl in compiled.ast.variables
                 if decl.external}
        extra_scope = set()
    # Declared-with-value variables never enter the lifted environment
    # (LoopLiftedQuery.run binds only the passed variables), so they are
    # deliberately absent from `bound`.
    liftable, reason, code = _predict_lift(
        compiled, has_dispatch=has_dispatch,
        has_doc_resolver=has_doc_resolver,
        bound=bound, context_item=context_item)

    graph = _build_graph(compiled)
    sites = SiteProfile(
        count=graph.site_count,
        destinations=tuple(graph.destinations),
        dynamic_destinations=graph.dynamic_destinations,
        updating_remote=graph.updating_remote,
    )
    properties = QueryProperties(
        liftable=liftable,
        fallback_reason=reason,
        fallback_code=code,
        updating=graph.updating_local or graph.updating_remote,
        updating_local=graph.updating_local,
        sites=sites,
        diagnostics=_diagnose(compiled, graph, extra_scope),
        dynamic_risks=tuple(graph.risks) if liftable else (),
    )
    if len(cache) >= 32:
        # One compiled query is normally analyzed under a handful of
        # capability keys; a caller cycling through many distinct
        # variable-name sets must not grow the memo without bound.
        cache.clear()
    cache[key] = properties
    return properties
