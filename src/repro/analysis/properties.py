"""The static-analysis report types.

:class:`QueryProperties` is the per-query report
:func:`~repro.analysis.analyzer.analyze_compiled` produces; it is
immutable and cheap to hold on an :class:`~repro.engine.base.Explain`
or a plan-cache entry.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional


@dataclass(frozen=True)
class Diagnostic:
    """One semantic finding with its source span.

    ``severity`` is ``"error"`` (the query cannot evaluate correctly:
    unknown function, unbound variable) or ``"warning"`` (suspicious
    but evaluable: a remote call the local module registry cannot
    resolve, a nested ``execute at`` that dispatches from the remote
    peer).  ``code`` is a W3C error code (``XPST0017``, ``XPST0008``,
    ``XPST0081``) or an analyzer-specific slug
    (``unreachable-remote-body``).  ``line``/``column`` are 1-based
    positions in the main query source, ``None`` for synthesized nodes.
    """

    severity: str
    code: str
    message: str
    line: Optional[int] = None
    column: Optional[int] = None

    def render(self, uri: str = "<query>") -> str:
        """``uri:line:col: severity [code]: message`` — the compiler-
        style line the CLI ``check`` subcommand prints."""
        location = f"{self.line}:{self.column}" \
            if self.line is not None else "-"
        return f"{uri}:{location}: {self.severity} [{self.code}]: " \
               f"{self.message}"


@dataclass(frozen=True)
class SiteProfile:
    """``execute at`` profile of the locally-evaluated expression tree.

    ``count`` covers the query body plus the bodies of locally-called
    functions (transitively) — but *not* the bodies of ``execute at``
    target functions, which run at the remote peer.  ``destinations``
    holds the statically-known (string-literal) destination URIs;
    ``dynamic_destinations`` counts sites whose destination is computed
    at runtime.  ``updating_remote`` is the no-speculative-shipping
    guard: some site calls an updating function, or a function the
    local registry cannot resolve (conservatively treated as updating).
    ``groupable`` flags multi-site queries, which ship fewer messages
    through the batching executor's (destination, function) grouping
    than through per-site lifted dispatch.
    """

    count: int = 0
    destinations: tuple = ()
    dynamic_destinations: int = 0
    updating_remote: bool = False

    @property
    def groupable(self) -> bool:
        return self.count > 1


@dataclass(frozen=True)
class QueryProperties:
    """Everything the static pass learned about one compiled query.

    ``liftable`` is the *static* verdict: the query passes the lifted
    pipeline's preflight and environment checks under the analyzed
    bindings.  A liftable query can still bail dynamically (runtime
    positional predicates, unresolvable documents, cardinality) —
    ``dynamic_risks`` lists the stable fallback codes that might fire;
    an empty tuple means the static verdict is definitive.

    ``updating`` covers the full locally-evaluated expression tree:
    XQUF update expressions, ``fn:put``, locally-called updating
    functions, and updating (or unresolvable) remote calls — the
    whole-tree replacement for the remote-call-only guard
    :func:`repro.pathfinder.remote_call_profile` used to provide.
    """

    liftable: bool
    fallback_reason: Optional[str] = None
    fallback_code: Optional[str] = None
    updating: bool = False
    updating_local: bool = False
    sites: SiteProfile = field(default_factory=SiteProfile)
    diagnostics: tuple = ()
    dynamic_risks: tuple = ()

    @property
    def errors(self) -> tuple:
        return tuple(d for d in self.diagnostics if d.severity == "error")

    @property
    def warnings(self) -> tuple:
        return tuple(d for d in self.diagnostics if d.severity == "warning")

    @property
    def ok(self) -> bool:
        """No error-severity diagnostics (the ``repro check`` gate)."""
        return not self.errors

    def render(self) -> str:
        """One-line summary for :meth:`Explain.render`."""
        parts = [f"liftable={'yes' if self.liftable else 'no'}"]
        if not self.liftable and self.fallback_code:
            parts[-1] += f" [{self.fallback_code}]"
        parts.append(f"updating={'yes' if self.updating else 'no'}")
        if self.sites.count:
            where = ", ".join(self.sites.destinations)
            if self.sites.dynamic_destinations:
                dyn = f"{self.sites.dynamic_destinations} dynamic"
                where = f"{where}, {dyn}" if where else dyn
            parts.append(f"sites={self.sites.count} ({where})"
                         if where else f"sites={self.sites.count}")
        if self.diagnostics:
            parts.append(f"{len(self.errors)} error(s), "
                         f"{len(self.warnings)} warning(s)")
        return "analysis: " + ", ".join(parts)
