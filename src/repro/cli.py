"""Command-line XQuery runner.

Runs an XQuery (from a file or ``-e`` inline) against documents and
modules mounted from the filesystem — the single-peer face of the
library, handy for experimenting with the engine and the XRPC syntax::

    python -m repro.cli -e 'doc("db.xml")//name' --doc db.xml=films.xml
    python -m repro.cli query.xq --module film.xq --doc filmDB.xml=films.xml

Documents are mounted as ``uri=path`` (or just ``path``, using the file
name as URI); ``--module`` registers library modules so ``import
module`` resolves.  Updating queries apply their pending update list and
``--save uri=path`` writes the post-state back out.

Queries route through the unified session API
(:class:`repro.session.Database`): the loop-lifted relational plan runs
first, anything outside the lifted core falls back to the tree
interpreter.  ``--explain`` prints the plan kind, fallback reason and
compile/execute timings to stderr; ``--no-lifted`` pins the query to
the interpreter.

``check`` lints queries without executing them, through the
prepare-time static analyzer (:mod:`repro.analysis`)::

    python -m repro.cli check queries/*.xq --module film.xq
    python -m repro.cli check -e 'sum($missing)'

Semantic problems (unknown functions, unbound variables, undeclared
prefixes) print as ``file:line:col: severity [code]: message`` lines and
exit non-zero; ``--analysis`` additionally prints each query's property
summary (liftability verdict, updating-ness, site profile).

``search`` runs an SLCA keyword search over the mounted documents
through the inverted term index (:mod:`repro.search`)::

    python -m repro.cli search rare vintage --doc db.xml=films.xml
    python -m repro.cli search auction --doc db.xml=films.xml --ranked

Hits print one per line as ``uri<TAB>score<TAB>xml``; ``--ranked``
orders by descending term-frequency score, ``--limit N`` truncates.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from repro.errors import XRPCReproError
from repro.session import Database
from repro.xml.serializer import serialize, serialize_sequence


def _split_mount(spec: str) -> tuple[str, str]:
    """Parse ``uri=path`` (or bare ``path``) mount specifications."""
    if "=" in spec:
        uri, _, path = spec.partition("=")
        return uri, path
    return Path(spec).name, spec


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.cli",
        description="Run an XQuery against mounted documents and modules.")
    parser.add_argument("query", nargs="?",
                        help="path to an .xq file with the main module")
    parser.add_argument("-e", "--expression",
                        help="inline query text (alternative to a file)")
    parser.add_argument("--doc", action="append", default=[],
                        metavar="URI=PATH",
                        help="mount an XML document (repeatable)")
    parser.add_argument("--module", action="append", default=[],
                        metavar="[LOCATION=]PATH",
                        help="register a library module (repeatable)")
    parser.add_argument("--var", action="append", default=[],
                        metavar="NAME=VALUE",
                        help="bind an external string variable (repeatable)")
    parser.add_argument("--save", action="append", default=[],
                        metavar="URI=PATH",
                        help="write a (possibly updated) document back out")
    parser.add_argument("--indent", action="store_true",
                        help="pretty-print node results")
    parser.add_argument("--explain", action="store_true",
                        help="print plan kind, fallback reason and timings "
                             "to stderr")
    parser.add_argument("--no-lifted", action="store_true",
                        help="skip the loop-lifted relational plan and run "
                             "the tree interpreter directly")
    parser.add_argument("--timeout", type=float, default=None,
                        metavar="SECONDS",
                        help="deadline budget for the query; the run fails "
                             "with an error once the budget is exhausted")
    parser.add_argument("--xml-backend", choices=["expat", "python"],
                        default=None,
                        help="parse frontend for --doc mounts (default: "
                             "expat with python fallback, or the "
                             "REPRO_XML_BACKEND environment override)")
    return parser


def build_check_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.cli check",
        description="Statically analyze queries without executing them.")
    parser.add_argument("queries", nargs="*",
                        help="paths to .xq files to check")
    parser.add_argument("-e", "--expression",
                        help="inline query text (alternative to files)")
    parser.add_argument("--module", action="append", default=[],
                        metavar="[LOCATION=]PATH",
                        help="register a library module (repeatable)")
    parser.add_argument("--var", action="append", default=[],
                        metavar="NAME[=VALUE]",
                        help="treat NAME as a bound external variable "
                             "(repeatable; the value is ignored)")
    parser.add_argument("--analysis", action="store_true",
                        help="also print each query's property summary "
                             "(liftability, updating-ness, sites)")
    return parser


def build_search_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.cli search",
        description="SLCA keyword search over mounted documents.")
    parser.add_argument("terms", nargs="+",
                        help="search terms (conjunction of all tokens)")
    parser.add_argument("--doc", action="append", default=[],
                        metavar="URI=PATH",
                        help="mount an XML document (repeatable)")
    parser.add_argument("--ranked", action="store_true",
                        help="order hits by descending term-frequency score")
    parser.add_argument("--limit", type=int, default=None, metavar="N",
                        help="print at most N hits")
    parser.add_argument("--xml-backend", choices=["expat", "python"],
                        default=None,
                        help="parse frontend for --doc mounts")
    return parser


def search_main(argv: list[str]) -> int:
    """``repro search``: posting-list keyword search, one hit per line.

    Exit status 0 when at least one hit was found, 1 otherwise (grep
    conventions).
    """
    parser = build_search_parser()
    args = parser.parse_args(argv)
    if not args.doc:
        parser.error("mount at least one document with --doc")

    db = Database(xml_backend=args.xml_backend)
    for spec in args.doc:
        uri, path = _split_mount(spec)
        db.register(uri, Path(path).read_bytes())

    try:
        hits = db.search(args.terms, ranked=args.ranked, limit=args.limit)
    except XRPCReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    for hit in hits:
        print(f"{hit.uri}\t{hit.score}\t{serialize(hit.node)}")
    return 0 if hits else 1


def check_main(argv: list[str]) -> int:
    """``repro check``: lint queries through the static analyzer.

    Exit status 0 when every query compiles with no error-severity
    diagnostics, 1 otherwise.  Analysis assumes the distributed setting
    (bulk dispatch available), so the liftability verdict matches what
    an :class:`~repro.rpc.XRPCPeer` would do with the query.
    """
    from repro.analysis import analyze_compiled

    parser = build_check_parser()
    args = parser.parse_args(argv)
    if not args.queries and not args.expression:
        parser.error("provide query files and/or -e EXPRESSION")

    db = Database()
    for spec in args.module:
        location, path = _split_mount(spec)
        db.register_module(Path(path).read_text(encoding="utf-8"),
                           location=location)
    bound = {spec.partition("=")[0] for spec in args.var}

    targets = [(path, None) for path in args.queries]
    if args.expression:
        targets.append(("<expression>", args.expression))

    failures = 0
    for label, source in targets:
        if source is None:
            source = Path(label).read_text(encoding="utf-8")
        try:
            compiled = db.engine.compile(source)
        except XRPCReproError as exc:
            print(f"{label}: error: {exc}")
            failures += 1
            continue
        # variables=None assumes every `declare variable ... external`
        # is bound at run time (check cannot know the caller's bindings)
        # unless --var names an explicit binding set.
        properties = analyze_compiled(
            compiled, has_dispatch=True, has_doc_resolver=True,
            variables=bound or None)
        for diagnostic in properties.diagnostics:
            print(diagnostic.render(label))
        if args.analysis:
            print(f"{label}: {properties.render()}")
        if not properties.ok:
            failures += 1
    return 1 if failures else 0


def main(argv: list[str] | None = None) -> int:
    if argv is None:
        argv = sys.argv[1:]
    if argv and argv[0] == "check":
        return check_main(argv[1:])
    if argv and argv[0] == "search":
        return search_main(argv[1:])
    parser = build_parser()
    args = parser.parse_args(argv)

    if bool(args.query) == bool(args.expression):
        parser.error("provide exactly one of a query file or -e EXPRESSION")
    if args.expression:
        source = args.expression
    else:
        source = Path(args.query).read_text(encoding="utf-8")

    db = Database(try_lifted=not args.no_lifted,
                  xml_backend=args.xml_backend)
    for spec in args.module:
        location, path = _split_mount(spec)
        db.register_module(Path(path).read_text(encoding="utf-8"),
                           location=location)
    for spec in args.doc:
        uri, path = _split_mount(spec)
        # Bytes in: the parse frontend honours the file's XML
        # declaration/BOM instead of assuming UTF-8.
        db.register(uri, Path(path).read_bytes())

    variables = {}
    for spec in args.var:
        name, _, value = spec.partition("=")
        variables[name] = value

    try:
        prepared = db.prepare(source)
        result = prepared.execute(variables=variables or None,
                                  timeout=args.timeout)
    except XRPCReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1

    if args.explain and prepared.last_explain is not None:
        print(prepared.last_explain.render(), file=sys.stderr)

    if args.indent:
        from repro.xdm.nodes import Node
        pieces = []
        for item in result:
            if isinstance(item, Node):
                pieces.append(serialize(item, indent=True))
            else:
                pieces.append(item.string_value())
        output = "\n".join(pieces)
    else:
        output = serialize_sequence(result)
    if output:
        print(output)

    for spec in args.save:
        uri, path = _split_mount(spec)
        Path(path).write_text(
            serialize(db.store.get(uri), xml_declaration=True) + "\n",
            encoding="utf-8")
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
