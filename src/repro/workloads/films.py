"""The film database running example (section 2 of the paper)."""

from __future__ import annotations

import random

FILM_MODULE_LOCATION = "http://x.example.org/film.xq"

FILM_MODULE = """
module namespace film = "films";
declare function film:filmsByActor($actor as xs:string) as node()*
{ doc("filmDB.xml")//name[../actor = $actor] };
"""

_PAPER_FILMS = [
    ("The Rock", "Sean Connery"),
    ("Goldfinger", "Sean Connery"),
    ("Green Card", "Gerard Depardieu"),
]

_ACTORS = [
    "Sean Connery", "Julie Andrews", "Gerard Depardieu", "Audrey Hepburn",
    "Marlon Brando", "Meryl Streep", "Humphrey Bogart", "Ingrid Bergman",
]


def film_db(extra_films: int = 0, seed: int = 7) -> str:
    """The paper's filmDB.xml, optionally padded with synthetic films.

    Parameters
    ----------
    extra_films:
        Number of generated films appended after the three from the
        paper (used by the bandwidth experiments to scale payloads).
    seed:
        RNG seed for deterministic generation.
    """
    rng = random.Random(seed)
    rows = list(_PAPER_FILMS)
    for index in range(extra_films):
        rows.append((f"Synthetic Film {index}", rng.choice(_ACTORS)))
    films = "\n".join(
        f"<film><name>{name}</name><actor>{actor}</actor></film>"
        for name, actor in rows)
    return f"<films>\n{films}\n</films>"
