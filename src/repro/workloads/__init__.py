"""Workload generators and test modules for the paper's experiments.

* :mod:`repro.workloads.films` — the running example of section 2:
  ``filmDB.xml`` documents and the ``film.xq`` module.
* :mod:`repro.workloads.xmark` — a deterministic, scaled-down XMark-like
  generator producing ``persons.xml`` / ``auctions.xml`` with the
  element shapes Q7 (section 5) navigates.
* :mod:`repro.workloads.modules` — the XQuery modules the experiments
  install on peers: ``test:echoVoid``, ``func:getPerson`` and the
  ``functions_b`` strategy functions Q_B1/Q_B2/Q_B3.
"""

from repro.workloads.films import FILM_MODULE, FILM_MODULE_LOCATION, film_db
from repro.workloads.xmark import XMarkConfig, generate_persons, generate_auctions
from repro.workloads.modules import (
    TEST_MODULE,
    TEST_MODULE_LOCATION,
    GETPERSON_MODULE,
    GETPERSON_MODULE_LOCATION,
    FUNCTIONS_B_MODULE,
    FUNCTIONS_B_LOCATION,
)

__all__ = [
    "FILM_MODULE",
    "FILM_MODULE_LOCATION",
    "film_db",
    "XMarkConfig",
    "generate_persons",
    "generate_auctions",
    "TEST_MODULE",
    "TEST_MODULE_LOCATION",
    "GETPERSON_MODULE",
    "GETPERSON_MODULE_LOCATION",
    "FUNCTIONS_B_MODULE",
    "FUNCTIONS_B_LOCATION",
]
