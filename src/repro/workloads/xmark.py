"""XMark-like data generator (deterministic, scaled-down).

The paper's section 5 experiment distributes an XMark document over two
peers: peer A holds all persons ("persons.xml", 1.1 MB / 250 persons),
peer B holds items and auctions ("auctions.xml", 50 MB / 4875 closed
auctions), with exactly 6 matches between persons and closed-auction
buyers.  This generator reproduces those *structural* parameters at a
configurable scale: person/auction counts, the number of buyer matches,
and filler text sizing so the byte-ratio between the documents is in the
same regime.

We cannot run the original C XMark generator here; the substitution
preserves what the strategy comparison actually depends on — document
sizes, join selectivity and the element shapes the queries navigate
(``person/@id``, ``closed_auction/buyer/@person``, ``annotation``).
"""

from __future__ import annotations

import random
from dataclasses import dataclass

_FIRST = ["Kasidit", "Jaana", "Wang", "Ewing", "Erara", "Shusaku", "Amare",
          "Benedikte", "Carmen", "Dariusz", "Eleni", "Farouk", "Gerd",
          "Hiroshi", "Ines", "Jovan"]
_LAST = ["Treweek", "Ge", "Yong", "Andersen", "Ichiyoshi", "Uemura",
         "Okafor", "Nielsen", "Ferreira", "Kowalski", "Papadaki",
         "Haddad", "Muller", "Sato", "Costa", "Petrov"]
_WORDS = ("auction lot rare vintage collectible mint condition shipping "
          "worldwide bidder reserve estimate provenance catalogue signed "
          "limited edition original certificate authentic").split()


@dataclass
class XMarkConfig:
    """Scale parameters; defaults mirror the paper's cardinalities."""

    persons: int = 250
    closed_auctions: int = 4875
    open_auctions: int = 120
    matches: int = 6            # persons that actually bought something
    annotation_words: int = 12  # filler text per auction annotation
    person_filler_words: int = 20
    seed: int = 42


def _name(rng: random.Random) -> str:
    return f"{rng.choice(_FIRST)} {rng.choice(_LAST)}"


def _text(rng: random.Random, words: int) -> str:
    return " ".join(rng.choice(_WORDS) for _ in range(words))


def generate_persons(config: XMarkConfig) -> str:
    """persons.xml for peer A: ``site/people/person`` entries."""
    rng = random.Random(config.seed)
    parts = ["<site><people>"]
    for index in range(config.persons):
        name = _name(rng)
        city = rng.choice(["Amsterdam", "Vienna", "Tokyo", "Lagos", "Lima"])
        parts.append(
            f'<person id="person{index}">'
            f"<name>{name}</name>"
            f"<emailaddress>mailto:{name.replace(' ', '.')}@example.org"
            f"</emailaddress>"
            f"<address><street>{rng.randint(1, 99)} Main St</street>"
            f"<city>{city}</city></address>"
            f"<profile><interest>{_text(rng, config.person_filler_words)}"
            f"</interest></profile>"
            f"</person>")
    parts.append("</people></site>")
    return "".join(parts)


def generate_auctions(config: XMarkConfig) -> str:
    """auctions.xml for peer B: closed/open auctions + items.

    Exactly ``config.matches`` closed auctions reference a buyer id that
    exists in peer A's persons.xml (``person0 .. person<matches-1>``);
    all other buyers use ids beyond the persons range so they never join.
    """
    rng = random.Random(config.seed + 1)
    parts = ["<site>", "<closed_auctions>"]
    matching = set(rng.sample(range(config.closed_auctions),
                              min(config.matches, config.closed_auctions)))
    match_iter = iter(sorted(matching))
    match_assignment = {}
    for person_index, auction_index in enumerate(sorted(matching)):
        match_assignment[auction_index] = person_index
    for index in range(config.closed_auctions):
        if index in match_assignment:
            buyer = f"person{match_assignment[index]}"
        else:
            buyer = f"person{config.persons + index}"  # never matches
        parts.append(
            f"<closed_auction>"
            f'<seller person="person{config.persons + 2 * index}"/>'
            f'<buyer person="{buyer}"/>'
            f'<itemref item="item{index}"/>'
            f"<price>{rng.randint(5, 500)}.00</price>"
            f"<date>{rng.randint(1, 28):02d}/{rng.randint(1, 12):02d}/2006</date>"
            f"<annotation><description><text>"
            f"{_text(rng, config.annotation_words)}"
            f"</text></description></annotation>"
            f"</closed_auction>")
    parts.append("</closed_auctions><open_auctions>")
    for index in range(config.open_auctions):
        parts.append(
            f"<open_auction>"
            f'<itemref item="item{config.closed_auctions + index}"/>'
            f"<initial>{rng.randint(1, 50)}.00</initial>"
            f"<bidder><increase>{rng.randint(1, 20)}.00</increase></bidder>"
            f"</open_auction>")
    parts.append("</open_auctions><regions><europe>")
    for index in range(0, config.closed_auctions, 25):
        parts.append(
            f'<item id="item{index}"><name>{_text(rng, 3)}</name>'
            f"<description><text>{_text(rng, 8)}</text></description></item>")
    parts.append("</europe></regions></site>")
    return "".join(parts)


#: The XMark-like read suite: every axis the lifted core supports plus
#: the statically positional predicate shapes, phrased over the two
#: generated documents (registered as ``persons.xml`` /
#: ``auctions.xml``).  The whole suite must execute with ``plan ==
#: "lifted"`` and no fallback — CI asserts 100% coverage — and doubles
#: as the per-axis microbench workload.
READ_SUITE: dict[str, str] = {
    "child-chain": "doc('persons.xml')/site/people/person/name",
    "descendant": "doc('auctions.xml')//closed_auction/price",
    "descendant-or-self": "doc('auctions.xml')//closed_auction//text",
    "attribute": "doc('auctions.xml')//buyer/@person",
    "self": "doc('persons.xml')//person/self::*",
    "parent": "doc('persons.xml')//city/parent::address",
    "ancestor": "doc('persons.xml')//city/ancestor::person/name",
    "ancestor-or-self": "doc('persons.xml')//city/ancestor-or-self::*",
    "following": "doc('auctions.xml')//seller/following::price",
    "preceding": "doc('auctions.xml')//price/preceding::seller",
    "following-sibling":
        "doc('auctions.xml')//seller/following-sibling::itemref",
    "preceding-sibling":
        "doc('auctions.xml')//itemref/preceding-sibling::seller",
    "wildcard": "doc('persons.xml')//address/*",
    "positional-first": "doc('persons.xml')//person[1]/name",
    "positional-literal": "doc('auctions.xml')//closed_auction/*[2]",
    "positional-last": "doc('auctions.xml')//closed_auction/*[last()]",
    "position-range": "doc('persons.xml')//person/*[position() >= 2]",
    "position-eq-last": "doc('persons.xml')//person/*[position() = last()]",
    "positional-reverse": "doc('persons.xml')//city/ancestor::*[2]",
    "positional-preceding": "doc('persons.xml')//city/preceding::name[1]",
    "predicate-equality":
        "doc('auctions.xml')//closed_auction[buyer/@person = 'person0']"
        "/price",
    "flwor-paths":
        "for $p in doc('persons.xml')//person return $p/address/city",
}


#: The keyword-search suite: every ``contains`` shape the posting-list
#: prefilter serves — literal needles over elements, text nodes and
#: attributes, multi-token and punctuated needles, and composition with
#: lifted axes/FLWOR.  Like :data:`READ_SUITE`, the whole suite must
#: execute with ``plan == "lifted"`` (CI asserts 100% coverage) and each
#: query's result must be byte-identical to the tree interpreter's
#: ``fn:contains``.
KEYWORD_SUITE: dict[str, str] = {
    "contains-element":
        "doc('persons.xml')//person[contains(., 'worldwide')]/name",
    "contains-descendant":
        "doc('auctions.xml')//closed_auction[contains(., 'vintage')]/price",
    "contains-text":
        "doc('auctions.xml')//text()[contains(., 'auction')]",
    "contains-attribute":
        "doc('auctions.xml')//buyer/@person[contains(., 'person1')]",
    "contains-multi-token":
        "doc('persons.xml')//address[contains(., 'Main St')]/city",
    "contains-punctuated":
        "doc('auctions.xml')//date[contains(., '/2006')]",
    "contains-rooted":
        "doc('persons.xml')/site/people/person[contains(., 'mint')]"
        "/emailaddress",
    "contains-flwor":
        "for $i in doc('persons.xml')//interest"
        "[contains(., 'collectible')] return $i",
    "contains-chained":
        "doc('persons.xml')//person[contains(., 'auction')]"
        "[contains(., 'shipping')]/name",
}
