"""XQuery modules installed on peers by the experiments.

These are the exact module texts the paper lists:

* ``test.xq`` — the echoVoid micro-benchmark module (section 3.3);
* ``functions.xq`` — the getPerson function of the wrapper example
  (section 4), plus payload echo helpers for the throughput experiment;
* ``b.xq`` — the ``functions_b`` module of section 5 with the strategy
  functions Q_B1 (predicate push-down), Q_B2 (execution relocation) and
  Q_B3 (distributed semi-join).
"""

TEST_MODULE_LOCATION = "http://x.example.org/test.xq"

TEST_MODULE = """
module namespace tst = "test";
declare function tst:echoVoid() { () };
declare function tst:echo($payload as node()*) as node()* { $payload };
declare function tst:produce($n as xs:integer) as node()*
{ for $i in (1 to $n) return <row>payload-chunk-{$i}</row> };
"""

GETPERSON_MODULE_LOCATION = "http://example.org/functions.xq"

GETPERSON_MODULE = """
module namespace func = "functions";
declare function func:getPerson($doc as xs:string,
                                $pid as xs:string) as node()?
{ zero-or-one(doc($doc)//person[@id = $pid]) };
declare function func:echoVoid() { () };
"""

FUNCTIONS_B_LOCATION = "http://example.org/b.xq"

FUNCTIONS_B_MODULE = """
module namespace b = "functions_b";

declare function b:Q_B1() as node()*
{ doc("auctions.xml")//closed_auction };

declare function b:Q_B2() as node()*
{ for $p in doc("xrpc://A/persons.xml")//person,
      $ca in doc("auctions.xml")//closed_auction
  where $p/@id = $ca/buyer/@person
  return <result>{$p, $ca/annotation}</result>
};

declare function b:Q_B3($pid as xs:string) as node()*
{ doc("auctions.xml")//closed_auction[./buyer/@person = $pid] };
"""
