"""Parameter marshaling: the s2n() / n2s() functions of the paper.

``s2n`` (sequence-to-node) renders an XDM sequence into an
``<xrpc:sequence>`` element; ``n2s`` (node-to-sequence) is the inverse.
:class:`MarshalWriter` is the streaming sibling of ``s2n``: it emits the
equivalent XML text directly into a string buffer, so the message layer
never materialises holder-node trees on the hot path.

Two properties the paper calls out are enforced here:

* **Typed atomic round-trip** — atomic values carry their XML Schema
  type in ``xsi:type`` and come back as values of that type.
* **Call-by-value** — node-typed parameters are returned by ``n2s`` as
  *standalone fragments with fresh node identity*, so upward/sideways
  XPath axes on them are empty at the remote side and a query can never
  navigate into the SOAP envelope.  ``n2s`` realises this in a single
  pass by *adopting* the already-fresh parsed fragments out of the
  message tree instead of deep-copying them a second time.
"""

from __future__ import annotations

import threading
from typing import Optional

from repro.errors import XRPCFault
from repro.xdm.atomic import AtomicValue, cast
from repro.xdm.nodes import (
    AttributeNode,
    CommentNode,
    DocumentNode,
    ElementNode,
    Node,
    NodeFactory,
    ProcessingInstructionNode,
    TextNode,
    copy_into,
)
from repro.xdm.types import type_by_name, is_known_type, xs
from repro.xml.serializer import escape_attribute, escape_text, serialize_into

XRPC_PREFIX = "xrpc"

#: Per-thread pool of piece buffers.  A bulk RPC marshals one envelope
#: per request plus one fingerprint per call; growing a fresh list each
#: time re-pays the same reallocations.  ``release()`` returns a
#: writer's (cleared) buffer here so the next writer on this thread
#: starts with list capacity already grown.  Thread-local because
#: writers are built on server worker threads concurrently.
_BUFFER_POOL = threading.local()
_POOL_LIMIT = 8


class MarshalWriter:
    """One-pass SOAP XML emitter.

    Streams envelope markup and ``s2n``-equivalent value holders straight
    into a string buffer; node-typed items are serialized directly from
    their live XDM trees.  Compared with the old
    ``NodeFactory``-tree-then-``serialize`` pipeline this removes one
    full tree materialisation (and its deep copies) per message.

    Start tags are closed lazily so childless elements collapse to
    ``<name/>`` exactly like the tree serializer.
    """

    def __init__(self) -> None:
        pool = _BUFFER_POOL.__dict__.setdefault("buffers", [])
        self._out: list[str] = pool.pop() if pool else []
        self._stack: list[str] = []
        self._open = False          # a start tag still awaits '>'
        self._scope: dict[str, str] = {}  # prefixes declared so far

    # -- low-level markup ---------------------------------------------------

    def prolog(self) -> None:
        self._out.append('<?xml version="1.0" encoding="utf-8"?>')

    def _close_tag(self) -> None:
        if self._open:
            self._out.append(">")
            self._open = False

    def start(self, name: str,
              attributes: tuple | list = (),
              declarations: Optional[dict[str, str]] = None) -> None:
        """Open ``<name ...>`` with xmlns declarations before attributes."""
        self._close_tag()
        out = self._out
        out.append(f"<{name}")
        if declarations:
            self._scope.update(declarations)
            for prefix, uri in sorted(declarations.items()):
                xmlns = "xmlns" if prefix == "" else f"xmlns:{prefix}"
                out.append(f' {xmlns}="{escape_attribute(uri)}"')
        for attr_name, value in attributes:
            out.append(f' {attr_name}="{escape_attribute(value)}"')
        self._stack.append(name)
        self._open = True

    def end(self) -> None:
        name = self._stack.pop()
        if self._open:
            self._out.append("/>")
            self._open = False
        else:
            self._out.append(f"</{name}>")

    def text(self, content: str) -> None:
        if not content:
            return
        self._close_tag()
        self._out.append(escape_text(content))

    def element(self, name: str, attributes: tuple | list = (),
                content: str = "") -> None:
        """Convenience: a leaf element with optional text content."""
        self.start(name, attributes)
        self.text(content)
        self.end()

    def node(self, node: Node) -> None:
        """Serialize an XDM tree in place, honouring declared prefixes."""
        self._close_tag()
        serialize_into(node, self._out, self._scope)

    # -- the streaming s2n --------------------------------------------------

    def sequence(self, items: list) -> None:
        """Emit ``<xrpc:sequence>`` holders for an XDM sequence (s2n)."""
        self.start(f"{XRPC_PREFIX}:sequence")
        for item in items:
            self.value(item)
        self.end()

    def value(self, item) -> None:
        """Emit one value holder, mirroring ``_marshal_item``."""
        if isinstance(item, AtomicValue):
            self.element(f"{XRPC_PREFIX}:atomic-value",
                         (("xsi:type", item.type.name),),
                         item.string_value())
            return
        if isinstance(item, ElementNode):
            self.start(f"{XRPC_PREFIX}:element")
            self.node(item)
            self.end()
            return
        if isinstance(item, DocumentNode):
            self.start(f"{XRPC_PREFIX}:document")
            for child in item.children:
                self.node(child)
            self.end()
            return
        if isinstance(item, AttributeNode):
            attributes = []
            if ":" in item.name and item.ns_uri:
                prefix = item.name.split(":", 1)[0]
                if prefix not in ("xml", "xmlns") \
                        and self._scope.get(prefix) != item.ns_uri:
                    attributes.append((f"xmlns:{prefix}", item.ns_uri))
            attributes.append((item.name, item.value))
            self.element(f"{XRPC_PREFIX}:attribute", attributes)
            return
        if isinstance(item, TextNode):
            self.element(f"{XRPC_PREFIX}:text", (), item.content)
            return
        if isinstance(item, CommentNode):
            self.element(f"{XRPC_PREFIX}:comment", (), item.content)
            return
        if isinstance(item, ProcessingInstructionNode):
            self.element(f"{XRPC_PREFIX}:pi", (("target", item.target),),
                         item.content)
            return
        raise XRPCFault("env:Sender", f"cannot marshal item {item!r}")

    def getvalue(self) -> str:
        self._close_tag()
        return "".join(self._out)

    def release(self) -> None:
        """Recycle this writer's buffer into the thread's pool.

        Call after the final ``getvalue()``; the writer must not be
        used afterwards (its buffer may be handed to another writer).
        """
        buffer = self._out
        self._out = []
        del buffer[:]
        pool = _BUFFER_POOL.__dict__.setdefault("buffers", [])
        if len(pool) < _POOL_LIMIT:
            pool.append(buffer)


def marshal_fingerprint(params: list[list]) -> str:
    """Canonical serialized form of one call's parameter list.

    Two parameter lists with equal fingerprints marshal to identical
    wire bytes, so a bulk result computed for one answers the other.
    Used by the Bulk RPC replayer for O(1) index-keyed matching.
    """
    writer = MarshalWriter()
    for param in params:
        writer.sequence(param)
    fingerprint = writer.getvalue()
    writer.release()
    return fingerprint


def s2n(sequence: list, factory: Optional[NodeFactory] = None) -> ElementNode:
    """Marshal an XDM sequence into an ``<xrpc:sequence>`` element."""
    factory = factory or NodeFactory()
    wrapper = factory.element(f"{XRPC_PREFIX}:sequence",
                              "http://monetdb.cwi.nl/XQuery")
    for item in sequence:
        wrapper.append(_marshal_item(item, factory))
    return wrapper


def _marshal_item(item, factory: NodeFactory) -> Node:
    ns = "http://monetdb.cwi.nl/XQuery"
    if isinstance(item, AtomicValue):
        holder = factory.element(f"{XRPC_PREFIX}:atomic-value", ns)
        holder.set_attribute(
            factory.attribute("xsi:type", item.type.name,
                              "http://www.w3.org/2001/XMLSchema-instance"))
        text = item.string_value()
        if text:
            holder.append(factory.text(text))
        return holder
    if isinstance(item, ElementNode):
        holder = factory.element(f"{XRPC_PREFIX}:element", ns)
        holder.append(copy_into(item, factory))
        return holder
    if isinstance(item, DocumentNode):
        holder = factory.element(f"{XRPC_PREFIX}:document", ns)
        for child in item.children:
            holder.append(copy_into(child, factory))
        return holder
    if isinstance(item, AttributeNode):
        holder = factory.element(f"{XRPC_PREFIX}:attribute", ns)
        holder.set_attribute(
            factory.attribute(item.name, item.value, item.ns_uri))
        return holder
    if isinstance(item, TextNode):
        holder = factory.element(f"{XRPC_PREFIX}:text", ns)
        if item.content:
            holder.append(factory.text(item.content))
        return holder
    if isinstance(item, CommentNode):
        holder = factory.element(f"{XRPC_PREFIX}:comment", ns)
        if item.content:
            holder.append(factory.text(item.content))
        return holder
    if isinstance(item, ProcessingInstructionNode):
        holder = factory.element(f"{XRPC_PREFIX}:pi", ns)
        holder.set_attribute(factory.attribute("target", item.target))
        if item.content:
            holder.append(factory.text(item.content))
        return holder
    raise XRPCFault("env:Sender", f"cannot marshal item {item!r}")


def n2s(sequence_element: ElementNode) -> list:
    """Unmarshal an ``<xrpc:sequence>`` element back into an XDM sequence.

    Single-pass: node values are *adopted* out of the message tree —
    detached from their holder with the parent link cleared — rather
    than deep-copied a second time.  The parsed message tree is itself a
    fresh copy of the sender's data, so adoption preserves the
    call-by-value guarantee (empty upward/sideways axes) at zero cost.
    """
    result: list = []
    for holder in sequence_element.child_elements():
        result.append(_unmarshal_item(holder))
    return result


def _adopt(holder: ElementNode, node: Node) -> Node:
    """Detach *node* from its holder: a standalone fragment, no copy.

    The fragment becomes a tree root of its own; any structural index
    covering the message tree is invalidated so a later query against
    the fragment builds its own pre/size/level view (the parse pass
    already stamped the encoding; subtree serials stay dense).
    """
    node._invalidate_index()
    holder.children.remove(node)
    node.parent = None
    return node


def _unmarshal_item(holder: ElementNode):
    kind = holder.local_name
    if kind == "atomic-value":
        type_attr = holder.get_attribute("xsi:type") or holder.get_attribute("type")
        type_name = type_attr.value if type_attr else "xs:string"
        if not is_known_type(type_name):
            # Unknown (user-defined) type: degrade to untypedAtomic, as the
            # paper allows for anonymous user-defined schema types.
            return AtomicValue(holder.string_value(), xs.untypedAtomic)
        raw = AtomicValue(holder.string_value(), xs.untypedAtomic)
        return cast(raw, type_by_name(type_name))
    if kind == "element":
        element = next(
            (c for c in holder.children if isinstance(c, ElementNode)), None)
        if element is None:
            raise XRPCFault("env:Sender", "xrpc:element holder without child element")
        return _adopt(holder, element)
    if kind == "document":
        # Reuse the holder's order key for the document node: it precedes
        # its adopted children's keys, keeping document order consistent.
        document = DocumentNode(holder.order_key)
        holder._invalidate_index()
        children = list(holder.children)
        holder.children.clear()
        for child in children:
            document.append(child)
        return document
    if kind == "attribute":
        source = next(
            (a for a in holder.attributes
             if not a.name.startswith("xmlns") and a.local_name != "type"),
            None)
        if source is None:
            raise XRPCFault("env:Sender", "xrpc:attribute holder without attribute")
        source.parent = None
        return source
    if kind == "text":
        return TextNode(holder.order_key, holder.string_value())
    if kind == "comment":
        return CommentNode(holder.order_key, holder.string_value())
    if kind == "pi":
        target_attr = holder.get_attribute("target")
        target = target_attr.value if target_attr else "pi"
        return ProcessingInstructionNode(
            holder.order_key, target, holder.string_value())
    raise XRPCFault("env:Sender", f"unknown XRPC value element <{kind}>")


# Convenience aliases used by the message layer -----------------------------


def sequence_to_parts(sequence: list, factory: NodeFactory) -> ElementNode:
    return s2n(sequence, factory)


def parts_to_sequence(element: ElementNode) -> list:
    return n2s(element)
