"""Parameter marshaling: the s2n() / n2s() functions of the paper.

``s2n`` (sequence-to-node) renders an XDM sequence into an
``<xrpc:sequence>`` element; ``n2s`` (node-to-sequence) is the inverse.

Two properties the paper calls out are enforced here:

* **Typed atomic round-trip** — atomic values carry their XML Schema
  type in ``xsi:type`` and come back as values of that type.
* **Call-by-value** — node-typed parameters are returned by ``n2s`` as
  *standalone fragments with fresh node identity*, so upward/sideways
  XPath axes on them are empty at the remote side and a query can never
  navigate into the SOAP envelope.
"""

from __future__ import annotations

from typing import Optional

from repro.errors import XRPCFault
from repro.xdm.atomic import AtomicValue, cast
from repro.xdm.nodes import (
    AttributeNode,
    CommentNode,
    DocumentNode,
    ElementNode,
    Node,
    NodeFactory,
    ProcessingInstructionNode,
    TextNode,
    copy_into,
    copy_tree,
)
from repro.xdm.types import type_by_name, is_known_type, xs

XRPC_PREFIX = "xrpc"


def s2n(sequence: list, factory: Optional[NodeFactory] = None) -> ElementNode:
    """Marshal an XDM sequence into an ``<xrpc:sequence>`` element."""
    factory = factory or NodeFactory()
    wrapper = factory.element(f"{XRPC_PREFIX}:sequence",
                              "http://monetdb.cwi.nl/XQuery")
    for item in sequence:
        wrapper.append(_marshal_item(item, factory))
    return wrapper


def _marshal_item(item, factory: NodeFactory) -> Node:
    ns = "http://monetdb.cwi.nl/XQuery"
    if isinstance(item, AtomicValue):
        holder = factory.element(f"{XRPC_PREFIX}:atomic-value", ns)
        holder.set_attribute(
            factory.attribute("xsi:type", item.type.name,
                              "http://www.w3.org/2001/XMLSchema-instance"))
        text = item.string_value()
        if text:
            holder.append(factory.text(text))
        return holder
    if isinstance(item, ElementNode):
        holder = factory.element(f"{XRPC_PREFIX}:element", ns)
        holder.append(copy_into(item, factory))
        return holder
    if isinstance(item, DocumentNode):
        holder = factory.element(f"{XRPC_PREFIX}:document", ns)
        for child in item.children:
            holder.append(copy_into(child, factory))
        return holder
    if isinstance(item, AttributeNode):
        holder = factory.element(f"{XRPC_PREFIX}:attribute", ns)
        holder.set_attribute(
            factory.attribute(item.name, item.value, item.ns_uri))
        return holder
    if isinstance(item, TextNode):
        holder = factory.element(f"{XRPC_PREFIX}:text", ns)
        if item.content:
            holder.append(factory.text(item.content))
        return holder
    if isinstance(item, CommentNode):
        holder = factory.element(f"{XRPC_PREFIX}:comment", ns)
        if item.content:
            holder.append(factory.text(item.content))
        return holder
    if isinstance(item, ProcessingInstructionNode):
        holder = factory.element(f"{XRPC_PREFIX}:pi", ns)
        holder.set_attribute(factory.attribute("target", item.target))
        if item.content:
            holder.append(factory.text(item.content))
        return holder
    raise XRPCFault("env:Sender", f"cannot marshal item {item!r}")


def n2s(sequence_element: ElementNode) -> list:
    """Unmarshal an ``<xrpc:sequence>`` element back into an XDM sequence.

    Node values are deep-copied out of the message tree so each result
    item is a fresh standalone fragment (call-by-value).
    """
    result: list = []
    for holder in sequence_element.child_elements():
        result.append(_unmarshal_item(holder))
    return result


def _unmarshal_item(holder: ElementNode):
    kind = holder.local_name
    if kind == "atomic-value":
        type_attr = holder.get_attribute("xsi:type") or holder.get_attribute("type")
        type_name = type_attr.value if type_attr else "xs:string"
        if not is_known_type(type_name):
            # Unknown (user-defined) type: degrade to untypedAtomic, as the
            # paper allows for anonymous user-defined schema types.
            return AtomicValue(holder.string_value(), xs.untypedAtomic)
        raw = AtomicValue(holder.string_value(), xs.untypedAtomic)
        return cast(raw, type_by_name(type_name))
    if kind == "element":
        element = next(
            (c for c in holder.children if isinstance(c, ElementNode)), None)
        if element is None:
            raise XRPCFault("env:Sender", "xrpc:element holder without child element")
        return copy_tree(element)
    if kind == "document":
        factory = NodeFactory()
        document = factory.document()
        for child in holder.children:
            document.append(copy_into(child, factory))
        return document
    if kind == "attribute":
        source = next(
            (a for a in holder.attributes
             if not a.name.startswith("xmlns") and a.local_name != "type"),
            None)
        if source is None:
            raise XRPCFault("env:Sender", "xrpc:attribute holder without attribute")
        return NodeFactory().attribute(source.name, source.value, source.ns_uri)
    if kind == "text":
        return NodeFactory().text(holder.string_value())
    if kind == "comment":
        return NodeFactory().comment(holder.string_value())
    if kind == "pi":
        target_attr = holder.get_attribute("target")
        target = target_attr.value if target_attr else "pi"
        return NodeFactory().processing_instruction(target, holder.string_value())
    raise XRPCFault("env:Sender", f"unknown XRPC value element <{kind}>")


# Convenience aliases used by the message layer -----------------------------


def sequence_to_parts(sequence: list, factory: NodeFactory) -> ElementNode:
    return s2n(sequence, factory)


def parts_to_sequence(element: ElementNode) -> list:
    return n2s(element)
