"""SOAP XRPC message validation against a built-in schema model.

The paper publishes an XML Schema (XRPC.xsd) for the protocol and notes
that XRPC "supports ... the ability to validate SOAP messages".  Rather
than a generic XSD engine, this module encodes the XRPC.xsd content
model directly: element structure, required attributes, and the value
vocabulary, producing precise error lists.

Use :func:`validate_message` on raw XML text (or a parsed envelope) to
obtain a :class:`ValidationReport`; servers may reject invalid messages
with ``env:Sender`` faults before attempting execution.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Union

from repro.xdm.nodes import DocumentNode, ElementNode, TextNode
from repro.xdm.types import is_known_type
from repro.xml.parser import XMLSyntaxError, parse_document

XRPC_NS = "http://monetdb.cwi.nl/XQuery"
ENV_NS = "http://www.w3.org/2003/05/soap-envelope"

_VALUE_ELEMENTS = {
    "atomic-value", "element", "document", "attribute", "text",
    "comment", "pi",
}


@dataclass
class ValidationReport:
    """Outcome of validating one SOAP XRPC message."""

    errors: list[str] = field(default_factory=list)
    message_kind: str = "unknown"  # request | response | fault | txn | unknown

    @property
    def valid(self) -> bool:
        return not self.errors

    def error(self, message: str) -> None:
        self.errors.append(message)


def validate_message(message: Union[str, bytes, DocumentNode],
                     backend: Optional[str] = None) -> ValidationReport:
    """Validate a SOAP XRPC message; never raises on invalid content.

    Accepts raw text (``str`` or encoded ``bytes``, which the parse
    frontend decodes per XML declaration/BOM) or an already-parsed
    envelope; ``backend`` selects the parse frontend.
    """
    report = ValidationReport()
    if isinstance(message, (str, bytes)):
        try:
            document = parse_document(message, backend=backend)
        except XMLSyntaxError as exc:
            report.error(f"not well-formed XML: {exc}")
            return report
    else:
        document = message

    envelope = document.root_element
    if envelope is None:
        report.error("document has no root element")
        return report
    if envelope.local_name != "Envelope" or envelope.ns_uri != ENV_NS:
        report.error(
            f"root must be env:Envelope in {ENV_NS}, found <{envelope.name}>")
        return report

    body = envelope.find("Body", ENV_NS)
    if body is None:
        report.error("env:Envelope must contain an env:Body child")
        return report
    payloads = body.child_elements()
    if len(payloads) != 1:
        report.error(
            f"env:Body must contain exactly one child element, "
            f"found {len(payloads)}")
        return report
    payload = payloads[0]

    if payload.ns_uri == XRPC_NS and payload.local_name == "request":
        report.message_kind = "request"
        _validate_request(payload, report)
    elif payload.ns_uri == XRPC_NS and payload.local_name == "response":
        report.message_kind = "response"
        _validate_response(payload, report)
    elif payload.ns_uri == ENV_NS and payload.local_name == "Fault":
        report.message_kind = "fault"
        _validate_fault(payload, report)
    elif payload.ns_uri == XRPC_NS and payload.local_name in (
            "prepare", "commit", "rollback", "txn-result"):
        report.message_kind = "txn"
        _validate_txn(payload, report)
    else:
        report.error(f"unrecognised body element <{payload.name}>")
    return report


def _require_attributes(element: ElementNode, names: tuple[str, ...],
                        report: ValidationReport) -> None:
    for name in names:
        if element.get_attribute(name) is None:
            report.error(
                f"<{element.name}> is missing required attribute {name!r}")


def _validate_request(request: ElementNode, report: ValidationReport) -> None:
    _require_attributes(request, ("module", "method", "arity"), report)
    arity_attr = request.get_attribute("arity")
    arity = None
    if arity_attr is not None:
        if arity_attr.value.isdigit():
            arity = int(arity_attr.value)
        else:
            report.error(f"arity must be a non-negative integer, "
                         f"found {arity_attr.value!r}")

    calls = request.find_all("call", XRPC_NS)
    if not calls:
        report.error("xrpc:request must contain at least one xrpc:call")
    for index, call in enumerate(calls, start=1):
        sequences = call.find_all("sequence", XRPC_NS)
        non_sequences = [c for c in call.child_elements()
                         if c.local_name != "sequence"]
        if non_sequences:
            report.error(
                f"call {index}: unexpected children "
                f"{[c.name for c in non_sequences]}")
        if arity is not None and len(sequences) != arity:
            report.error(
                f"call {index}: has {len(sequences)} parameter sequences, "
                f"declared arity is {arity}")
        for seq_index, sequence in enumerate(sequences, start=1):
            _validate_sequence(sequence, f"call {index} param {seq_index}",
                               report)

    for child in request.child_elements():
        if child.local_name not in ("call", "queryID"):
            report.error(f"unexpected request child <{child.name}>")
    query_id = request.find("queryID", XRPC_NS)
    if query_id is not None:
        _require_attributes(query_id, ("host", "timestamp", "timeout"),
                            report)


def _validate_response(response: ElementNode,
                       report: ValidationReport) -> None:
    _require_attributes(response, ("module", "method"), report)
    for child in response.child_elements():
        if child.local_name == "sequence":
            _validate_sequence(child, "response sequence", report)
        elif child.local_name == "participants":
            for peer in child.child_elements():
                if peer.local_name != "peer" or \
                        peer.get_attribute("uri") is None:
                    report.error(
                        "xrpc:participants children must be "
                        "<xrpc:peer uri='...'/>")
        else:
            report.error(f"unexpected response child <{child.name}>")


def _validate_sequence(sequence: ElementNode, where: str,
                       report: ValidationReport) -> None:
    for child in sequence.children:
        if isinstance(child, TextNode):
            if child.content.strip():
                report.error(f"{where}: stray text {child.content!r} "
                             "inside xrpc:sequence")
            continue
        if not isinstance(child, ElementNode):
            continue
        if child.ns_uri != XRPC_NS or child.local_name not in _VALUE_ELEMENTS:
            report.error(
                f"{where}: invalid value element <{child.name}> "
                f"(expected one of {sorted(_VALUE_ELEMENTS)})")
            continue
        if child.local_name == "atomic-value":
            type_attr = child.get_attribute("xsi:type") \
                or child.get_attribute("type")
            if type_attr is None:
                report.error(f"{where}: atomic-value without xsi:type")
            elif type_attr.value.startswith("xs:") \
                    and not is_known_type(type_attr.value):
                report.error(
                    f"{where}: unknown XML Schema type {type_attr.value!r}")
        if child.local_name == "element":
            if not any(isinstance(c, ElementNode) for c in child.children):
                report.error(
                    f"{where}: xrpc:element must wrap exactly one element")
        if child.local_name == "pi":
            if child.get_attribute("target") is None:
                report.error(f"{where}: xrpc:pi without target attribute")


def _validate_fault(fault: ElementNode, report: ValidationReport) -> None:
    code = fault.find("Code", ENV_NS)
    if code is None or code.find("Value", ENV_NS) is None:
        report.error("env:Fault must contain env:Code/env:Value")
    reason = fault.find("Reason", ENV_NS)
    if reason is None or reason.find("Text", ENV_NS) is None:
        report.error("env:Fault must contain env:Reason/env:Text")


def _validate_txn(element: ElementNode, report: ValidationReport) -> None:
    if element.local_name == "txn-result":
        _require_attributes(element, ("kind", "ok"), report)
        return
    _require_attributes(element, ("host", "timestamp", "timeout"), report)
