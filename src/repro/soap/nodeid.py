"""The xrpc:nodeid protocol extension (footnote 4 of the paper).

Plain XRPC call-by-value destroys structural relationships between node
parameters: if parameter 2 is a descendant of parameter 1, both are
serialized independently and arrive as unrelated fragments.  The paper
sketches a *call-by-fragment* extension: a node that is a
descendant-or-self of another, fully-serialized parameter is represented
by reference — ``<xrpc:element xrpc:nodeid="anchor/path"/>`` — and the
receiving ``n2s`` resolves the reference *inside the already-unmarshaled
anchor fragment*, so ancestor/descendant relationships survive the hop
(and the message is smaller).

The identifier grammar is ``"<param>.<item>[/childindex]*"``: which
parameter/item holds the anchor fragment, then the child-element index
path from the anchor to the referenced node.

``s2n_call`` / ``n2s_call`` marshal a whole call's parameter list with
the extension; they interoperate with the plain marshaler (values
without ``xrpc:nodeid`` go through the ordinary path).
"""

from __future__ import annotations

from typing import Optional

from repro.errors import XRPCFault
from repro.soap.marshal import _marshal_item, _unmarshal_item
from repro.xdm.nodes import ElementNode, Node, NodeFactory

XRPC_NS = "http://monetdb.cwi.nl/XQuery"


def _element_path(ancestor: Node, descendant: Node) -> Optional[list[int]]:
    """Child-element index path from *ancestor* down to *descendant*,
    or None when there is no descendant-or-self relationship."""
    if ancestor is descendant:
        return []
    chain: list[Node] = []
    cursor = descendant
    while cursor is not None and cursor is not ancestor:
        chain.append(cursor)
        cursor = cursor.parent
    if cursor is None:
        return None
    path: list[int] = []
    current = ancestor
    for node in reversed(chain):
        elements = [c for c in current.children if isinstance(c, ElementNode)]
        for index, child in enumerate(elements):
            if child is node:
                path.append(index)
                break
        else:
            return None  # descendant via non-element (attribute etc.)
        current = node
    return path


def s2n_call(params: list[list], factory: Optional[NodeFactory] = None
             ) -> list[ElementNode]:
    """Marshal one call's parameters with the nodeid extension.

    Returns one ``<xrpc:sequence>`` element per parameter.  Element
    items that are descendants of an earlier fully-serialized element
    item become ``xrpc:nodeid`` references.
    """
    factory = factory or NodeFactory()
    anchors: list[tuple[str, Node]] = []  # (anchor id, original node)
    sequences: list[ElementNode] = []
    for param_index, sequence in enumerate(params):
        wrapper = factory.element("xrpc:sequence", XRPC_NS)
        for item_index, item in enumerate(sequence):
            holder = None
            if isinstance(item, ElementNode):
                for anchor_id, anchor in anchors:
                    path = _element_path(anchor, item)
                    if path is not None:
                        holder = factory.element("xrpc:element", XRPC_NS)
                        nodeid = anchor_id + "".join(f"/{i}" for i in path)
                        holder.set_attribute(factory.attribute(
                            "xrpc:nodeid", nodeid, XRPC_NS))
                        break
            if holder is None:
                holder = _marshal_item(item, factory)
                if isinstance(item, ElementNode):
                    anchors.append((f"{param_index}.{item_index}", item))
            wrapper.append(holder)
        sequences.append(wrapper)
    return sequences


def n2s_call(sequences: list[ElementNode]) -> list[list]:
    """Unmarshal one call's parameter sequences, resolving nodeids.

    Referenced nodes are returned as the *same objects* living inside
    their anchor fragment, preserving ancestor/descendant relationships.
    """
    params: list[list] = []
    unmarshaled: dict[str, Node] = {}
    deferred: list[tuple[int, int, str]] = []
    for param_index, wrapper in enumerate(sequences):
        values: list = []
        for item_index, holder in enumerate(wrapper.child_elements()):
            nodeid_attr = holder.get_attribute("xrpc:nodeid")
            if nodeid_attr is not None:
                values.append(None)  # placeholder, resolved below
                deferred.append((param_index, item_index, nodeid_attr.value))
            else:
                value = _unmarshal_item(holder)
                if isinstance(value, ElementNode):
                    unmarshaled[f"{param_index}.{item_index}"] = value
                values.append(value)
        params.append(values)

    for param_index, item_index, nodeid in deferred:
        params[param_index][item_index] = _resolve(nodeid, unmarshaled)
    return params


def _resolve(nodeid: str, anchors: dict[str, Node]) -> Node:
    anchor_id, _, path_text = nodeid.partition("/")
    anchor = anchors.get(anchor_id)
    if anchor is None:
        raise XRPCFault(
            "env:Sender", f"xrpc:nodeid {nodeid!r} references an unknown "
            "anchor parameter")
    node = anchor
    if path_text:
        for step in path_text.split("/"):
            elements = [c for c in node.children
                        if isinstance(c, ElementNode)]
            index = int(step)
            if index >= len(elements):
                raise XRPCFault(
                    "env:Sender",
                    f"xrpc:nodeid {nodeid!r} path leaves the fragment")
            node = elements[index]
    return node


def message_bytes_saved(params: list[list]) -> int:
    """Size difference (plain minus nodeid encoding) for one call —
    the compression benefit the paper mentions."""
    from repro.soap.marshal import s2n
    from repro.xml.serializer import serialize
    plain = sum(len(serialize(s2n(sequence))) for sequence in params)
    compact = sum(len(serialize(sequence)) for sequence in s2n_call(params))
    return plain - compact
