"""SOAP XRPC message protocol (section 2.1 / 3.2 of the paper).

Implements the document/literal SOAP sub-protocol XRPC uses over HTTP:

* request messages — ``xrpc:request`` with module/method/arity/location,
  one ``xrpc:call`` per function application (**Bulk RPC**: many calls in
  one message), each parameter an ``xrpc:sequence`` of typed values;
* response messages — one ``xrpc:sequence`` per call, plus the
  participating-peers piggyback extension (section 2.3);
* fault messages — SOAP Fault (``env:Fault``) carrying code + reason;
* the ``s2n()`` / ``n2s()`` marshaling pair with strict call-by-value
  node semantics.
"""

from repro.soap.marshal import (
    MarshalWriter,
    marshal_fingerprint,
    s2n,
    n2s,
    sequence_to_parts,
    parts_to_sequence,
)
from repro.soap.validation import validate_message, ValidationReport
from repro.soap.nodeid import s2n_call, n2s_call
from repro.soap.messages import (
    QueryID,
    XRPCRequest,
    XRPCResponse,
    XRPCFaultMessage,
    build_request,
    build_response,
    build_fault,
    parse_message,
    parse_request,
    parse_response,
)

__all__ = [
    "MarshalWriter",
    "marshal_fingerprint",
    "s2n",
    "n2s",
    "sequence_to_parts",
    "parts_to_sequence",
    "QueryID",
    "XRPCRequest",
    "XRPCResponse",
    "XRPCFaultMessage",
    "build_request",
    "build_response",
    "build_fault",
    "parse_message",
    "parse_request",
    "parse_response",
    "validate_message",
    "ValidationReport",
    "s2n_call",
    "n2s_call",
]
