"""SOAP XRPC envelope building and parsing.

Message layout follows section 2.1 of the paper::

    <env:Envelope xmlns:xrpc="http://monetdb.cwi.nl/XQuery" ...>
      <env:Body>
        <xrpc:request module="films" method="filmsByActor" arity="1"
                      location="http://x.example.org/film.xq">
          <xrpc:queryID host="p0" timestamp="..." timeout="60"/>   (isolation ext.)
          <xrpc:call>
            <xrpc:sequence> ... one per parameter ... </xrpc:sequence>
          </xrpc:call>
          <xrpc:call> ... Bulk RPC: more calls ... </xrpc:call>
        </xrpc:request>
      </env:Body>
    </env:Envelope>

Responses carry one ``xrpc:sequence`` per call and, as the section 2.3
extension, an ``xrpc:participants`` element listing every peer touched
while serving the request (needed by the 2PC coordinator registration).

Fault-tolerance extension: when set, two optional elements ride in an
``env:Header`` block (absent otherwise, keeping the wire byte-identical
to the base protocol):

* ``<xrpc:exchange id="..."/>`` — a per-*attempt* correlation id; the
  server echoes it on the response/fault/txn-result so a client retry
  can detect stale duplicated responses deterministically.
* ``<xrpc:deadline remaining="..."/>`` — the query's remaining deadline
  budget in seconds; the remote peer rebuilds a local deadline from it
  and abandons work that cannot finish in time.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Union

from repro.errors import XRPCFault
from repro.soap.marshal import MarshalWriter, n2s
from repro.xdm.nodes import ElementNode
from repro.xml.parser import parse_document

XRPC_NS = "http://monetdb.cwi.nl/XQuery"
ENV_NS = "http://www.w3.org/2003/05/soap-envelope"
XS_NS = "http://www.w3.org/2001/XMLSchema"
XSI_NS = "http://www.w3.org/2001/XMLSchema-instance"

_ENVELOPE_DECLARATIONS = {
    "xrpc": XRPC_NS,
    "env": ENV_NS,
    "xs": XS_NS,
    "xsi": XSI_NS,
}


@dataclass
class QueryID:
    """Identifies a query for repeatable-read isolation (section 2.2).

    ``host`` and ``timestamp`` identify where/when the query started;
    ``timeout`` is a *relative* number of seconds during which the remote
    peer must conserve the isolated database state.
    """

    host: str
    timestamp: float
    timeout: int = 60

    @property
    def key(self) -> tuple[str, float]:
        return (self.host, self.timestamp)


@dataclass
class XRPCRequest:
    """A (possibly bulk) XRPC request: N calls to one function."""

    module: str
    method: str
    arity: int
    location: Optional[str] = None
    calls: list[list[list]] = field(default_factory=list)
    query_id: Optional[QueryID] = None
    updating: bool = False
    exchange_id: Optional[str] = None
    deadline_remaining: Optional[float] = None

    def add_call(self, params: list[list]) -> None:
        if len(params) != self.arity:
            raise XRPCFault(
                "env:Sender",
                f"call has {len(params)} parameters, function arity is {self.arity}")
        self.calls.append(params)

    @property
    def is_bulk(self) -> bool:
        return len(self.calls) > 1


@dataclass
class XRPCResponse:
    module: str
    method: str
    results: list[list] = field(default_factory=list)
    participating_peers: list[str] = field(default_factory=list)
    exchange_id: Optional[str] = None


@dataclass
class XRPCFaultMessage:
    fault_code: str
    reason: str
    exchange_id: Optional[str] = None

    def raise_(self) -> None:
        raise XRPCFault(self.fault_code, self.reason)


@dataclass
class TxnCommand:
    """A WS-AtomicTransaction participant operation (section 2.3).

    ``kind`` is ``"prepare"``, ``"commit"`` or ``"rollback"``; the
    queryID identifies the distributed transaction.
    """

    kind: str
    query_id: QueryID
    exchange_id: Optional[str] = None
    deadline_remaining: Optional[float] = None


@dataclass
class TxnResult:
    """Vote / acknowledgement for a :class:`TxnCommand`."""

    kind: str
    ok: bool
    detail: str = ""
    exchange_id: Optional[str] = None


Message = Union[XRPCRequest, XRPCResponse, XRPCFaultMessage,
                TxnCommand, TxnResult]


# ---------------------------------------------------------------------------
# Building


def _begin_envelope(exchange_id: Optional[str] = None,
                    deadline_remaining: Optional[float] = None
                    ) -> MarshalWriter:
    """Open ``<env:Envelope>[<env:Header>...]<env:Body>`` on a fresh
    streaming writer.

    The header block only exists when a fault-tolerance field is set, so
    base-protocol messages stay byte-identical.
    """
    writer = MarshalWriter()
    writer.prolog()
    writer.start(
        "env:Envelope",
        attributes=(("xsi:schemaLocation", f"{XRPC_NS} {XRPC_NS}/XRPC.xsd"),),
        declarations=_ENVELOPE_DECLARATIONS)
    if exchange_id is not None or deadline_remaining is not None:
        writer.start("env:Header")
        if exchange_id is not None:
            writer.element("xrpc:exchange", (("id", exchange_id),))
        if deadline_remaining is not None:
            writer.element("xrpc:deadline",
                           (("remaining", repr(deadline_remaining)),))
        writer.end()  # env:Header
    writer.start("env:Body")
    return writer


def _finish_envelope(writer: MarshalWriter) -> str:
    writer.end()  # env:Body
    writer.end()  # env:Envelope
    text = writer.getvalue()
    writer.release()  # recycle the piece buffer for the next envelope
    return text


def build_request(request: XRPCRequest) -> str:
    """Serialize an :class:`XRPCRequest` to SOAP XML text (one pass)."""
    writer = _begin_envelope(request.exchange_id, request.deadline_remaining)
    attributes = [
        ("module", request.module),
        ("method", request.method),
        ("arity", str(request.arity)),
    ]
    if request.location:
        attributes.append(("location", request.location))
    if request.updating:
        attributes.append(("updCall", "true"))
    writer.start("xrpc:request", attributes)
    if request.query_id is not None:
        writer.element("xrpc:queryID", (
            ("host", request.query_id.host),
            ("timestamp", repr(request.query_id.timestamp)),
            ("timeout", str(request.query_id.timeout)),
        ))
    for params in request.calls:
        writer.start("xrpc:call")
        for param in params:
            writer.sequence(param)
        writer.end()
    writer.end()  # xrpc:request
    return _finish_envelope(writer)


def build_response(response: XRPCResponse) -> str:
    """Serialize an :class:`XRPCResponse` to SOAP XML text (one pass)."""
    writer = _begin_envelope(response.exchange_id)
    writer.start("xrpc:response", (
        ("module", response.module),
        ("method", response.method),
    ))
    if response.participating_peers:
        writer.start("xrpc:participants")
        for peer in response.participating_peers:
            writer.element("xrpc:peer", (("uri", peer),))
        writer.end()
    for result in response.results:
        writer.sequence(result)
    writer.end()  # xrpc:response
    return _finish_envelope(writer)


def build_fault(fault_code: str, reason: str,
                exchange_id: Optional[str] = None) -> str:
    """Serialize a SOAP Fault (error message format of section 2.1)."""
    writer = _begin_envelope(exchange_id)
    writer.start("env:Fault")
    writer.start("env:Code")
    writer.element("env:Value", (), fault_code)
    writer.end()
    writer.start("env:Reason")
    writer.element("env:Text", (("xml:lang", "en"),), reason)
    writer.end()
    writer.end()  # env:Fault
    return _finish_envelope(writer)


def build_txn_command(command: TxnCommand) -> str:
    """Serialize a Prepare/Commit/Rollback message."""
    writer = _begin_envelope(command.exchange_id, command.deadline_remaining)
    writer.element(f"xrpc:{command.kind}", (
        ("host", command.query_id.host),
        ("timestamp", repr(command.query_id.timestamp)),
        ("timeout", str(command.query_id.timeout)),
    ))
    return _finish_envelope(writer)


def build_txn_result(result: TxnResult) -> str:
    """Serialize a vote/acknowledgement for a transaction command."""
    writer = _begin_envelope(result.exchange_id)
    attributes = [("kind", result.kind),
                  ("ok", "true" if result.ok else "false")]
    if result.detail:
        attributes.append(("detail", result.detail))
    writer.element("xrpc:txn-result", attributes)
    return _finish_envelope(writer)


# ---------------------------------------------------------------------------
# Parsing


def parse_message(text: Union[str, bytes],
                  backend: Optional[str] = None) -> Message:
    """Parse any SOAP XRPC message; dispatch on the body's child.

    ``bytes`` input is handed to the parse frontend as-is (the backend
    honours the XML declaration's encoding and BOMs); ``backend``
    selects the parse frontend explicitly (default: expat with python
    fallback, see :func:`repro.xml.parser.parse_document`).
    """
    document = parse_document(text, backend=backend)
    envelope = document.root_element
    if envelope is None or envelope.local_name != "Envelope" \
            or envelope.ns_uri != ENV_NS:
        raise XRPCFault("env:Sender", "not a SOAP envelope")
    exchange_id, deadline_remaining = _parse_header(envelope)
    body = envelope.find("Body", ENV_NS)
    if body is None:
        raise XRPCFault("env:Sender", "SOAP envelope without Body")
    payload = next(iter(body.child_elements()), None)
    if payload is None:
        raise XRPCFault("env:Sender", "empty SOAP Body")
    message = _parse_body_element(payload)
    message.exchange_id = exchange_id
    if isinstance(message, (XRPCRequest, TxnCommand)):
        message.deadline_remaining = deadline_remaining
    return message


def _parse_header(envelope: ElementNode
                  ) -> tuple[Optional[str], Optional[float]]:
    """Fault-tolerance fields from ``env:Header`` (both usually absent)."""
    header = envelope.find("Header", ENV_NS)
    if header is None:
        return None, None
    exchange_id: Optional[str] = None
    deadline_remaining: Optional[float] = None
    exchange = header.find("exchange", XRPC_NS)
    if exchange is not None:
        exchange_id = _required_attr(exchange, "id")
    deadline = header.find("deadline", XRPC_NS)
    if deadline is not None:
        deadline_remaining = float(_required_attr(deadline, "remaining"))
    return exchange_id, deadline_remaining


def _parse_body_element(payload: ElementNode) -> Message:
    if payload.local_name == "request" and payload.ns_uri == XRPC_NS:
        return _parse_request_element(payload)
    if payload.local_name == "response" and payload.ns_uri == XRPC_NS:
        return _parse_response_element(payload)
    if payload.local_name == "Fault" and payload.ns_uri == ENV_NS:
        return _parse_fault_element(payload)
    if payload.ns_uri == XRPC_NS and payload.local_name in (
            "prepare", "commit", "rollback"):
        return TxnCommand(
            kind=payload.local_name,
            query_id=QueryID(
                host=_required_attr(payload, "host"),
                timestamp=float(_required_attr(payload, "timestamp")),
                timeout=int(_required_attr(payload, "timeout")),
            ),
        )
    if payload.ns_uri == XRPC_NS and payload.local_name == "txn-result":
        detail = payload.get_attribute("detail")
        return TxnResult(
            kind=_required_attr(payload, "kind"),
            ok=_required_attr(payload, "ok") == "true",
            detail=detail.value if detail else "",
        )
    raise XRPCFault(
        "env:Sender", f"unrecognised SOAP body element <{payload.name}>")


def parse_request(text: Union[str, bytes],
                  backend: Optional[str] = None) -> XRPCRequest:
    message = parse_message(text, backend=backend)
    if isinstance(message, XRPCFaultMessage):
        message.raise_()
    if not isinstance(message, XRPCRequest):
        raise XRPCFault("env:Sender", "expected an XRPC request message")
    return message


def parse_response(text: Union[str, bytes],
                   backend: Optional[str] = None) -> XRPCResponse:
    message = parse_message(text, backend=backend)
    if isinstance(message, XRPCFaultMessage):
        message.raise_()
    if not isinstance(message, XRPCResponse):
        raise XRPCFault("env:Receiver", "expected an XRPC response message")
    return message


def _required_attr(element: ElementNode, name: str) -> str:
    attribute = element.get_attribute(name)
    if attribute is None:
        raise XRPCFault(
            "env:Sender", f"<{element.name}> missing required attribute {name!r}")
    return attribute.value


def _parse_request_element(element: ElementNode) -> XRPCRequest:
    module = _required_attr(element, "module")
    method = _required_attr(element, "method")
    arity = int(_required_attr(element, "arity"))
    location_attr = element.get_attribute("location")
    updating_attr = element.get_attribute("updCall")
    request = XRPCRequest(
        module=module,
        method=method,
        arity=arity,
        location=location_attr.value if location_attr else None,
        updating=bool(updating_attr and updating_attr.value == "true"),
    )
    qid = element.find("queryID", XRPC_NS)
    if qid is not None:
        request.query_id = QueryID(
            host=_required_attr(qid, "host"),
            timestamp=float(_required_attr(qid, "timestamp")),
            timeout=int(_required_attr(qid, "timeout")),
        )
    for call in element.find_all("call", XRPC_NS):
        params = [n2s(seq) for seq in call.find_all("sequence", XRPC_NS)]
        if len(params) != arity:
            raise XRPCFault(
                "env:Sender",
                f"call has {len(params)} parameter sequences, arity is {arity}")
        request.calls.append(params)
    if not request.calls:
        raise XRPCFault("env:Sender", "request contains no calls")
    return request


def _parse_response_element(element: ElementNode) -> XRPCResponse:
    response = XRPCResponse(
        module=_required_attr(element, "module"),
        method=_required_attr(element, "method"),
    )
    participants = element.find("participants", XRPC_NS)
    if participants is not None:
        for peer in participants.find_all("peer", XRPC_NS):
            response.participating_peers.append(_required_attr(peer, "uri"))
    for sequence in element.find_all("sequence", XRPC_NS):
        response.results.append(n2s(sequence))
    return response


def _parse_fault_element(element: ElementNode) -> XRPCFaultMessage:
    code_el = element.find("Code", ENV_NS)
    value = code_el.find("Value", ENV_NS) if code_el is not None else None
    reason_el = element.find("Reason", ENV_NS)
    text_el = reason_el.find("Text", ENV_NS) if reason_el is not None else None
    return XRPCFaultMessage(
        fault_code=value.string_value() if value is not None else "env:Receiver",
        reason=text_el.string_value() if text_el is not None else "unknown fault",
    )
