"""XQuery code generation for the XRPC wrapper (Figure 3 of the paper).

The generated query has the exact shape the paper shows::

    import module namespace func = "<module>" at "<location>";
    <env:Envelope ...>
      <env:Body>
        <xrpc:response xrpc:module="..." xrpc:method="...">{
          for $call in doc("<request-file>")//xrpc:call
          let $param1 := w:n2s($call/xrpc:sequence[1])
          ...
          return w:s2n(func:method($param1, ...))
        }</xrpc:response>
      </env:Body>
    </env:Envelope>

and the marshaling pair ``n2s`` / ``s2n`` is implemented *purely in
XQuery* (the paper: "These functions ... can be implemented purely in
XQuery"): ``n2s`` dispatches on the ``xsi:type`` attribute with
``if..then`` chains; ``s2n`` uses ``typeswitch`` to wrap each item in
the right SOAP element.
"""

from __future__ import annotations

from typing import Optional

# Pure-XQuery implementation of the marshaling functions.  ``n2s`` copies
# node parameters through a `document { }` constructor so the engine hands
# the user function a separate fragment (call-by-value); ``s2n`` relies on
# element construction, which copies content by definition.
XQUERY_MARSHAL_MODULE = """
module namespace w = "urn:xrpc-wrapper-marshal";
declare namespace xrpc = "http://monetdb.cwi.nl/XQuery";
declare namespace xsi = "http://www.w3.org/2001/XMLSchema-instance";

declare function w:n2s-one($v as element()) as item()* {
  if (local-name($v) = 'atomic-value') then
    let $t := string($v/@xsi:type)
    return
      if ($t = 'xs:integer') then xs:integer(string($v))
      else if ($t = 'xs:decimal') then xs:decimal(string($v))
      else if ($t = 'xs:double') then xs:double(string($v))
      else if ($t = 'xs:boolean') then xs:boolean(string($v))
      else if ($t = 'xs:anyURI') then xs:anyURI(string($v))
      else if ($t = 'xs:untypedAtomic') then xs:untypedAtomic(string($v))
      else string($v)
  else if (local-name($v) = 'element') then
    document { $v/* }/*
  else if (local-name($v) = 'document') then
    document { $v/* }
  else if (local-name($v) = 'text') then
    text { string($v) }
  else if (local-name($v) = 'comment') then
    comment { string($v) }
  else if (local-name($v) = 'attribute') then
    for $a in $v/@* return attribute { local-name($a) } { string($a) }
  else ()
};

declare function w:n2s($n as node()) as item()* {
  for $v in $n/* return w:n2s-one($v)
};

declare function w:s2n($seq as item()*) as node() {
  <xrpc:sequence>{
    for $i in $seq return
      typeswitch ($i)
        case $e as element() return <xrpc:element>{$e}</xrpc:element>
        case $d as document-node() return <xrpc:document>{$d/*}</xrpc:document>
        case $a as attribute() return <xrpc:attribute>{$a}</xrpc:attribute>
        case $t as text() return <xrpc:text>{string($t)}</xrpc:text>
        case $c as comment() return <xrpc:comment>{string($c)}</xrpc:comment>
        case $v as xs:integer return
          <xrpc:atomic-value xsi:type="xs:integer">{string($v)}</xrpc:atomic-value>
        case $v as xs:boolean return
          <xrpc:atomic-value xsi:type="xs:boolean">{string($v)}</xrpc:atomic-value>
        case $v as xs:decimal return
          <xrpc:atomic-value xsi:type="xs:decimal">{string($v)}</xrpc:atomic-value>
        case $v as xs:double return
          <xrpc:atomic-value xsi:type="xs:double">{string($v)}</xrpc:atomic-value>
        case $v as xs:untypedAtomic return
          <xrpc:atomic-value xsi:type="xs:untypedAtomic">{string($v)}</xrpc:atomic-value>
        default $v return
          <xrpc:atomic-value xsi:type="xs:string">{string($v)}</xrpc:atomic-value>
  }</xrpc:sequence>
};
"""

MARSHAL_NS = "urn:xrpc-wrapper-marshal"


def generate_wrapper_query(module_uri: str, location: Optional[str],
                           method: str, arity: int,
                           request_path: str) -> str:
    """Generate the Figure-3 query for one XRPC request."""
    if location:
        import_line = (f'import module namespace func = "{module_uri}" '
                       f'at "{location}";')
    else:
        import_line = f'import module namespace func = "{module_uri}";'
    params = [
        f'    let $param{index} := w:n2s($call/xrpc:sequence[{index}])'
        for index in range(1, arity + 1)
    ]
    arguments = ", ".join(f"$param{index}" for index in range(1, arity + 1))
    param_lines = "\n".join(params)
    return f"""{import_line}
import module namespace w = "{MARSHAL_NS}";
declare namespace env = "http://www.w3.org/2003/05/soap-envelope";
declare namespace xrpc = "http://monetdb.cwi.nl/XQuery";

<env:Envelope xmlns:env="http://www.w3.org/2003/05/soap-envelope"
    xmlns:xrpc="http://monetdb.cwi.nl/XQuery"
    xmlns:xs="http://www.w3.org/2001/XMLSchema"
    xmlns:xsi="http://www.w3.org/2001/XMLSchema-instance">
  <env:Body>
    <xrpc:response module="{module_uri}" method="{method}">{{
      for $call in doc("{request_path}")//xrpc:call
{param_lines}
      return w:s2n(func:{method}({arguments}))
    }}</xrpc:response>
  </env:Body>
</env:Envelope>"""
