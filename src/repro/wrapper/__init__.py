"""The XRPC wrapper (section 4 of the paper).

Lets any XQuery engine *without* XRPC support serve XRPC calls: the
wrapper stores the incoming SOAP request at a temporary location,
generates a plain XQuery query (Figure 3) that loops over the request's
``xrpc:call`` elements, applies pure-XQuery ``n2s``/``s2n`` marshaling,
invokes the requested module function, and element-constructs the SOAP
response.  The wrapped engine never sees the XRPC protocol — only
ordinary XQuery.
"""

from repro.wrapper.wrapper import XRPCWrapper, WrapperTimings
from repro.wrapper.codegen import generate_wrapper_query, XQUERY_MARSHAL_MODULE

__all__ = [
    "XRPCWrapper",
    "WrapperTimings",
    "generate_wrapper_query",
    "XQUERY_MARSHAL_MODULE",
]
