"""The XRPC wrapper service handler.

``XRPCWrapper`` is a SOAP endpoint: give it an engine (typically a
:class:`~repro.engine.TreeEngine` standing in for Saxon) plus the
documents and modules the engine can see, and register its
:meth:`handle` on a transport.  Per request it:

1. stores the SOAP request message at a temporary location,
2. generates the Figure-3 XQuery for the requested function,
3. compiles and runs it on the wrapped engine — timing the *compile*,
   *treebuild* (request-document parsing) and *exec* phases that Table 3
   of the paper reports,
4. returns the serialized SOAP response the query constructed.

The wrapped engine only evaluates plain XQuery; all XRPC-ness lives in
the generated query text.
"""

from __future__ import annotations

import os
import tempfile
import time
from dataclasses import dataclass
from typing import Optional

from repro.engine import Engine, TreeEngine
from repro.errors import XQueryError, XRPCReproError
from repro.rpc.store import DocumentStore
from repro.soap.messages import build_fault, parse_request
from repro.wrapper.codegen import (
    XQUERY_MARSHAL_MODULE,
    generate_wrapper_query,
)
from repro.xml.parser import parse_document
from repro.xml.serializer import serialize


@dataclass
class WrapperTimings:
    """Per-request phase timings (the columns of Table 3)."""

    total_seconds: float = 0.0
    compile_seconds: float = 0.0
    treebuild_seconds: float = 0.0
    exec_seconds: float = 0.0
    calls: int = 0

    def accumulate(self, other: "WrapperTimings") -> None:
        self.total_seconds += other.total_seconds
        self.compile_seconds += other.compile_seconds
        self.treebuild_seconds += other.treebuild_seconds
        self.exec_seconds += other.exec_seconds
        self.calls += other.calls


class XRPCWrapper:
    """Wraps an XRPC-incapable engine as an XRPC service."""

    def __init__(self, engine: Optional[Engine] = None,
                 store: Optional[DocumentStore] = None,
                 keep_request_files: bool = False,
                 transport=None, host: str = "wrapped",
                 xml_backend: Optional[str] = None) -> None:
        self.engine = engine or TreeEngine()
        self.store = store or DocumentStore()
        self.keep_request_files = keep_request_files
        # Parse frontend for request messages and treebuild rebuilds;
        # None = the default backend (expat with python fallback).
        self.xml_backend = xml_backend
        # Optional transport lets fn:doc("xrpc://peer/uri") fetch remote
        # documents (data shipping) — the wrapped Saxon fetched remote
        # documents over plain HTTP the same way.  Outgoing *function*
        # calls remain impossible, as the paper states.
        self.transport = transport
        self.host = host
        self.engine.registry.register_source(XQUERY_MARSHAL_MODULE)
        self.last_timings = WrapperTimings()
        self.request_count = 0
        self.accumulated = WrapperTimings()
        # Raw XML of documents registered via register_document(): engines
        # without a plan/document cache (Saxon profile) re-build the tree
        # per request, which Table 3 reports as 'treebuild'.
        self._document_sources: dict[str, str] = {}

    def register_document(self, uri: str, xml_text: str) -> None:
        """Register a source document visible to the wrapped engine.

        With a cache-less engine the document tree is rebuilt on every
        request (Saxon's behaviour in the paper); engines with a plan
        cache read the pre-parsed tree from the store.
        """
        self._document_sources[uri] = xml_text
        self.store.register(uri, xml_text, backend=self.xml_backend)

    # ------------------------------------------------------------------

    def handle(self, payload: str) -> str:
        """SOAP entry point: request message in, response message out."""
        started = time.process_time()
        timings = WrapperTimings()
        try:
            response = self._serve(payload, timings)
        except XRPCReproError as exc:
            return build_fault("env:Sender", str(exc))
        timings.total_seconds = time.process_time() - started
        self.last_timings = timings
        self.accumulated.accumulate(timings)
        self.request_count += 1
        return response

    def _serve(self, payload: str, timings: WrapperTimings) -> str:
        request = parse_request(payload, backend=self.xml_backend)
        timings.calls = len(request.calls)

        # 1. Store the request message at a temporary location.
        fd, request_path = tempfile.mkstemp(prefix="xrpc_request_",
                                            suffix=".xml")
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as handle:
                handle.write(payload)

            # 2. Generate the query.
            query = generate_wrapper_query(
                request.module, request.location, request.method,
                request.arity, request_path)

            # 3. Compile on the wrapped engine (no plan cache: Saxon-like
            # engines pay this per request — Table 3 'compile').
            compile_started = time.process_time()
            compiled = self.engine.compile(query)
            timings.compile_seconds = time.process_time() - compile_started

            # Resolver: the request file is parsed on first access
            # ('treebuild'); everything else comes from the store.
            rebuilt: dict[str, object] = {}

            def resolve(uri: str):
                if uri == request_path:
                    treebuild_started = time.process_time()
                    with open(request_path, encoding="utf-8") as handle:
                        document = parse_document(handle.read(), uri=uri,
                                                  backend=self.xml_backend)
                    timings.treebuild_seconds += \
                        time.process_time() - treebuild_started
                    return document
                if uri.startswith("xrpc://"):
                    return self._fetch_remote(uri)
                if not self.engine.plan_cache_enabled \
                        and uri in self._document_sources:
                    # Saxon profile: rebuild the data tree per request.
                    if uri not in rebuilt:
                        treebuild_started = time.process_time()
                        rebuilt[uri] = parse_document(
                            self._document_sources[uri], uri=uri,
                            backend=self.xml_backend)
                        timings.treebuild_seconds += \
                            time.process_time() - treebuild_started
                    return rebuilt[uri]
                return self.store.get(uri)

            # 4. Execute.
            exec_started = time.process_time()
            try:
                result, _pul = compiled.execute(
                    doc_resolver=resolve,
                    optimize_joins=self.engine.optimize_flwor_joins,
                    accelerator=self.engine.accelerator)
            except XQueryError as exc:
                return build_fault("env:Sender", str(exc))
            # Document trees are built lazily during execution; report the
            # phases additively (exec excludes treebuild), like Table 3.
            timings.exec_seconds = max(
                0.0, time.process_time() - exec_started
                - timings.treebuild_seconds)

            envelope = result[0]
            return ('<?xml version="1.0" encoding="utf-8"?>'
                    + serialize(envelope))
        finally:
            if not self.keep_request_files:
                try:
                    os.unlink(request_path)
                except OSError:
                    pass

    def _fetch_remote(self, uri: str):
        """HTTP-style fetch of a remote document for fn:doc()."""
        from repro.errors import XRPCFault
        from repro.net.transport import normalize_peer_uri
        from repro.rpc.client import ClientSession
        from repro.xdm.atomic import string as make_string
        if self.transport is None:
            raise XRPCFault(
                "env:Receiver",
                f"wrapper has no transport to fetch {uri!r}")
        host = normalize_peer_uri(uri)
        path = uri.split(host, 1)[1].lstrip("/")
        session = ClientSession(self.transport, origin=self.host)
        [result] = session.call(
            host, "http://monetdb.cwi.nl/XQuery/sys", None, "get-doc", 1,
            [[[make_string(path)]]])
        return result[0]
