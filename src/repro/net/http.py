"""Real HTTP transport: SOAP XRPC over loopback HTTP POST.

Mirrors the paper's deployment — an "ultra-light HTTP daemon" running
the XRPC request handler — using :mod:`http.server` from the standard
library.  Used by interop tests and the throughput benchmark to show the
protocol really is plain SOAP-over-HTTP.
"""

from __future__ import annotations

import threading
import urllib.error
import urllib.request
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Callable, Optional

from repro.errors import TransportError
from repro.net.transport import Transport, normalize_peer_uri

Handler = Callable[[str], str]


class HttpXRPCServer:
    """Serves an XRPC handler at ``POST /xrpc`` on 127.0.0.1.

    Use as a context manager::

        with HttpXRPCServer(handler) as server:
            transport = HttpTransport({"peer": server.address})
    """

    def __init__(self, handler: Handler, port: int = 0) -> None:
        self._handler = handler
        outer = self

        class _RequestHandler(BaseHTTPRequestHandler):
            protocol_version = "HTTP/1.1"

            def do_POST(self) -> None:  # noqa: N802 (stdlib naming)
                length = int(self.headers.get("Content-Length", "0"))
                payload = self.rfile.read(length).decode("utf-8")
                try:
                    response = outer._handler(payload)
                    status = 200
                except Exception as exc:  # handler bugs become HTTP 500
                    from repro.soap.messages import build_fault
                    response = build_fault("env:Receiver", str(exc))
                    status = 500
                body = response.encode("utf-8")
                self.send_response(status)
                self.send_header("Content-Type",
                                 "application/soap+xml; charset=utf-8")
                self.send_header("Content-Length", str(len(body)))
                self.end_headers()
                self.wfile.write(body)

            def log_message(self, *args) -> None:  # silence stderr
                pass

        self._server = ThreadingHTTPServer(("127.0.0.1", port), _RequestHandler)
        self._thread: Optional[threading.Thread] = None

    @property
    def address(self) -> str:
        host, port = self._server.server_address[:2]
        return f"{host}:{port}"

    def start(self) -> "HttpXRPCServer":
        self._thread = threading.Thread(
            target=self._server.serve_forever, daemon=True)
        self._thread.start()
        return self

    def stop(self) -> None:
        self._server.shutdown()
        self._server.server_close()
        if self._thread is not None:
            self._thread.join(timeout=5)

    def __enter__(self) -> "HttpXRPCServer":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()


class HttpTransport(Transport):
    """Client side: maps peer keys to ``host:port`` HTTP endpoints."""

    def __init__(self, endpoints: Optional[dict[str, str]] = None) -> None:
        # Logical peer URI/host -> "127.0.0.1:<port>".
        self._endpoints = {
            normalize_peer_uri(key): value
            for key, value in (endpoints or {}).items()
        }

    def register_endpoint(self, peer_uri: str, address: str) -> None:
        self._endpoints[normalize_peer_uri(peer_uri)] = address

    def send(self, destination: str, payload: str) -> str:
        key = normalize_peer_uri(destination)
        address = self._endpoints.get(key, key)
        url = f"http://{address}/xrpc"
        request = urllib.request.Request(
            url,
            data=payload.encode("utf-8"),
            headers={"Content-Type": "application/soap+xml; charset=utf-8"},
            method="POST",
        )
        try:
            with urllib.request.urlopen(request, timeout=30) as reply:
                return reply.read().decode("utf-8")
        except urllib.error.HTTPError as exc:
            # SOAP faults ride on HTTP 500; surface the fault body.
            return exc.read().decode("utf-8")
        except OSError as exc:
            raise TransportError(f"cannot reach {url}: {exc}") from exc
