"""Real HTTP transport: SOAP XRPC over loopback HTTP POST.

Mirrors the paper's deployment — an "ultra-light HTTP daemon" running
the XRPC request handler — using :mod:`http.server` from the standard
library.  Used by interop tests and the throughput benchmark to show the
protocol really is plain SOAP-over-HTTP.
"""

from __future__ import annotations

import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Callable, Optional

from repro.errors import FatalTransportError, TransportError
from repro.net.pool import (ConnectionPool, PeerStats, dispatch_parallel,
                            dispatch_parallel_captured)
from repro.net.transport import ExchangeSpec, Transport, normalize_peer_uri

Handler = Callable[[str], str]


class HttpXRPCServer:
    """Serves an XRPC handler at ``POST /xrpc`` on 127.0.0.1.

    Use as a context manager::

        with HttpXRPCServer(handler) as server:
            transport = HttpTransport({"peer": server.address})
    """

    def __init__(self, handler: Handler, port: int = 0) -> None:
        self._handler = handler
        outer = self

        class _RequestHandler(BaseHTTPRequestHandler):
            protocol_version = "HTTP/1.1"

            def do_POST(self) -> None:  # noqa: N802 (stdlib naming)
                length = int(self.headers.get("Content-Length", "0"))
                payload = self.rfile.read(length).decode("utf-8")
                try:
                    response = outer._handler(payload)
                    status = 200
                except Exception as exc:  # handler bugs become HTTP 500
                    from repro.soap.messages import build_fault
                    response = build_fault("env:Receiver", str(exc))
                    status = 500
                body = response.encode("utf-8")
                self.send_response(status)
                self.send_header("Content-Type",
                                 "application/soap+xml; charset=utf-8")
                self.send_header("Content-Length", str(len(body)))
                self.end_headers()
                self.wfile.write(body)

            def log_message(self, *args) -> None:  # silence stderr
                pass

        self._server = ThreadingHTTPServer(("127.0.0.1", port), _RequestHandler)
        self._thread: Optional[threading.Thread] = None

    @property
    def address(self) -> str:
        host, port = self._server.server_address[:2]
        return f"{host}:{port}"

    def start(self) -> "HttpXRPCServer":
        self._thread = threading.Thread(
            target=self._server.serve_forever, daemon=True)
        self._thread.start()
        return self

    def stop(self) -> None:
        self._server.shutdown()
        self._server.server_close()
        if self._thread is not None:
            self._thread.join(timeout=5)

    def __enter__(self) -> "HttpXRPCServer":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()


def _looks_like_soap(body: str) -> bool:
    """Heuristic: does an HTTP error body carry a SOAP envelope?"""
    head = body.lstrip()
    return head.startswith("<") and "Envelope" in head[:1024]


class HttpTransport(Transport):
    """Client side: maps peer keys to ``host:port`` HTTP endpoints.

    Connections are pooled per peer and kept alive across requests;
    ``send_parallel`` fans out over destination peers with one worker
    thread each, so a bulk dispatch to N peers costs ~max (not sum) of
    the per-peer latencies.  Call :meth:`close` (or use the transport as
    a context manager) to release pooled connections.
    """

    REQUEST_HEADERS = {
        "Content-Type": "application/soap+xml; charset=utf-8",
    }

    def __init__(self, endpoints: Optional[dict[str, str]] = None,
                 timeout: float = 30.0, breakers=None) -> None:
        # Logical peer URI/host -> "127.0.0.1:<port>".
        self._endpoints = {
            normalize_peer_uri(key): value
            for key, value in (endpoints or {}).items()
        }
        # `breakers` (a repro.net.retry.BreakerRegistry) arms the pool's
        # per-address fail-fast gate; None leaves breakers to the
        # ResilientChannel layer above (the usual arrangement — arming
        # both would double-count failures).
        self._pool = ConnectionPool(timeout=timeout, breakers=breakers)

    def register_endpoint(self, peer_uri: str, address: str) -> None:
        self._endpoints[normalize_peer_uri(peer_uri)] = address

    def _resolve(self, destination: str) -> str:
        key = normalize_peer_uri(destination)
        return self._endpoints.get(key, key)

    def peer_stats(self, peer_uri: str) -> PeerStats:
        """Connection/traffic counters for one peer (observability)."""
        return self._pool.stats(self._resolve(peer_uri))

    def send(self, destination: str, payload: str) -> str:
        # Bare send has no fault-tolerance contract attached: assume the
        # exchange is idempotent.  Callers that know better (updating
        # RPCs) go through `exchange` with an explicit `retry_safe`
        # verdict from the static analyzer — never a payload sniff.
        return self.exchange(ExchangeSpec(destination, payload))

    def exchange(self, spec: ExchangeSpec) -> str:
        address = self._resolve(spec.destination)
        status, body = self._pool.request(
            address, "/xrpc", spec.payload.encode("utf-8"),
            headers=self.REQUEST_HEADERS, retry_safe=spec.retry_safe,
            timeout=spec.timeout)
        text = body.decode("utf-8", errors="replace")
        if status >= 400 and not _looks_like_soap(text):
            # A misconfigured endpoint (HTML 404 page, proxy error, ...)
            # is a transport failure, not a SOAP fault to be parsed —
            # and not one a retry can cure.
            summary = " ".join(text.split())[:120] or "<empty body>"
            raise FatalTransportError(
                f"HTTP {status} from http://{address}/xrpc with non-SOAP "
                f"body: {summary}")
        # SOAP faults ride on HTTP 500; surface the fault envelope.
        return text

    def send_parallel(self, requests: list[tuple[str, str]]) -> list[str]:
        """Concurrent per-destination fan-out over pooled connections."""
        return dispatch_parallel(self.send, requests)

    def exchange_many(self,
                      specs: list[ExchangeSpec]) -> list[str | TransportError]:
        """Captured per-destination fan-out (the resilient batch path)."""
        return dispatch_parallel_captured(self.exchange, specs)

    def close(self) -> None:
        self._pool.close()
