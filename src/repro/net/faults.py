"""Deterministic fault injection for chaos-testing the XRPC stack.

:class:`FaultInjectingTransport` wraps any :class:`~repro.net.transport.
Transport` (the simulated network, the HTTP transport, ...) and injects
a *seeded* schedule of network weather per exchange:

``drop``
    The request never reaches the peer (connect refused / lost on the
    wire) — surfaces as ``RetryableTransportError(request_sent=False)``.
``delay``
    Delivery works but costs extra latency first (slow peer / congested
    link): virtual clocks advance, wall clocks really sleep.
``reset``
    The peer *processes* the request but the connection resets before
    the response arrives — ``RetryableTransportError(request_sent=True)``,
    the half of the retry matrix where updating calls must not retry.
``torn``
    The response arrives truncated mid-envelope.
``garbage``
    The response is a non-SOAP byte salad (proxy error page).
``duplicate``
    A stale response from an *earlier* exchange with the same peer is
    replayed instead of the real one (duplicated/reordered delivery) —
    detectable only via the client's per-attempt exchange-id check.

Faults are drawn from one seeded RNG in exchange order, so a given
``(seed, workload)`` pair replays the identical schedule — the chaos
suite asserts query results stay byte-identical to the fault-free run
and prints the seed on failure for offline reproduction.
"""

from __future__ import annotations

import random
import threading
import time
from dataclasses import dataclass, field

from repro.errors import RetryableTransportError, TransportError
from repro.net.clock import VirtualClock
from repro.net.transport import ExchangeSpec, Transport, normalize_peer_uri

#: Fault kinds in draw-priority order (one draw decides per exchange).
FAULT_KINDS = ("drop", "delay", "reset", "torn", "garbage", "duplicate")


@dataclass
class FaultPlan:
    """Seeded fault schedule: independent rates per fault kind.

    ``blackhole`` destinations never answer: every exchange burns
    ``blackhole_seconds`` of (virtual or wall) time and then fails —
    the scenario circuit breakers exist for.
    """

    seed: int = 0
    drop_rate: float = 0.0
    delay_rate: float = 0.0
    reset_rate: float = 0.0
    torn_rate: float = 0.0
    garbage_rate: float = 0.0
    duplicate_rate: float = 0.0
    delay_seconds: float = 0.02
    blackhole: frozenset = field(default_factory=frozenset)
    blackhole_seconds: float = 1.0

    @classmethod
    def chaos(cls, seed: int, rate: float = 0.2) -> "FaultPlan":
        """An even mix of every fault kind totalling ``rate``."""
        share = rate / len(FAULT_KINDS)
        return cls(seed=seed, drop_rate=share, delay_rate=share,
                   reset_rate=share, torn_rate=share, garbage_rate=share,
                   duplicate_rate=share)

    def rate(self, kind: str) -> float:
        return getattr(self, f"{kind}_rate")


class FaultInjectingTransport(Transport):
    """Wraps a transport, injecting the plan's faults per exchange.

    ``injected`` counts what actually fired per kind (also bumped into
    ``NET_STATS.faults_injected``), so tests can assert the schedule
    really exercised the retry machinery rather than passing vacuously.
    Attribute access falls through to the wrapped transport
    (``register_peer``, ``clock``, ``message_log``, ...), so the wrapper
    drops into any fixture that builds on the inner transport's API.
    """

    def __init__(self, inner: Transport, plan: FaultPlan) -> None:
        self.inner = inner
        self.plan = plan
        self._rng = random.Random(plan.seed)
        self._lock = threading.Lock()
        self._last_response: dict[str, str] = {}
        self.injected: dict[str, int] = dict.fromkeys(
            FAULT_KINDS + ("blackhole",), 0)

    # -- fault schedule ---------------------------------------------------

    def _draw(self) -> str | None:
        """One seeded uniform draw -> the fault kind for this exchange."""
        with self._lock:
            roll = self._rng.random()
        cumulative = 0.0
        for kind in FAULT_KINDS:
            cumulative += self.plan.rate(kind)
            if roll < cumulative:
                return kind
        return None

    def _count(self, kind: str) -> None:
        from repro.net.retry import NET_STATS
        with self._lock:
            self.injected[kind] += 1
        NET_STATS.bump("faults_injected")

    def _elapse(self, seconds: float) -> None:
        clock = getattr(self.inner, "clock", None)
        if isinstance(clock, VirtualClock):
            clock.advance(seconds)
        else:  # pragma: no cover - wall-clock runs keep delays tiny
            time.sleep(seconds)

    # -- transport API ----------------------------------------------------

    def send(self, destination: str, payload: str) -> str:
        return self.exchange(ExchangeSpec(destination, payload))

    def exchange(self, spec: ExchangeSpec) -> str:
        key = normalize_peer_uri(spec.destination)
        if key in self.plan.blackhole:
            self._count("blackhole")
            self._elapse(self.plan.blackhole_seconds)
            raise RetryableTransportError(
                f"injected fault: {key!r} blackholed (request timed out)",
                request_sent=True)
        fault = self._draw()
        if fault == "drop":
            self._count("drop")
            raise RetryableTransportError(
                f"injected fault: request to {key!r} dropped before "
                f"delivery", request_sent=False)
        if fault == "duplicate":
            stale = self._last_response.get(key)
            if stale is not None:
                self._count("duplicate")
                return stale
            fault = None  # nothing to replay yet: deliver normally
        if fault == "delay":
            self._count("delay")
            self._elapse(self.plan.delay_seconds)
        response = self.inner.exchange(spec)
        self._last_response[key] = response
        if fault == "reset":
            # The handler ran — the peer may have applied the call — but
            # the response is lost on the way back.
            self._count("reset")
            raise RetryableTransportError(
                f"injected fault: connection to {key!r} reset "
                f"mid-response", request_sent=True)
        if fault == "torn":
            self._count("torn")
            return response[:max(1, len(response) // 2)]
        if fault == "garbage":
            self._count("garbage")
            return "<html><body>502 Bad Gateway</body></html>"
        return response

    def exchange_many(self,
                      specs: list[ExchangeSpec]) -> list[str | TransportError]:
        """Sequential on purpose: the fault draw order (and therefore
        the whole schedule) stays deterministic for a given seed."""
        results: list[str | TransportError] = []
        for spec in specs:
            try:
                results.append(self.exchange(spec))
            except TransportError as exc:
                results.append(exc)
        return results

    def close(self) -> None:
        self.inner.close()

    def __getattr__(self, name: str):
        # Everything else (register_peer, clock, cost_model, stats, ...)
        # belongs to the wrapped transport.
        return getattr(self.inner, name)
