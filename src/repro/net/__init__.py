"""Network substrate: transports connecting XRPC peers.

Two interchangeable transports implement the paper's "SOAP over HTTP"
channel:

* :class:`~repro.net.simulated.SimulatedNetwork` — a deterministic
  virtual-time transport with a configurable latency/bandwidth cost
  model.  Benchmarks use it so the latency-amortisation shape of Bulk
  RPC (Table 2) is machine-independent and reproducible.
* :class:`~repro.net.http.HttpTransport` /
  :class:`~repro.net.http.HttpXRPCServer` — a real loopback HTTP POST
  transport built on the standard library, proving the protocol actually
  runs over HTTP/SOAP like the paper's SHTTPD-based implementation.
  Backed by :mod:`repro.net.pool`: persistent keep-alive connections per
  peer and true concurrent per-destination ``send_parallel`` fan-out.

The fault-tolerance layer stacks on top of either transport:
:mod:`repro.net.retry` (deadlines, retry/backoff, circuit breakers,
the :class:`~repro.net.retry.ResilientChannel` driver) and
:mod:`repro.net.faults` (the seeded chaos-testing wrapper).
"""

from repro.net.clock import VirtualClock, WallClock
from repro.net.cost import NetworkCostModel, PeerCostModel
from repro.net.faults import FaultInjectingTransport, FaultPlan
from repro.net.pool import ConnectionPool, PeerStats, dispatch_parallel
from repro.net.retry import (NET_STATS, BreakerRegistry, ChannelRequest,
                             CircuitBreaker, Deadline, NetEvents,
                             ResilientChannel, RetryPolicy)
from repro.net.simulated import SimulatedNetwork
from repro.net.transport import ExchangeSpec, Transport, normalize_peer_uri
from repro.net.http import HttpTransport, HttpXRPCServer

__all__ = [
    "VirtualClock",
    "WallClock",
    "NetworkCostModel",
    "PeerCostModel",
    "ConnectionPool",
    "PeerStats",
    "dispatch_parallel",
    "SimulatedNetwork",
    "Transport",
    "ExchangeSpec",
    "normalize_peer_uri",
    "HttpTransport",
    "HttpXRPCServer",
    "NET_STATS",
    "BreakerRegistry",
    "ChannelRequest",
    "CircuitBreaker",
    "Deadline",
    "NetEvents",
    "ResilientChannel",
    "RetryPolicy",
    "FaultInjectingTransport",
    "FaultPlan",
]
