"""Deterministic simulated network with a virtual clock.

Each registered peer is a handler function; :meth:`SimulatedNetwork.send`
charges the transfer cost of the request, lets the handler run (handlers
charge their own CPU costs against the same clock), then charges the
transfer cost of the response.  ``send_parallel`` models the paper's
parallel dispatch of Bulk RPC requests to multiple peers: the clock
advances by the *maximum* branch time, not the sum.
"""

from __future__ import annotations

from typing import Callable

from repro.errors import FatalTransportError, TransportError
from repro.net.clock import VirtualClock
from repro.net.cost import NetworkCostModel
from repro.net.pool import group_by_destination
from repro.net.transport import ExchangeSpec, Transport, normalize_peer_uri

Handler = Callable[[str], str]


class SimulatedNetwork(Transport):
    """In-process message bus between peers sharing one virtual clock."""

    def __init__(self, cost_model: NetworkCostModel | None = None,
                 clock: VirtualClock | None = None) -> None:
        self.clock = clock or VirtualClock()
        self.cost_model = cost_model or NetworkCostModel()
        self._handlers: dict[str, Handler] = {}
        self.messages_sent = 0
        self.bytes_sent = 0
        self.bytes_received = 0
        # Per-message log: (destination key, request bytes, response bytes).
        self.message_log: list[tuple[str, int, int]] = []

    def register_peer(self, uri: str, handler: Handler) -> None:
        """Attach a peer's request handler under its host key."""
        self._handlers[normalize_peer_uri(uri)] = handler

    def send(self, destination: str, payload: str) -> str:
        key = normalize_peer_uri(destination)
        handler = self._handlers.get(key)
        if handler is None:
            # A peer that simply does not exist is a configuration
            # error: no amount of retrying will register it.
            raise FatalTransportError(
                f"no peer registered at {destination!r} (key {key!r})")
        self.messages_sent += 1
        request_bytes = len(payload.encode("utf-8"))
        self.bytes_sent += request_bytes
        self.clock.advance(self.cost_model.transfer_seconds(request_bytes))
        response = handler(payload)
        response_bytes = len(response.encode("utf-8"))
        self.bytes_received += response_bytes
        self.message_log.append((key, request_bytes, response_bytes))
        self.clock.advance(self.cost_model.transfer_seconds(response_bytes))
        return response

    def send_parallel(self, requests: list[tuple[str, str]]) -> list[str]:
        """Parallel dispatch: total time = max of the branch times.

        Mirrors :func:`repro.net.pool.dispatch_parallel`'s shape in
        virtual time: one branch per distinct destination peer, requests
        to the same destination sequential within their branch (they
        share one connection in the real transport), branches overlapped
        so the clock advances by the slowest branch only.
        """
        if not requests:
            return []
        branches = group_by_destination(requests)
        start = self.clock.now()
        responses: list = [None] * len(requests)
        end_times: list[float] = []
        for indexes in branches.values():
            # Rewind to the common start for each branch, then record
            # how far this branch pushed the clock.
            self._rewind(start)
            for index in indexes:
                destination, payload = requests[index]
                responses[index] = self.send(destination, payload)
            end_times.append(self.clock.now())
        self._rewind(start)
        self.clock.advance(max(end_times) - start)
        return responses

    def exchange_many(self,
                      specs: list[ExchangeSpec]) -> list[str | TransportError]:
        """Captured parallel dispatch: branch failures fill their own
        slots (and still charge their branch's virtual time), the clock
        advances by the slowest branch as in :meth:`send_parallel`."""
        if not specs:
            return []
        branches: dict[str, list[int]] = {}
        for index, spec in enumerate(specs):
            branches.setdefault(
                normalize_peer_uri(spec.destination), []).append(index)
        start = self.clock.now()
        results: list = [None] * len(specs)
        end_times: list[float] = []
        for indexes in branches.values():
            self._rewind(start)
            for index in indexes:
                try:
                    results[index] = self.exchange(specs[index])
                except TransportError as exc:
                    results[index] = exc
            end_times.append(self.clock.now())
        self._rewind(start)
        self.clock.advance(max(end_times) - start)
        return results

    def _rewind(self, timestamp: float) -> None:
        # VirtualClock forbids moving backwards through its public API to
        # catch accidental misuse; parallel simulation legitimately forks
        # the timeline, so poke the internal field deliberately.
        self.clock._now = timestamp

    def reset_stats(self) -> None:
        self.messages_sent = 0
        self.bytes_sent = 0
        self.bytes_received = 0
        self.message_log.clear()
