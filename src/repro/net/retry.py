"""Fault-tolerance layer: deadlines, retry/backoff, circuit breakers.

XRPC ships one bulk SOAP message per peer over real networks (ZhangB07
section 3.2), where connections drop, peers stall, and responses arrive
torn.  This module supplies the policy layer between the RPC client and
the raw :class:`~repro.net.transport.Transport`:

* :class:`Deadline` — a per-query time budget measured on the
  transport's clock (virtual in simulation, monotonic wall time over
  HTTP).  Every exchange carries the *remaining* budget as its socket
  timeout and echoes it to the remote peer in a SOAP header so doomed
  work is abandoned on both sides.
* :class:`RetryPolicy` — bounded exponential backoff with seeded,
  deterministic jitter.  Whether a failed exchange may be retried is
  decided by the error taxonomy (``request_sent``) crossed with the
  caller's ``retry_safe`` verdict — the static analyzer's updating-ness
  result, never a payload sniff.
* :class:`CircuitBreaker` / :class:`BreakerRegistry` — per-destination
  closed/open/half-open state so a dead peer fails fast
  (:class:`~repro.errors.CircuitOpenError`) instead of burning the
  deadline on every bulk round.
* :class:`ResilientChannel` — the driver tying those together around
  ``Transport.exchange``/``exchange_many``: fresh payload per attempt
  (new exchange id, current remaining budget), failure classification,
  backoff capped by the deadline, and per-entry error capture for the
  partial-results ("degrade") policy.

Every decision the layer takes is counted in :data:`NET_STATS`
(process-wide totals for ``Database.stats()`` plus per-thread totals for
per-execution ``Explain`` deltas) and, when the caller passes a
:class:`NetEvents` sink, recorded per execution with the failed-peer
list that feeds degraded-result reports.
"""

from __future__ import annotations

import random
import threading
import time
from dataclasses import dataclass
from typing import Any, Callable

from repro.errors import (CircuitOpenError, DeadlineExceeded,
                          FatalTransportError, RetryableTransportError,
                          TransportError)
from repro.net.clock import VirtualClock, WallClock
from repro.net.transport import ExchangeSpec, Transport, normalize_peer_uri
from repro.xdm.structural import EncodingStats


class NetStats(EncodingStats):
    """Fault-tolerance telemetry counters.

    ``exchanges`` — attempts handed to the transport (including
    retries); ``retries`` — re-attempts after a retryable failure;
    ``retry_giveups`` — exchanges abandoned with attempts exhausted;
    ``breaker_opens`` — closed/half-open -> open transitions;
    ``breaker_fast_fails`` — exchanges refused without touching the
    network because the destination's breaker was open;
    ``deadline_expired`` — exchanges (or backoff waits) cut short by the
    query deadline; ``degraded_peers`` — peers skipped under the
    ``on_peer_failure="degrade"`` partial-results policy;
    ``faults_injected`` — faults the chaos harness actually injected.
    """

    FIELDS = ("exchanges", "retries", "retry_giveups", "breaker_opens",
              "breaker_fast_fails", "deadline_expired", "degraded_peers",
              "faults_injected")


#: Process-wide counter instance (exchanges run from any thread).
NET_STATS = NetStats()


class NetEvents:
    """Per-execution fault-tolerance event record.

    The channel bumps :data:`NET_STATS` for every event regardless;
    callers that need per-query attribution (``Explain``, degraded
    result reports) additionally pass one of these through the exchange
    and read ``counters`` / ``failed_peers`` afterwards.
    """

    def __init__(self) -> None:
        self.counters: dict[str, int] = {}
        # Normalized peer keys whose exchanges were abandoned, in
        # first-failure order (feeds `failed_peers` in degraded results).
        self.failed_peers: list[str] = []
        # Peers already counted as degraded (one per peer per execution,
        # however many of its bulk groups failed).
        self.degraded_counted: set[str] = set()

    def note(self, event: str, count: int = 1) -> None:
        self.counters[event] = self.counters.get(event, 0) + count

    def peer_failed(self, destination: str) -> None:
        key = normalize_peer_uri(destination)
        if key not in self.failed_peers:
            self.failed_peers.append(key)

    def get(self, event: str) -> int:
        return self.counters.get(event, 0)


class Deadline:
    """An absolute expiry on a transport clock; ``remaining()`` >= 0.

    Built from the query's ``xrpc:timeout`` option (or an explicit
    ``timeout=`` argument) with :meth:`after`; remote peers rebuild one
    from the ``remaining`` budget echoed in the request's SOAP header,
    so the budget shrinks monotonically across hops.
    """

    def __init__(self, expires_at: float, clock) -> None:
        self.expires_at = expires_at
        self.clock = clock

    @classmethod
    def after(cls, seconds: float, clock) -> "Deadline":
        return cls(clock.now() + seconds, clock)

    def remaining(self) -> float:
        return max(0.0, self.expires_at - self.clock.now())

    def expired(self) -> bool:
        return self.clock.now() >= self.expires_at

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Deadline(remaining={self.remaining():.3f}s)"


@dataclass
class RetryPolicy:
    """Bounded exponential backoff with seeded, deterministic jitter.

    ``backoff(attempt)`` returns the delay after the ``attempt``-th
    failure: ``base_delay * multiplier**(attempt-1)`` capped at
    ``max_delay``, scaled by a jitter factor drawn uniformly from
    ``[1-jitter, 1+jitter]``.  The jitter RNG is seeded so fault
    schedules replay identically; pass ``jitter=0`` to disable.
    """

    max_attempts: int = 3
    base_delay: float = 0.05
    multiplier: float = 2.0
    max_delay: float = 2.0
    jitter: float = 0.1
    seed: int = 0

    def __post_init__(self) -> None:
        self._rng = random.Random(self.seed)
        self._lock = threading.Lock()

    def backoff(self, attempt: int) -> float:
        delay = min(self.max_delay,
                    self.base_delay * self.multiplier ** max(0, attempt - 1))
        if self.jitter:
            with self._lock:
                factor = 1.0 + self.jitter * (2.0 * self._rng.random() - 1.0)
            delay *= factor
        return delay


class CircuitBreaker:
    """Per-destination closed/open/half-open breaker state machine.

    ``failure_threshold`` consecutive failures open the circuit; while
    open, :meth:`allow` refuses exchanges (the caller fails fast with
    :class:`~repro.errors.CircuitOpenError`) until ``cooldown`` seconds
    elapse, after which exactly one half-open probe is let through — its
    success closes the circuit, its failure re-opens it for another
    cooldown.  Thread-safe; time is supplied by the caller so the same
    machine runs on virtual and wall clocks.
    """

    def __init__(self, failure_threshold: int = 5,
                 cooldown: float = 30.0) -> None:
        self.failure_threshold = failure_threshold
        self.cooldown = cooldown
        self._lock = threading.Lock()
        self.state = "closed"
        self.consecutive_failures = 0
        self.opened_at = 0.0
        self.opens = 0
        self._probe_in_flight = False

    def allow(self, now: float) -> bool:
        with self._lock:
            if self.state == "closed":
                return True
            if self.state == "open":
                if now - self.opened_at < self.cooldown:
                    return False
                self.state = "half-open"
                self._probe_in_flight = True
                return True
            # half-open: one probe at a time.
            if self._probe_in_flight:
                return False
            self._probe_in_flight = True
            return True

    def record_success(self) -> None:
        with self._lock:
            self.state = "closed"
            self.consecutive_failures = 0
            self._probe_in_flight = False

    def record_failure(self, now: float) -> bool:
        """Count one failure; returns True when this opened the circuit."""
        with self._lock:
            self.consecutive_failures += 1
            tripped = (self.state == "half-open"
                       or self.consecutive_failures >= self.failure_threshold)
            if not tripped:
                return False
            newly_opened = self.state != "open"
            self.state = "open"
            self.opened_at = now
            self._probe_in_flight = False
            if newly_opened:
                self.opens += 1
            return newly_opened

    def retry_after(self, now: float) -> float:
        with self._lock:
            if self.state != "open":
                return 0.0
            return max(0.0, self.cooldown - (now - self.opened_at))


class _NullBreaker(CircuitBreaker):
    """Always-closed breaker used when breakers are disabled."""

    def allow(self, now: float) -> bool:
        return True

    def record_failure(self, now: float) -> bool:
        return False

    def record_success(self) -> None:
        pass


class BreakerRegistry:
    """One :class:`CircuitBreaker` per normalized destination key."""

    def __init__(self, failure_threshold: int = 5, cooldown: float = 30.0,
                 enabled: bool = True) -> None:
        self.failure_threshold = failure_threshold
        self.cooldown = cooldown
        self.enabled = enabled
        self._lock = threading.Lock()
        self._breakers: dict[str, CircuitBreaker] = {}
        self._null = _NullBreaker()

    def get(self, destination: str) -> CircuitBreaker:
        if not self.enabled:
            return self._null
        key = normalize_peer_uri(destination)
        with self._lock:
            breaker = self._breakers.get(key)
            if breaker is None:
                breaker = CircuitBreaker(self.failure_threshold, self.cooldown)
                self._breakers[key] = breaker
            return breaker

    def snapshot(self) -> dict[str, str]:
        """Destination key -> breaker state (observability)."""
        with self._lock:
            return {key: breaker.state
                    for key, breaker in self._breakers.items()}


@dataclass
class ChannelRequest:
    """One logical exchange for :meth:`ResilientChannel.exchange_many`.

    ``build(attempt, remaining)`` produces the wire payload for one
    attempt — called fresh per attempt so each carries a new exchange id
    and the *current* remaining deadline budget; ``parse(response)``
    decodes the reply, raising
    :class:`~repro.errors.RetryableTransportError` (``request_sent=True``)
    for torn/garbage/stale responses so they re-enter the retry matrix.
    """

    destination: str
    build: Callable[[int, float | None], str]
    parse: Callable[[str], Any]
    retry_safe: bool = True
    # Memoized destination breaker (resolved by the channel on first use).
    _breaker: Any = None


class ResilientChannel:
    """Retry/breaker/deadline driver around a :class:`Transport`.

    The single enforcement point for the fault-tolerance policy: both
    the real HTTP transport and the simulated network (and anything the
    fault harness wraps) go through the same classification, backoff,
    and breaker logic.  Backoff waits advance the transport's virtual
    clock in simulation and really sleep over HTTP.
    """

    def __init__(self, transport: Transport,
                 policy: RetryPolicy | None = None,
                 breakers: BreakerRegistry | None = None,
                 clock=None) -> None:
        self.transport = transport
        self.policy = policy or RetryPolicy()
        self.breakers = breakers or BreakerRegistry()
        self.clock = clock or getattr(transport, "clock", None) or WallClock()

    # -- single exchange -------------------------------------------------

    def exchange(self, destination: str,
                 build: Callable[[int, float | None], str],
                 parse: Callable[[str], Any],
                 retry_safe: bool = True,
                 deadline: Deadline | None = None,
                 events: NetEvents | None = None) -> Any:
        """Run one exchange to completion under the full policy."""
        entry = ChannelRequest(destination, build, parse, retry_safe)
        attempt = 1
        while True:
            try:
                return self._attempt(entry, attempt, deadline, events)
            except TransportError as exc:
                attempt = self._plan_retry(entry, attempt, exc,
                                           deadline, events)

    # -- batched exchanges ----------------------------------------------

    def exchange_many(self, entries: list[ChannelRequest],
                      deadline: Deadline | None = None,
                      events: NetEvents | None = None,
                      capture: bool = False) -> list[Any]:
        """Dispatch a batch; first attempts ride the transport's parallel
        fan-out, stragglers retry individually.

        With ``capture=True`` (the partial-results path) a failed
        entry's slot holds its final :class:`TransportError` instead of
        raising, and the failing peer lands in ``events.failed_peers``.
        """
        results: list[Any] = [None] * len(entries)
        # Round 1: open every entry (deadline/breaker gate + build),
        # batch the allowed ones through the transport's own fan-out.
        specs: list[ExchangeSpec] = []
        owners: list[int] = []
        pending: list[tuple[int, TransportError]] = []
        for index, entry in enumerate(entries):
            try:
                specs.append(self._open_spec(entry, 1, deadline, events))
                owners.append(index)
            except TransportError as exc:
                pending.append((index, exc))
        raw = self.transport.exchange_many(specs) if specs else []
        for outcome, index in zip(raw, owners):
            entry = entries[index]
            try:
                results[index] = self._close(entry, outcome, events)
            except TransportError as exc:
                pending.append((index, exc))
        # Round 2+: retry the failures one by one (rare path).
        for index, exc in sorted(pending, key=lambda item: item[0]):
            entry = entries[index]
            try:
                results[index] = self._finish(entry, exc, deadline, events)
            except TransportError as final:
                if not capture:
                    raise
                if events is not None:
                    events.peer_failed(entry.destination)
                results[index] = final
        return results

    # -- internals -------------------------------------------------------

    def _finish(self, entry: ChannelRequest, exc: TransportError,
                deadline: Deadline | None,
                events: NetEvents | None) -> Any:
        """Drive one entry from its first failure to success or give-up."""
        attempt = 1
        while True:
            attempt = self._plan_retry(entry, attempt, exc, deadline, events)
            try:
                return self._attempt(entry, attempt, deadline, events)
            except TransportError as next_exc:
                exc = next_exc

    def _attempt(self, entry: ChannelRequest, attempt: int,
                 deadline: Deadline | None,
                 events: NetEvents | None) -> Any:
        spec = self._open_spec(entry, attempt, deadline, events)
        try:
            outcome: str | TransportError = self.transport.exchange(spec)
        except TransportError as exc:
            outcome = exc
        return self._close(entry, outcome, events)

    def _breaker(self, entry: ChannelRequest) -> CircuitBreaker:
        """Resolve (and memoize) the entry's destination breaker —
        every attempt's gate and verdict hit the same one."""
        breaker = entry._breaker
        if breaker is None:
            breaker = entry._breaker = self.breakers.get(entry.destination)
        return breaker

    def _open_spec(self, entry: ChannelRequest, attempt: int,
                   deadline: Deadline | None,
                   events: NetEvents | None) -> ExchangeSpec:
        """Deadline/breaker gate, then build this attempt's payload."""
        remaining: float | None = None
        if deadline is not None:
            if deadline.expired():
                self._note(events, "deadline_expired")
                raise DeadlineExceeded(
                    f"query deadline exhausted before exchange with "
                    f"{entry.destination!r}")
            remaining = deadline.remaining()
        breaker = self._breaker(entry)
        if breaker.state != "closed":
            now = self.clock.now()
            if not breaker.allow(now):
                self._note(events, "breaker_fast_fails")
                raise CircuitOpenError(normalize_peer_uri(entry.destination),
                                       breaker.retry_after(now))
        self._note(events, "exchanges")
        return ExchangeSpec(entry.destination,
                            entry.build(attempt, remaining),
                            retry_safe=entry.retry_safe, timeout=remaining)

    def _close(self, entry: ChannelRequest, outcome: str | TransportError,
               events: NetEvents | None) -> Any:
        """Parse one attempt's outcome, keeping the breaker informed."""
        breaker = self._breaker(entry)
        if isinstance(outcome, TransportError):
            self._record_failure(breaker, events)
            raise outcome
        try:
            result = entry.parse(outcome)
        except RetryableTransportError:
            # Torn/garbage/stale response: the peer misbehaved even
            # though bytes came back.
            self._record_failure(breaker, events)
            raise
        except Exception:
            # A decoded SOAP fault (XRPCFault etc.) means the peer is
            # alive and answering — success as far as the breaker cares.
            breaker.record_success()
            raise
        breaker.record_success()
        return result

    def _plan_retry(self, entry: ChannelRequest, attempt: int,
                    exc: TransportError, deadline: Deadline | None,
                    events: NetEvents | None) -> int:
        """Decide whether attempt N+1 happens; backs off and returns its
        number, or re-raises ``exc``."""
        if not self._may_retry(exc, entry.retry_safe):
            raise exc
        if attempt >= self.policy.max_attempts:
            self._note(events, "retry_giveups")
            raise exc
        delay = self.policy.backoff(attempt)
        if deadline is not None and deadline.remaining() <= delay:
            self._note(events, "deadline_expired")
            raise DeadlineExceeded(
                f"query deadline exhausted while backing off for "
                f"{entry.destination!r}") from exc
        self._note(events, "retries")
        self._sleep(delay)
        return attempt + 1

    @staticmethod
    def _may_retry(exc: TransportError, retry_safe: bool) -> bool:
        if isinstance(exc, (FatalTransportError, DeadlineExceeded)):
            # CircuitOpenError is Fatal: retrying would just burn the
            # deadline against a closed gate.
            return False
        if isinstance(exc, RetryableTransportError):
            return retry_safe or not exc.request_sent
        # Bare TransportError: conservatively assume the request may
        # have reached the peer.
        return retry_safe

    def _record_failure(self, breaker: CircuitBreaker,
                        events: NetEvents | None) -> None:
        if breaker.record_failure(self.clock.now()):
            self._note(events, "breaker_opens")

    def _note(self, events: NetEvents | None, event: str) -> None:
        NET_STATS.bump(event)
        if events is not None:
            events.note(event)

    def _sleep(self, seconds: float) -> None:
        if seconds <= 0:
            return
        if isinstance(self.clock, VirtualClock):
            self.clock.advance(seconds)
        else:  # pragma: no cover - wall-clock sleeps are avoided in tests
            time.sleep(seconds)
