"""Keep-alive HTTP connection pooling and concurrent dispatch.

The paper's throughput analysis (section 3.3) shows XRPC is CPU-bound on
a fast LAN — which makes per-request TCP connection setup pure waste —
and section 3.2 requires Bulk RPC requests to distinct peers to be
dispatched *in parallel*.  This module supplies both halves for the real
HTTP transport:

* :class:`ConnectionPool` — persistent ``http.client`` connections per
  peer address, checked out/in under a lock, with per-peer
  :class:`PeerStats` counters and a one-shot retry when a kept-alive
  connection turns out to be stale;
* :func:`dispatch_parallel` — per-destination fan-out: requests to
  distinct destinations run on concurrent threads while requests to the
  same destination stay sequential (keeping them on one connection).
"""

from __future__ import annotations

import http.client
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable

from repro.errors import (CircuitOpenError, FatalTransportError,
                          RetryableTransportError, TransportError)
from repro.net.transport import ExchangeSpec, normalize_peer_uri

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (typing only)
    from repro.net.retry import BreakerRegistry


def _split_address(address: str) -> tuple[str, int]:
    """``host``, ``host:port``, ``[v6]`` or ``[v6]:port`` -> (host, port)."""
    if address.startswith("["):
        host, _, rest = address[1:].partition("]")
        port = rest.lstrip(":")
    elif address.count(":") == 1:
        host, _, port = address.partition(":")
    else:  # bare host name or bare IPv6 literal
        host, port = address, ""
    try:
        return host, int(port) if port else 80
    except ValueError:
        raise FatalTransportError(
            f"invalid peer address {address!r}") from None


@dataclass
class PeerStats:
    """Connection/traffic counters for one peer address."""

    requests: int = 0
    connections_opened: int = 0
    connections_reused: int = 0
    retries: int = 0
    bytes_sent: int = 0
    bytes_received: int = 0


class ConnectionPool:
    """Thread-safe pool of keep-alive HTTP connections, keyed by address.

    ``request`` checks a connection out, performs one POST exchange, and
    returns the connection to the idle list when the server kept the
    connection open.  A request that fails on a *reused* connection is
    retried once on a fresh one — the server may legitimately have
    closed an idle keep-alive connection between exchanges.
    """

    def __init__(self, timeout: float = 30.0,
                 max_idle_per_peer: int = 8,
                 breakers: "BreakerRegistry | None" = None) -> None:
        self._timeout = timeout
        self._max_idle = max_idle_per_peer
        self._lock = threading.Lock()
        self._idle: dict[str, list[http.client.HTTPConnection]] = {}
        self._stats: dict[str, PeerStats] = {}
        self._closed = False
        # Optional per-address circuit breakers: while an address's
        # breaker is open, `request` fails fast with CircuitOpenError
        # instead of dialing a peer known to be down.
        self._breakers = breakers

    def stats(self, address: str) -> PeerStats:
        with self._lock:
            return self._stats.setdefault(address, PeerStats())

    def _checkout(self, address: str,
                  timeout: float) -> tuple[http.client.HTTPConnection, bool]:
        with self._lock:
            if self._closed:
                raise FatalTransportError("connection pool is closed")
            stats = self._stats.setdefault(address, PeerStats())
            idle = self._idle.get(address)
            if idle:
                stats.connections_reused += 1
                return idle.pop(), True
            stats.connections_opened += 1
        host, port = _split_address(address)
        return http.client.HTTPConnection(
            host, port, timeout=timeout), False

    def _checkin(self, address: str,
                 connection: http.client.HTTPConnection,
                 reusable: bool) -> None:
        if reusable:
            with self._lock:
                if not self._closed:
                    idle = self._idle.setdefault(address, [])
                    if len(idle) < self._max_idle:
                        idle.append(connection)
                        return
        connection.close()

    def request(self, address: str, path: str, body: bytes,
                headers: dict[str, str],
                retry_safe: bool = True,
                timeout: float | None = None) -> tuple[int, bytes]:
        """One POST exchange; returns ``(status, response body)``.

        ``retry_safe=False`` marks a non-idempotent exchange (an updating
        RPC): it is still retried when the failure happened while
        *sending* on a stale kept-alive connection — the request cannot
        have executed — but never after the request went out, since the
        server may already have applied it.

        ``timeout`` is the exchange's remaining deadline budget: the
        socket timeout becomes ``min(timeout, pool default)`` so a
        doomed request cannot outlive its query.
        """
        breaker = (self._breakers.get(address)
                   if self._breakers is not None else None)
        if breaker is not None and not breaker.allow(time.monotonic()):
            raise CircuitOpenError(address,
                                   breaker.retry_after(time.monotonic()))
        effective = (self._timeout if timeout is None
                     else min(timeout, self._timeout))
        retried = False
        while True:
            connection, reused = self._checkout(address, effective)
            if reused and connection.sock is not None:
                # A kept-alive socket still carries the previous
                # exchange's timeout; re-arm it with this one's budget.
                connection.sock.settimeout(effective)
            sent = False
            try:
                connection.request("POST", path, body=body, headers=headers)
                sent = True
                response = connection.getresponse()
                payload = response.read()
            except (http.client.HTTPException, OSError) as exc:
                connection.close()
                if reused and not retried and (retry_safe or not sent):
                    # Stale keep-alive connection (the server closed it
                    # between exchanges): retry once on a fresh one.
                    retried = True
                    with self._lock:
                        self._stats[address].retries += 1
                    continue
                if breaker is not None:
                    breaker.record_failure(time.monotonic())
                raise RetryableTransportError(
                    f"cannot reach http://{address}{path}: {exc}",
                    request_sent=sent) from exc
            except BaseException:
                # Any other failure (handler bug, cancellation, ...):
                # the connection's protocol state is unknown — close and
                # drop it rather than ever returning it to the idle
                # pool, where it would poison a later exchange.
                connection.close()
                raise
            with self._lock:
                stats = self._stats[address]
                stats.requests += 1
                stats.bytes_sent += len(body)
                stats.bytes_received += len(payload)
            self._checkin(address, connection,
                          reusable=not response.will_close)
            if breaker is not None:
                breaker.record_success()
            return response.status, payload

    def close(self) -> None:
        """Close every idle connection and refuse further checkouts."""
        with self._lock:
            self._closed = True
            connections = [connection for idle in self._idle.values()
                           for connection in idle]
            self._idle.clear()
        for connection in connections:
            connection.close()


def group_by_destination(
        requests: list[tuple[str, str]]) -> dict[str, list[int]]:
    """Request indexes per destination peer (normalized), input order.

    The single grouping rule both the real thread fan-out and the
    simulated network's virtual-time branches dispatch by.
    """
    branches: dict[str, list[int]] = {}
    for index, (destination, _) in enumerate(requests):
        branches.setdefault(normalize_peer_uri(destination), []).append(index)
    return branches


def dispatch_parallel(send: Callable[[str, str], str],
                      requests: list[tuple[str, str]]) -> list[str]:
    """Concurrently dispatch ``(destination, payload)`` pairs.

    Per-destination fan-out: one worker thread per distinct destination
    peer, each sending its destination's requests sequentially in input
    order.  Replies come back in input order; the first branch failure
    propagates to the caller.
    """
    if not requests:
        return []
    branches = group_by_destination(requests)
    if len(branches) == 1:
        return [send(destination, payload)
                for destination, payload in requests]
    responses: list = [None] * len(requests)

    def run_branch(indexes: list[int]) -> None:
        for index in indexes:
            destination, payload = requests[index]
            responses[index] = send(destination, payload)

    with ThreadPoolExecutor(max_workers=len(branches)) as executor:
        futures = [executor.submit(run_branch, indexes)
                   for indexes in branches.values()]
        for future in futures:
            future.result()
    return responses


def dispatch_parallel_captured(
        exchange: Callable[[ExchangeSpec], str],
        specs: list[ExchangeSpec]) -> list["str | TransportError"]:
    """Per-destination fan-out of specs, capturing per-entry failures.

    Same branch shape as :func:`dispatch_parallel`, but one entry's
    :class:`TransportError` lands in its own result slot instead of
    aborting the whole fan-out — the resilience layer above retries or
    degrades peers independently.  Non-transport exceptions still
    propagate (they are bugs, not network weather).
    """
    if not specs:
        return []
    branches: dict[str, list[int]] = {}
    for index, spec in enumerate(specs):
        branches.setdefault(
            normalize_peer_uri(spec.destination), []).append(index)
    results: list = [None] * len(specs)

    def run_branch(indexes: list[int]) -> None:
        for index in indexes:
            try:
                results[index] = exchange(specs[index])
            except TransportError as exc:
                results[index] = exc

    if len(branches) == 1:
        run_branch(next(iter(branches.values())))
        return results
    with ThreadPoolExecutor(max_workers=len(branches)) as executor:
        futures = [executor.submit(run_branch, indexes)
                   for indexes in branches.values()]
        for future in futures:
            future.result()
    return results
