"""Cost models for the simulated network and peers.

Defaults are calibrated so the simulated experiments land in the same
regime the paper reports (section 3.3):

* ~2.6 ms observed minimum per RPC round trip, of which ~2 ms is
  network+HTTP latency and the rest message handling;
* 130 ms XQuery module translation time (removed by the function cache);
* request-side data throughput ~8 MB/s (shredding-bound) and
  response-side ~14 MB/s (serialization-bound) — CPU-bound on a 1 Gb/s
  network, so we charge them as *peer* costs, not link costs.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass
class NetworkCostModel:
    """Cost of moving one message over the (simulated) wire."""

    latency_seconds: float = 0.001          # one-way latency incl. HTTP overhead
    bandwidth_bytes_per_second: float = 125e6   # 1 Gb/s Ethernet

    def transfer_seconds(self, nbytes: int) -> float:
        return self.latency_seconds + nbytes / self.bandwidth_bytes_per_second


@dataclass
class PeerCostModel:
    """CPU cost a peer charges while serving one XRPC request."""

    # XQuery module translation (parse+compile+optimize). The function
    # cache eliminates this per-request cost (Table 2, right half).
    compile_seconds: float = 0.130
    # Fixed per-request handling (HTTP dispatch, envelope shredding setup).
    request_overhead_seconds: float = 0.0003
    # Marginal cost of executing one call inside a bulk request.
    per_call_seconds: float = 0.0000013
    # Message shredding (requests arrive as XML that must be parsed):
    # 8 MB/s observed in the paper -> 125 ns/byte.
    shred_seconds_per_byte: float = 1.0 / 8e6
    # Result serialization: 14 MB/s -> ~71 ns/byte.
    serialize_seconds_per_byte: float = 1.0 / 14e6

    def request_cost(self, request_bytes: int, calls: int,
                     compiled_cached: bool) -> float:
        """Total simulated CPU seconds to serve one (bulk) request."""
        cost = self.request_overhead_seconds
        cost += request_bytes * self.shred_seconds_per_byte
        cost += calls * self.per_call_seconds
        if not compiled_cached:
            cost += self.compile_seconds
        return cost

    def response_cost(self, response_bytes: int) -> float:
        return response_bytes * self.serialize_seconds_per_byte
