"""Clocks: virtual (simulation) and wall (real transports).

The paper's experiments measure milliseconds of latency dominated by
network round-trips and compile costs.  A :class:`VirtualClock` lets the
simulated benchmarks charge those costs deterministically, so the
*shape* of Table 2 reproduces on any machine.
"""

from __future__ import annotations

import time


class VirtualClock:
    """A manually-advanced clock measuring simulated seconds."""

    def __init__(self, start: float = 0.0) -> None:
        self._now = start

    def now(self) -> float:
        return self._now

    def advance(self, seconds: float) -> None:
        if seconds < 0:
            raise ValueError("cannot advance the clock backwards")
        self._now += seconds

    def set(self, timestamp: float) -> None:
        if timestamp < self._now:
            raise ValueError("cannot move the clock backwards")
        self._now = timestamp


class WallClock:
    """Real time; used with the HTTP transport."""

    def now(self) -> float:
        return time.monotonic()

    def advance(self, seconds: float) -> None:
        """Charging costs is a no-op in real time (they really elapse)."""
