"""Transport interface and peer URI handling.

The paper introduces the ``xrpc://<host>[:port][/[path]]`` URI scheme
accepted by ``execute at``.  :func:`normalize_peer_uri` reduces any such
URI (or a bare host name) to the canonical ``host[:port]`` key that
transports route on.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass

from repro.errors import TransportError


def normalize_peer_uri(uri: str) -> str:
    """Canonical peer key from an xrpc:// (or http://) URI or bare host."""
    for scheme in ("xrpc://", "http://", "https://"):
        if uri.startswith(scheme):
            uri = uri[len(scheme):]
            break
    return uri.split("/", 1)[0].rstrip("/") or "localhost"


@dataclass
class ExchangeSpec:
    """One request/response exchange plus its fault-tolerance contract.

    ``retry_safe``
        Whether the exchange may be replayed after the request possibly
        reached the peer.  Decided by the *caller* from the static
        analyzer's updating-ness verdict (never by sniffing the payload
        text): read-only exchanges are idempotent under XRPC's
        repeatable-read isolation, updating ones are not.
    ``timeout``
        Remaining deadline budget in seconds, or ``None`` for the
        transport's default.  Real transports turn this into a socket
        timeout so a doomed exchange cannot outlive its query.
    """

    destination: str
    payload: str
    retry_safe: bool = True
    timeout: float | None = None


class Transport(ABC):
    """Sends one SOAP message to a destination peer, returns the reply."""

    @abstractmethod
    def send(self, destination: str, payload: str) -> str:
        """Synchronous request/response exchange (HTTP POST semantics)."""

    def send_parallel(self, requests: list[tuple[str, str]]) -> list[str]:
        """Dispatch several requests "in parallel".

        The paper's implementation dispatches Bulk RPC requests to
        multiple destination peers concurrently (section 3.2).  The
        default implementation is sequential; :class:`~repro.net.http.
        HttpTransport` overrides it with true per-destination thread
        fan-out and the simulated network charges only the slowest
        branch's virtual time.
        """
        return [self.send(destination, payload)
                for destination, payload in requests]

    def exchange(self, spec: ExchangeSpec) -> str:
        """One exchange with its fault-tolerance contract attached.

        The base implementation ignores ``retry_safe``/``timeout`` and
        delegates to :meth:`send`; transports that can honour them
        (:class:`~repro.net.http.HttpTransport` maps ``timeout`` to the
        socket timeout and ``retry_safe`` to the stale-keep-alive retry
        rule) override this.
        """
        return self.send(spec.destination, spec.payload)

    def exchange_many(self,
                      specs: list[ExchangeSpec]) -> list[str | TransportError]:
        """Dispatch several exchanges, capturing per-entry failures.

        Unlike :meth:`send_parallel` — where the first branch failure
        aborts the whole fan-out — every entry runs and the result slot
        holds either the response string or the ``TransportError`` that
        branch raised, so the retry/partial-results layer above can
        treat peers independently.  The default runs sequentially;
        transports override for true parallelism (HTTP threads) or
        virtual-time branch overlap (the simulated network).
        """
        results: list[str | TransportError] = []
        for spec in specs:
            try:
                results.append(self.exchange(spec))
            except TransportError as exc:
                results.append(exc)
        return results

    def close(self) -> None:
        """Release transport resources (pooled connections, threads).

        Safe to call more than once; the default transport holds none.
        """

    def __enter__(self) -> "Transport":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
