"""Transport interface and peer URI handling.

The paper introduces the ``xrpc://<host>[:port][/[path]]`` URI scheme
accepted by ``execute at``.  :func:`normalize_peer_uri` reduces any such
URI (or a bare host name) to the canonical ``host[:port]`` key that
transports route on.
"""

from __future__ import annotations

from abc import ABC, abstractmethod


def normalize_peer_uri(uri: str) -> str:
    """Canonical peer key from an xrpc:// (or http://) URI or bare host."""
    for scheme in ("xrpc://", "http://", "https://"):
        if uri.startswith(scheme):
            uri = uri[len(scheme):]
            break
    return uri.split("/", 1)[0].rstrip("/") or "localhost"


class Transport(ABC):
    """Sends one SOAP message to a destination peer, returns the reply."""

    @abstractmethod
    def send(self, destination: str, payload: str) -> str:
        """Synchronous request/response exchange (HTTP POST semantics)."""

    def send_parallel(self, requests: list[tuple[str, str]]) -> list[str]:
        """Dispatch several requests "in parallel".

        The paper's implementation dispatches Bulk RPC requests to
        multiple destination peers concurrently (section 3.2).  The
        default implementation is sequential; :class:`~repro.net.http.
        HttpTransport` overrides it with true per-destination thread
        fan-out and the simulated network charges only the slowest
        branch's virtual time.
        """
        return [self.send(destination, payload)
                for destination, payload in requests]

    def close(self) -> None:
        """Release transport resources (pooled connections, threads).

        Safe to call more than once; the default transport holds none.
        """

    def __enter__(self) -> "Transport":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
