"""The prepared-query pre-parser (section 3.3, "Function Cache").

MonetDB/XQuery accelerates queries "that just load a module and call a
function in it with constant values as parameter": a *pre-parser*
detects the pattern without full compilation, extracts the constant
arguments, and feeds them into a cached plan for the function — turning
the query into a prepared-statement execution (ten-fold speedups on
small data in the paper).

This module implements that detector: :func:`preparse` recognises
queries of the shape ::

    import module namespace p = "uri" [at "loc"];
    p:function(<literal>, ...)

and returns a :class:`PreparsedCall` (module, function, constant
arguments).  Anything else returns ``None`` and takes the full
compilation path.  :class:`PreparedFunctionCache` combines the detector
with a per-function plan cache the way the XRPC request handler uses it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.errors import StaticError
from repro.xdm.atomic import AtomicValue
from repro.xquery.lexer import Lexer


@dataclass
class PreparsedCall:
    """A detected constant-argument module-function call."""

    module_prefix: str
    module_uri: str
    location: Optional[str]
    function: str          # lexical QName as written
    local_name: str
    arguments: list[AtomicValue]

    @property
    def arity(self) -> int:
        return len(self.arguments)


def preparse(source: str) -> Optional[PreparsedCall]:
    """Detect the prepared-query pattern; None if the query is general.

    Only lexing is needed — no parsing, no compilation — which is the
    point: the fast path must be cheap to test for.
    """
    try:
        return _preparse(source)
    except StaticError:
        return None


def _preparse(source: str) -> Optional[PreparsedCall]:
    lexer = Lexer(source)

    token = lexer.next()
    if not token.is_name("import"):
        return None
    if not lexer.next().is_name("module"):
        return None
    if not lexer.next().is_name("namespace"):
        return None
    prefix_token = lexer.next()
    if prefix_token.kind != "NAME" or ":" in prefix_token.value:
        return None
    if not lexer.next().is_symbol("="):
        return None
    uri_token = lexer.next()
    if uri_token.kind != "STRING":
        return None
    location: Optional[str] = None
    token = lexer.next()
    if token.is_name("at"):
        location_token = lexer.next()
        if location_token.kind != "STRING":
            return None
        location = location_token.value
        token = lexer.next()
    if not token.is_symbol(";"):
        return None

    function_token = lexer.next()
    if function_token.kind != "NAME" or ":" not in function_token.value:
        return None
    qname = function_token.value
    call_prefix, local = qname.split(":", 1)
    if call_prefix != prefix_token.value:
        return None
    if not lexer.next().is_symbol("("):
        return None

    arguments: list[AtomicValue] = []
    token = lexer.next()
    if not token.is_symbol(")"):
        while True:
            literal = _literal_value(token)
            if literal is None:
                return None
            arguments.append(literal)
            token = lexer.next()
            if token.is_symbol(")"):
                break
            if not token.is_symbol(","):
                return None
            token = lexer.next()

    if lexer.next().kind != "EOF":
        return None
    return PreparsedCall(
        module_prefix=prefix_token.value,
        module_uri=uri_token.value,
        location=location,
        function=qname,
        local_name=local,
        arguments=arguments,
    )


def _literal_value(token) -> Optional[AtomicValue]:
    from decimal import Decimal

    from repro.xdm.types import xs

    if token.kind == "STRING":
        return AtomicValue(token.value, xs.string)
    if token.kind == "INTEGER":
        return AtomicValue(int(token.value), xs.integer)
    if token.kind == "DECIMAL":
        return AtomicValue(Decimal(token.value), xs.decimal)
    if token.kind == "DOUBLE":
        return AtomicValue(float(token.value), xs.double)
    if token.kind == "NAME" and token.value in ("true", "false"):
        # true() / false() — handled by the caller for the parens; keep
        # the detector simple: reject (general path handles them).
        return None
    return None


class PreparedFunctionCache:
    """Plan cache keyed by (module uri, function, arity).

    ``execute`` runs a source query: if the pre-parser detects the
    prepared pattern and the module's function is known, the cached
    function plan is applied directly to the extracted constants —
    skipping query translation entirely; otherwise the provided
    fallback (full compile+run) is used.
    """

    def __init__(self, registry, evaluator=None) -> None:
        from repro.xquery.evaluator import Evaluator
        self.registry = registry
        self.evaluator = evaluator or Evaluator()
        self.hits = 0
        self.misses = 0

    def execute(self, source: str, make_context, fallback):
        """Run *source*; ``make_context()`` builds a DynamicContext for
        the fast path, ``fallback(source)`` handles general queries."""
        call = preparse(source)
        if call is not None:
            module = self.registry.by_namespace(call.module_uri)
            if module is not None:
                decl = module.get_function(call.local_name, call.arity)
                if decl is not None:
                    self.hits += 1
                    ctx = make_context()
                    args = [[value] for value in call.arguments]
                    return self.evaluator.call_user_function(decl, args, ctx)
        self.misses += 1
        return fallback(source)
