"""Engine profiles wrapping the XQuery evaluator."""

from __future__ import annotations

import time
from typing import Optional

from repro.xquery.evaluator import CompiledQuery
from repro.xquery.modules import ModuleRegistry


class Engine:
    """Base engine: compiles queries, optionally caching plans.

    Parameters
    ----------
    registry:
        Module registry resolving ``import module`` statements.
    plan_cache:
        Cache compiled queries by source text (prepared-query behaviour).
    function_cache:
        Remember which remote-callable functions already have a
        translated plan; the XRPC server consults this to decide whether
        to charge module-translation cost for a request (Table 2).
    bulk_rpc:
        Ship loop-lifted ``execute at`` calls as Bulk RPC messages.
    accelerator:
        Evaluate path steps set-at-a-time over the XPath-accelerator
        structural index (pre/size/level window scans with staircase
        pruning).  ``False`` falls back to the naive per-node axis
        walkers — the reference implementation, kept for ablations like
        ``bulk_rpc``.
    """

    name = "generic"

    def __init__(self, registry: Optional[ModuleRegistry] = None,
                 plan_cache: bool = True, function_cache: bool = True,
                 bulk_rpc: bool = True, optimize_flwor_joins: bool = True,
                 accelerator: bool = True) -> None:
        self.registry = registry or ModuleRegistry()
        self.plan_cache_enabled = plan_cache
        self.function_cache_enabled = function_cache
        self.bulk_rpc = bulk_rpc
        self.optimize_flwor_joins = optimize_flwor_joins
        self.accelerator = accelerator
        self._plan_cache: dict[str, CompiledQuery] = {}
        self._function_cache: set[tuple[str, str, int]] = set()
        # Wall-clock phase timers of the most recent compile (Table 3).
        self.last_compile_seconds = 0.0
        # Telemetry of the most recent execute_lifted call: which plan
        # ran ("lifted" | "interpreter") and, on fallback, the uniform
        # UnsupportedExpression message naming the offending AST node.
        self.last_plan: Optional[str] = None
        self.last_fallback_reason: Optional[str] = None

    def compile(self, source: str) -> CompiledQuery:
        if self.plan_cache_enabled and source in self._plan_cache:
            self.last_compile_seconds = 0.0
            return self._plan_cache[source]
        started = time.perf_counter()
        compiled = CompiledQuery(source, self.registry)
        self.last_compile_seconds = time.perf_counter() - started
        if self.plan_cache_enabled:
            self._plan_cache[source] = compiled
        return compiled

    # -- loop-lifted execution with interpreter fallback --------------------

    def execute_lifted(self, source: str, doc_resolver=None,
                       variables: Optional[dict] = None,
                       context_item=None, dispatch=None,
                       xrpc_handler=None) -> list:
        """Run a query through the Pathfinder loop-lifting pipeline,
        falling back to the tree interpreter when it is outside the
        lifted core.

        This is the fallback plumbing the relational pushdown needs:
        the attempt and its outcome are recorded in ``last_plan`` and
        ``last_fallback_reason`` (the ``UnsupportedExpression`` message,
        which uniformly names the offending AST node type), so callers
        and tests can assert *why* a query wasn't lifted.  The compiled
        query comes from the shared plan cache, and the lifted pipeline
        statically preflights the AST, so statically-unsupported queries
        fall back before any ``execute at`` ships; a *dynamic* bail
        (runtime positional predicate, non-node path item) can still
        occur mid-plan, so route queries with updating remote calls to
        the interpreter directly if that matters.

        ``dispatch`` serves the lifted plan's Bulk RPC shipping;
        ``xrpc_handler`` serves ``execute at`` on the interpreter
        fallback (the two layers' contracts differ, see
        :class:`~repro.xquery.context.RemoteCall`).
        """
        from repro.pathfinder import LoopLiftedQuery, UnsupportedExpression

        self.last_plan = None
        self.last_fallback_reason = None
        compiled = self.compile(source)
        try:
            query = LoopLiftedQuery(source, dispatch=dispatch,
                                    doc_resolver=doc_resolver,
                                    compiled=compiled)
            result = query.run(variables=variables,
                               context_item=context_item)
            self.last_plan = "lifted"
            return result
        except UnsupportedExpression as unsupported:
            self.last_plan = "interpreter"
            self.last_fallback_reason = str(unsupported)
        result, pul = compiled.execute(
            doc_resolver=doc_resolver, variables=variables,
            context_item=context_item, xrpc_handler=xrpc_handler,
            optimize_joins=self.optimize_flwor_joins,
            accelerator=self.accelerator)
        if pul:
            from repro.xquf.pul import apply_updates
            apply_updates(pul)
        return result

    # -- function cache (server-side plan cache per remote function) -------

    def function_cache_lookup(self, key: tuple[str, str, int]) -> bool:
        return self.function_cache_enabled and key in self._function_cache

    def function_cache_store(self, key: tuple[str, str, int]) -> None:
        if self.function_cache_enabled:
            self._function_cache.add(key)

    def clear_caches(self) -> None:
        self._plan_cache.clear()
        self._function_cache.clear()


class MonetEngine(Engine):
    """MonetDB/XQuery profile: function cache + Bulk RPC by default."""

    name = "monetdb-xquery"

    def __init__(self, registry: Optional[ModuleRegistry] = None,
                 function_cache: bool = True, bulk_rpc: bool = True,
                 accelerator: bool = True) -> None:
        super().__init__(registry, plan_cache=function_cache,
                         function_cache=function_cache, bulk_rpc=bulk_rpc,
                         accelerator=accelerator)


class TreeEngine(Engine):
    """Saxon profile: recompiles everything, no native bulk shipping."""

    name = "saxon-like"

    def __init__(self, registry: Optional[ModuleRegistry] = None,
                 accelerator: bool = True) -> None:
        # No FLWOR join optimization: the paper-era Saxon only detected
        # the predicate-index join (Table 3's getPerson), which both
        # engines get via the evaluator's equality-predicate index.
        # (Saxon's TinyTree gives it fast axes of its own, so the
        # structural accelerator stays on by default here too.)
        super().__init__(registry, plan_cache=False, function_cache=False,
                         bulk_rpc=False, optimize_flwor_joins=False,
                         accelerator=accelerator)
