"""Engine profiles wrapping the XQuery evaluator."""

from __future__ import annotations

import threading
import time
from collections import OrderedDict
from dataclasses import dataclass
from typing import Optional

from repro.analysis import QueryProperties, analyze_compiled
from repro.xquery.context import ExecutionContext
from repro.xquery.evaluator import CompiledQuery
from repro.xquery.modules import ModuleRegistry

#: Default bound of the per-engine plan cache.  Large enough that any of
#: the paper's workloads fit entirely; small enough that a multi-user
#: peer serving millions of distinct ad-hoc query texts cannot grow the
#: cache without bound.
DEFAULT_PLAN_CACHE_SIZE = 256


@dataclass
class Explain:
    """Telemetry of one execution through the unified entry point.

    ``plan`` is the pipeline that produced the result (``"lifted"`` for
    the Pathfinder loop-lifted relational plan, ``"interpreter"`` for
    the tree-walking fallback); ``fallback_reason`` is the
    ``UnsupportedExpression`` message — uniformly naming the offending
    AST node type — when a lifted attempt bailed, and ``None`` when the
    plan ran lifted or lifting was disabled by the caller.
    ``fallback_code`` is the matching stable code (see
    :class:`~repro.pathfinder.compiler.UnsupportedExpression`) — the
    key the engine's per-reason fallback histogram counts under.

    ``reencodes_full`` / ``reencodes_subtree`` / ``gap_respreads`` /
    ``index_patches`` are *this execution's* deltas of the
    :data:`~repro.xdm.structural.ENCODING_STATS` counters (taken
    against the executing thread's totals, so concurrent executions
    never attribute each other's work) — what the update path actually
    cost: a splice that stayed on the O(change) fast path counts under
    ``reencodes_subtree`` + ``index_patches``, while ``reencodes_full``
    flags the whole-tree fallback.

    ``documents_parsed`` / ``parse_fallbacks`` are the same per-thread
    delta discipline over :data:`~repro.xml.stats.PARSE_STATS`: how many
    documents the parse frontend built during this execution (fn:doc on
    cold URIs, shipped Bulk RPC messages) and how many of those fell
    back from expat to the pure-python reference parser.

    ``postings_built`` / ``postings_patched`` / ``search_queries`` /
    ``postings_hits`` are the keyword-search deltas
    (:data:`~repro.search.stats.SEARCH_STATS`): term postings
    materialized by full :class:`~repro.search.index.TermIndex` builds
    versus maintained incrementally by the PUL hooks, posting-list
    query plans served (lifted ``contains`` prefilters), and the
    results they surfaced.

    ``net_retries`` / ``net_giveups`` / ``net_breaker_opens`` /
    ``net_breaker_fast_fails`` / ``net_deadline_expired`` /
    ``net_degraded_peers`` are the fault-tolerance deltas
    (:data:`~repro.net.retry.NET_STATS`): what the retry/backoff,
    circuit-breaker, deadline, and partial-results machinery did while
    this execution's exchanges were in flight.
    """

    plan: str
    fallback_reason: Optional[str]
    compile_seconds: float
    execute_seconds: float
    cache_hit: bool
    fallback_code: Optional[str] = None
    reencodes_full: int = 0
    reencodes_subtree: int = 0
    gap_respreads: int = 0
    index_patches: int = 0
    documents_parsed: int = 0
    parse_fallbacks: int = 0
    postings_built: int = 0
    postings_patched: int = 0
    search_queries: int = 0
    postings_hits: int = 0
    net_retries: int = 0
    net_giveups: int = 0
    net_breaker_opens: int = 0
    net_breaker_fast_fails: int = 0
    net_deadline_expired: int = 0
    net_degraded_peers: int = 0
    #: The prepare-time static analysis report (liftability prediction,
    #: updating-ness, site profile, semantic diagnostics) — memoized on
    #: the compiled query, so a plan-cache hit reattaches it for free.
    analysis: Optional[QueryProperties] = None

    def render(self) -> str:
        """Human-readable one-paragraph form (the CLI's --explain)."""
        lines = [f"plan: {self.plan}"]
        if self.fallback_reason:
            code = f" [{self.fallback_code}]" if self.fallback_code else ""
            lines.append(f"fallback: {self.fallback_reason}{code}")
        if self.analysis is not None:
            lines.append(self.analysis.render())
        lines.append(f"plan cache: {'hit' if self.cache_hit else 'miss'}")
        lines.append(f"compile: {self.compile_seconds * 1000.0:.3f} ms")
        lines.append(f"execute: {self.execute_seconds * 1000.0:.3f} ms")
        if (self.reencodes_full or self.reencodes_subtree
                or self.gap_respreads or self.index_patches):
            lines.append(
                "updates: "
                f"reencode full={self.reencodes_full} "
                f"subtree={self.reencodes_subtree} "
                f"respreads={self.gap_respreads} "
                f"index patches={self.index_patches}")
        if self.documents_parsed or self.parse_fallbacks:
            lines.append(
                "parse: "
                f"documents={self.documents_parsed} "
                f"fallbacks={self.parse_fallbacks}")
        if (self.postings_built or self.postings_patched
                or self.search_queries or self.postings_hits):
            lines.append(
                "search: "
                f"postings built={self.postings_built} "
                f"patched={self.postings_patched} "
                f"queries={self.search_queries} "
                f"hits={self.postings_hits}")
        if (self.net_retries or self.net_giveups or self.net_breaker_opens
                or self.net_breaker_fast_fails or self.net_deadline_expired
                or self.net_degraded_peers):
            lines.append(
                "net: "
                f"retries={self.net_retries} "
                f"giveups={self.net_giveups} "
                f"breaker opens={self.net_breaker_opens} "
                f"fast fails={self.net_breaker_fast_fails} "
                f"deadline expired={self.net_deadline_expired} "
                f"degraded peers={self.net_degraded_peers}")
        return "\n".join(lines)


class Engine:
    """Base engine: compiles queries, optionally caching plans.

    ``execute`` is the single query-service surface: compile through the
    (bounded, thread-safe) plan cache, try the loop-lifted relational
    plan, fall back to the tree interpreter with recorded telemetry.
    :class:`~repro.session.Database` and :class:`~repro.rpc.XRPCPeer`
    both route through it.

    Parameters
    ----------
    registry:
        Module registry resolving ``import module`` statements.
    plan_cache:
        Cache compiled queries by source text (prepared-query behaviour).
    plan_cache_size:
        Bound of the plan cache (LRU eviction); ``None`` means unbounded.
    function_cache:
        Remember which remote-callable functions already have a
        translated plan; the XRPC server consults this to decide whether
        to charge module-translation cost for a request (Table 2).
    bulk_rpc:
        Ship loop-lifted ``execute at`` calls as Bulk RPC messages.
    accelerator:
        Evaluate path steps set-at-a-time over the XPath-accelerator
        structural index (pre/size/level window scans with staircase
        pruning).  ``False`` falls back to the naive per-node axis
        walkers — the reference implementation, kept for ablations like
        ``bulk_rpc``.
    """

    name = "generic"

    def __init__(self, registry: Optional[ModuleRegistry] = None,
                 plan_cache: bool = True, function_cache: bool = True,
                 bulk_rpc: bool = True, optimize_flwor_joins: bool = True,
                 accelerator: bool = True,
                 plan_cache_size: Optional[int] = DEFAULT_PLAN_CACHE_SIZE,
                 ) -> None:
        self.registry = registry or ModuleRegistry()
        self.plan_cache_enabled = plan_cache
        self.plan_cache_size = plan_cache_size
        self.function_cache_enabled = function_cache
        self.bulk_rpc = bulk_rpc
        self.optimize_flwor_joins = optimize_flwor_joins
        self.accelerator = accelerator
        self._plan_cache: OrderedDict[str, CompiledQuery] = OrderedDict()
        self._function_cache: set[tuple[str, str, int]] = set()
        # compile() and the function cache may be hit concurrently (the
        # HTTP daemon is threaded; Database.prepare is documented
        # thread-safe), so cache mutation is serialized.  Parsing itself
        # runs outside the lock — concurrent misses on the same source
        # compile twice and the last insert wins, which is harmless.
        self._cache_lock = threading.Lock()
        self.plan_cache_hits = 0
        self.plan_cache_misses = 0
        # Wall-clock phase timers of the most recent compile (Table 3).
        self.last_compile_seconds = 0.0
        self.last_compile_cache_hit = False
        # Telemetry of the most recent execute call: which plan ran
        # ("lifted" | "interpreter") and, on fallback, the uniform
        # UnsupportedExpression message naming the offending AST node.
        self.last_plan: Optional[str] = None
        self.last_fallback_reason: Optional[str] = None
        self.last_fallback_code: Optional[str] = None
        # Per-reason fallback histogram (stable UnsupportedExpression
        # codes -> count), so retired fallbacks are visible one by one.
        self._fallback_counts: dict[str, int] = {}

    def compile(self, source: str) -> CompiledQuery:
        compiled, _, _ = self.compile_with_stats(source)
        return compiled

    def compile_with_stats(self, source: str,
                           ) -> tuple[CompiledQuery, float, bool]:
        """Compile through the plan cache; returns
        ``(compiled, compile_seconds, cache_hit)``.

        The stats come back as return values so concurrent compiles
        cannot report each other's numbers — the ``last_compile_*``
        attributes are kept for legacy callers but are last-writer-wins
        under concurrency.
        """
        if self.plan_cache_enabled:
            with self._cache_lock:
                cached = self._plan_cache.get(source)
                if cached is not None:
                    self._plan_cache.move_to_end(source)
                    self.plan_cache_hits += 1
                    self.last_compile_seconds = 0.0
                    self.last_compile_cache_hit = True
                    return cached, 0.0, True
                self.plan_cache_misses += 1
        started = time.perf_counter()
        compiled = CompiledQuery(source, self.registry)
        compile_seconds = time.perf_counter() - started
        self.last_compile_seconds = compile_seconds
        self.last_compile_cache_hit = False
        if self.plan_cache_enabled:
            with self._cache_lock:
                self._plan_cache[source] = compiled
                self._plan_cache.move_to_end(source)
                if self.plan_cache_size is not None:
                    while len(self._plan_cache) > self.plan_cache_size:
                        self._plan_cache.popitem(last=False)
        return compiled, compile_seconds, False

    # -- the unified prepare/execute surface --------------------------------

    def execute(self, source: str,
                context: Optional[ExecutionContext] = None,
                ) -> tuple[list, Explain]:
        """Run a query through the lifted pipeline with interpreter
        fallback; returns ``(result, Explain)``.

        The compiled query comes from the shared plan cache, and the
        lifted pipeline statically preflights the AST, so
        statically-unsupported queries fall back before any ``execute
        at`` ships; a *dynamic* bail (runtime positional predicate,
        non-node path item) can still occur mid-plan, so route queries
        with updating remote calls to the interpreter directly
        (``context.try_lifted = False``) if that matters.

        ``context.dispatch`` serves the lifted plan's Bulk RPC shipping;
        ``context.xrpc_handler`` serves ``execute at`` on the
        interpreter fallback (the two layers' contracts differ, see
        :class:`~repro.xquery.context.RemoteCall`).  The attempt and its
        outcome are recorded in ``last_plan`` / ``last_fallback_reason``
        and returned as the :class:`Explain`.
        """
        from repro.net.retry import NET_STATS
        from repro.search.stats import SEARCH_STATS
        from repro.xdm.structural import ENCODING_STATS
        from repro.xml.stats import PARSE_STATS

        # A missing context inherits the engine's own configuration
        # (the ablation toggles execute_lifted always honored).
        options = context if context is not None else ExecutionContext(
            accelerator=self.accelerator,
            optimize_joins=self.optimize_flwor_joins)
        self.last_plan = None
        self.last_fallback_reason = None
        self.last_fallback_code = None
        compiled, compile_seconds, cache_hit = self.compile_with_stats(source)
        analysis = self.analyze(compiled, options)
        started = time.perf_counter()
        # Thread-local basis: concurrent executions must not attribute
        # each other's update costs (apply_updates runs synchronously on
        # this thread, so its bumps land in this thread's counters).
        encoding_before = ENCODING_STATS.snapshot_local()
        parse_before = PARSE_STATS.snapshot_local()
        search_before = SEARCH_STATS.snapshot_local()
        net_before = NET_STATS.snapshot_local()

        def update_deltas() -> dict:
            after = ENCODING_STATS.snapshot_local()
            deltas = {
                field: after[field] - encoding_before[field]
                for field in ("reencodes_full", "reencodes_subtree",
                              "gap_respreads", "index_patches")}
            parse_after = PARSE_STATS.snapshot_local()
            deltas["documents_parsed"] = (
                parse_after["documents_expat"]
                + parse_after["documents_python"]
                - parse_before["documents_expat"]
                - parse_before["documents_python"])
            deltas["parse_fallbacks"] = (
                parse_after["fallbacks_to_python"]
                - parse_before["fallbacks_to_python"])
            search_after = SEARCH_STATS.snapshot_local()
            for field in ("postings_built", "postings_patched",
                          "search_queries", "postings_hits"):
                deltas[field] = search_after[field] - search_before[field]
            net_after = NET_STATS.snapshot_local()
            for field, source in (("net_retries", "retries"),
                                  ("net_giveups", "retry_giveups"),
                                  ("net_breaker_opens", "breaker_opens"),
                                  ("net_breaker_fast_fails",
                                   "breaker_fast_fails"),
                                  ("net_deadline_expired",
                                   "deadline_expired"),
                                  ("net_degraded_peers", "degraded_peers")):
                deltas[field] = net_after[source] - net_before[source]
            return deltas

        fallback_reason = None
        fallback_code = None
        if options.try_lifted:
            result, fallback_reason, fallback_code = self.attempt_lifted(
                source, compiled, options)
            if fallback_reason is None:
                self.record_plan("lifted", None)
                return result, Explain(
                    plan="lifted", fallback_reason=None,
                    compile_seconds=compile_seconds,
                    execute_seconds=time.perf_counter() - started,
                    cache_hit=cache_hit, analysis=analysis,
                    **update_deltas())
        self.record_plan("interpreter", fallback_reason, fallback_code)
        result, pul = compiled.run(options)
        if pul and options.apply_updates:
            from repro.xquf.pul import apply_updates
            apply_updates(pul, incremental=options.incremental_updates)
        return result, Explain(
            plan="interpreter", fallback_reason=fallback_reason,
            compile_seconds=compile_seconds,
            execute_seconds=time.perf_counter() - started,
            cache_hit=cache_hit, fallback_code=fallback_code,
            analysis=analysis, **update_deltas())

    def analyze(self, compiled: CompiledQuery,
                context: Optional[ExecutionContext] = None,
                ) -> QueryProperties:
        """The static analysis report for *compiled* under *context*'s
        capabilities — the same call :meth:`execute` makes, so callers
        (the peer's router, ``repro check``) see exactly the properties
        execution will act on.  Memoized on the compiled query."""
        options = context if context is not None else ExecutionContext(
            accelerator=self.accelerator,
            optimize_joins=self.optimize_flwor_joins)
        return analyze_compiled(
            compiled,
            has_dispatch=options.dispatch is not None,
            has_doc_resolver=options.doc_resolver is not None,
            variables=set(options.variables or {}),
            context_item=options.context_item is not None)

    def attempt_lifted(self, source: str, compiled: CompiledQuery,
                       context: ExecutionContext,
                       ) -> tuple[Optional[list], Optional[str], Optional[str]]:
        """One lifted-plan attempt: ``(result, None, None)`` on success,
        ``(None, fallback_reason, fallback_code)`` when the query is
        outside the lifted core — shared by :meth:`execute` and the
        peer's originating path, so fallback handling cannot drift
        between them."""
        from repro.pathfinder import LoopLiftedQuery, UnsupportedExpression

        try:
            query = LoopLiftedQuery(source, compiled=compiled,
                                    context=context)
            return query.run(context=context), None, None
        except UnsupportedExpression as unsupported:
            return None, str(unsupported), unsupported.code

    def record_plan(self, plan: str, fallback_reason: Optional[str],
                    fallback_code: Optional[str] = None) -> None:
        """Record the most recent plan choice (legacy last-* telemetry;
        the returned :class:`Explain` is the race-free surface) and bump
        the per-code fallback histogram when an attempt bailed."""
        self.last_plan = plan
        self.last_fallback_reason = fallback_reason
        self.last_fallback_code = fallback_code
        if plan == "interpreter" and fallback_reason is not None:
            code = fallback_code or "uncoded"
            with self._cache_lock:
                self._fallback_counts[code] = \
                    self._fallback_counts.get(code, 0) + 1

    # -- deprecated keyword-style entry point -------------------------------

    def execute_lifted(self, source: str, doc_resolver=None,
                       variables: Optional[dict] = None,
                       context_item=None, dispatch=None,
                       xrpc_handler=None) -> list:
        """Deprecated shim over :meth:`execute` (the pre-session-API
        signature); returns the bare result sequence."""
        result, _ = self.execute(source, ExecutionContext(
            doc_resolver=doc_resolver, variables=variables,
            context_item=context_item, dispatch=dispatch,
            xrpc_handler=xrpc_handler,
            optimize_joins=self.optimize_flwor_joins,
            accelerator=self.accelerator))
        return result

    # -- function cache (server-side plan cache per remote function) -------

    def function_cache_lookup(self, key: tuple[str, str, int]) -> bool:
        with self._cache_lock:
            return self.function_cache_enabled and key in self._function_cache

    def function_cache_store(self, key: tuple[str, str, int]) -> None:
        if self.function_cache_enabled:
            with self._cache_lock:
                self._function_cache.add(key)

    def clear_caches(self) -> None:
        with self._cache_lock:
            self._plan_cache.clear()
            self._function_cache.clear()

    def fallback_stats(self) -> dict:
        """Per-reason fallback histogram: stable code -> count of lifted
        attempts that bailed with it since engine construction."""
        with self._cache_lock:
            return dict(self._fallback_counts)

    def cache_stats(self) -> dict:
        """Plan/function cache counters (surfaced by Database.stats())."""
        with self._cache_lock:
            return {
                "plan_cache_hits": self.plan_cache_hits,
                "plan_cache_misses": self.plan_cache_misses,
                "plan_cache_entries": len(self._plan_cache),
                "plan_cache_size": self.plan_cache_size,
                "function_cache_entries": len(self._function_cache),
            }


class MonetEngine(Engine):
    """MonetDB/XQuery profile: function cache + Bulk RPC by default."""

    name = "monetdb-xquery"

    def __init__(self, registry: Optional[ModuleRegistry] = None,
                 function_cache: bool = True, bulk_rpc: bool = True,
                 accelerator: bool = True) -> None:
        super().__init__(registry, plan_cache=function_cache,
                         function_cache=function_cache, bulk_rpc=bulk_rpc,
                         accelerator=accelerator)


class TreeEngine(Engine):
    """Saxon profile: recompiles everything, no native bulk shipping."""

    name = "saxon-like"

    def __init__(self, registry: Optional[ModuleRegistry] = None,
                 accelerator: bool = True) -> None:
        # No FLWOR join optimization: the paper-era Saxon only detected
        # the predicate-index join (Table 3's getPerson), which both
        # engines get via the evaluator's equality-predicate index.
        # (Saxon's TinyTree gives it fast axes of its own, so the
        # structural accelerator stays on by default here too.)
        super().__init__(registry, plan_cache=False, function_cache=False,
                         bulk_rpc=False, optimize_flwor_joins=False,
                         accelerator=accelerator)
