"""Engine profiles: the two XQuery processors of the paper's experiments.

* :class:`MonetEngine` — models MonetDB/XQuery: compiled query plans are
  cached (the *function cache*, section 3.3), and ``execute at`` calls
  inside loops are shipped as **Bulk RPC** (loop-lifting, section 3.2).
* :class:`TreeEngine` — models Saxon: a tree-walking engine with no plan
  cache (every request pays compilation) and no native XRPC support; it
  participates in distributed queries only through the XRPC wrapper
  (section 4).

Both run the same XQuery evaluator underneath — the paper's point is
that XRPC is engine-agnostic; what differs is caching, bulk behaviour
and cost profile.
"""

from repro.engine.base import Engine, MonetEngine, TreeEngine

__all__ = ["Engine", "MonetEngine", "TreeEngine"]
