"""Common error hierarchy for the XRPC reproduction.

XQuery defines a structured error taxonomy (``err:XPST0003`` for static
syntax errors, ``err:XPDY0002`` for dynamic context errors, ...).  We keep
the same code strings so error behaviour is recognisable to XQuery users,
and add XRPC-specific codes for protocol-level faults.
"""

from __future__ import annotations


class XRPCReproError(Exception):
    """Base class for every error raised by this library."""


class XQueryError(XRPCReproError):
    """An XQuery static, dynamic, or type error with a W3C-style code.

    Parameters
    ----------
    code:
        W3C error code such as ``"XPST0003"`` (without the ``err:`` prefix).
    message:
        Human-readable description.
    line, column:
        Optional 1-based source location.  When provided the rendered
        message carries a uniform ``(at line:column)`` suffix and the
        attributes stay available for structured consumers (the CLI
        ``check`` linter, editor integrations).
    """

    def __init__(self, code: str, message: str,
                 line: int | None = None,
                 column: int | None = None) -> None:
        self.code = code
        self.line = line
        self.column = column
        if line is not None and column is not None:
            message = f"{message} (at {line}:{column})"
        super().__init__(f"[{code}] {message}")


class StaticError(XQueryError):
    """Error detected during parsing / static analysis (XPST*)."""


class DynamicError(XQueryError):
    """Error raised during evaluation (XPDY*, FO*)."""


class TypeError_(XQueryError):
    """XQuery type error (XPTY*).

    Named with a trailing underscore to avoid shadowing the built-in.
    """


class UpdateError(XQueryError):
    """XQuery Update Facility error (XUST*, XUDY*)."""


class XRPCFault(XRPCReproError):
    """A SOAP Fault returned by (or raised at) an XRPC peer.

    Mirrors the paper's error handling: any remote error immediately stops
    execution and surfaces as a run-time error at the originating site.

    Parameters
    ----------
    fault_code:
        SOAP fault code, e.g. ``"env:Sender"`` or ``"env:Receiver"``.
    reason:
        Human-readable fault reason text.
    """

    def __init__(self, fault_code: str, reason: str) -> None:
        self.fault_code = fault_code
        self.reason = reason
        super().__init__(f"{fault_code}: {reason}")


class TransportError(XRPCReproError):
    """Failure at the network transport layer (peer unreachable, etc.)."""


class IsolationError(XRPCFault):
    """Raised when a request references an expired or unknown queryID."""

    def __init__(self, reason: str) -> None:
        super().__init__("env:Sender", reason)


class TransactionError(XRPCReproError):
    """2PC / WS-AtomicTransaction protocol failure (conflict, abort, ...)."""
