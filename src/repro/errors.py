"""Common error hierarchy for the XRPC reproduction.

XQuery defines a structured error taxonomy (``err:XPST0003`` for static
syntax errors, ``err:XPDY0002`` for dynamic context errors, ...).  We keep
the same code strings so error behaviour is recognisable to XQuery users,
and add XRPC-specific codes for protocol-level faults.
"""

from __future__ import annotations


class XRPCReproError(Exception):
    """Base class for every error raised by this library."""


class XQueryError(XRPCReproError):
    """An XQuery static, dynamic, or type error with a W3C-style code.

    Parameters
    ----------
    code:
        W3C error code such as ``"XPST0003"`` (without the ``err:`` prefix).
    message:
        Human-readable description.
    line, column:
        Optional 1-based source location.  When provided the rendered
        message carries a uniform ``(at line:column)`` suffix and the
        attributes stay available for structured consumers (the CLI
        ``check`` linter, editor integrations).
    """

    def __init__(self, code: str, message: str,
                 line: int | None = None,
                 column: int | None = None) -> None:
        self.code = code
        self.line = line
        self.column = column
        if line is not None and column is not None:
            message = f"{message} (at {line}:{column})"
        super().__init__(f"[{code}] {message}")


class StaticError(XQueryError):
    """Error detected during parsing / static analysis (XPST*)."""


class DynamicError(XQueryError):
    """Error raised during evaluation (XPDY*, FO*)."""


class TypeError_(XQueryError):
    """XQuery type error (XPTY*).

    Named with a trailing underscore to avoid shadowing the built-in.
    """


class UpdateError(XQueryError):
    """XQuery Update Facility error (XUST*, XUDY*)."""


class XRPCFault(XRPCReproError):
    """A SOAP Fault returned by (or raised at) an XRPC peer.

    Mirrors the paper's error handling: any remote error immediately stops
    execution and surfaces as a run-time error at the originating site.

    Parameters
    ----------
    fault_code:
        SOAP fault code, e.g. ``"env:Sender"`` or ``"env:Receiver"``.
    reason:
        Human-readable fault reason text.
    """

    def __init__(self, fault_code: str, reason: str) -> None:
        self.fault_code = fault_code
        self.reason = reason
        super().__init__(f"{fault_code}: {reason}")


class TransportError(XRPCReproError):
    """Failure at the network transport layer (peer unreachable, etc.).

    The fault-tolerance layer (:mod:`repro.net.retry`) classifies
    transport failures through the subclasses below; a bare
    ``TransportError`` is conservatively treated like a failure that may
    have reached the peer (retried only for retry-safe exchanges).
    """


class RetryableTransportError(TransportError):
    """A transient transport failure that a retry may cure.

    ``request_sent`` distinguishes the two halves of the retry matrix:

    * ``False`` — the request never reached the peer (connect refused,
      pool closed, dropped on the wire before delivery): always safe to
      retry, even for updating calls.
    * ``True`` — the request may have been processed and the failure hit
      on the way back (connection reset mid-response, torn/truncated or
      otherwise malformed reply, stale duplicated response): retried
      only for retry-safe (non-updating) exchanges, since the peer may
      already have applied the call.
    """

    def __init__(self, message: str, request_sent: bool = False) -> None:
        self.request_sent = request_sent
        super().__init__(message)


class FatalTransportError(TransportError):
    """A transport failure no retry can cure (misconfigured endpoint,
    unresolvable peer, non-SOAP error body from a proxy/404 page)."""


class CircuitOpenError(FatalTransportError):
    """Fail-fast refusal: the destination's circuit breaker is open.

    Raised *instead of* attempting an exchange while a peer is deemed
    dead; clears once the breaker's cooldown elapses and a half-open
    probe succeeds.
    """

    def __init__(self, destination: str, retry_after: float) -> None:
        self.destination = destination
        self.retry_after = retry_after
        super().__init__(
            f"circuit breaker open for {destination!r} "
            f"(retry after {retry_after:.3g}s)")


class DeadlineExceeded(TransportError):
    """The per-query deadline budget ran out before the work completed."""


class IsolationError(XRPCFault):
    """Raised when a request references an expired or unknown queryID."""

    def __init__(self, reason: str) -> None:
        super().__init__("env:Sender", reason)


class TransactionError(XRPCReproError):
    """2PC / WS-AtomicTransaction protocol failure (conflict, abort, ...)."""
