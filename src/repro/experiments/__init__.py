"""Experiment harnesses regenerating every evaluation artifact.

========  ==============================================================
T2        Table 2 — bulk vs one-at-a-time RPC × function cache (echoVoid)
T3        Table 3 — Saxon-profile latency via the XRPC wrapper
T4        Table 4 — Q7 under four distribution strategies
TP        section 3.3 prose — request/response throughput
F1        Figures 1/2 — loop-lifted Bulk RPC translation (correctness)
========  ==============================================================

Each experiment returns structured rows and can render the same table
the paper prints; ``python -m repro.experiments`` runs them all.
"""

from repro.experiments.table2 import Table2Experiment, Table2Row
from repro.experiments.table3 import Table3Experiment, Table3Row
from repro.experiments.table4 import Table4Experiment, Table4Row
from repro.experiments.throughput import ThroughputExperiment, ThroughputRow

__all__ = [
    "Table2Experiment",
    "Table2Row",
    "Table3Experiment",
    "Table3Row",
    "Table4Experiment",
    "Table4Row",
    "ThroughputExperiment",
    "ThroughputRow",
]
