"""Table 3 — Saxon-profile latency via the XRPC wrapper (section 4).

The wrapped TreeEngine (Saxon stand-in) has no plan cache, so its
latency decomposes into *compile* (query translation — constant in the
number of calls), *treebuild* (parsing the stored request document —
grows with request size) and *exec* (running the generated query).

The paper's headline observations, which this harness must reproduce in
shape:

* echoVoid: 1000 calls cost ~2x one call in total, not 1000x;
* getPerson: bulk turns a per-call selection into a join (the engine
  builds a hash index), so exec grows only a few x for 1000 calls.

Network cost is excluded, as in the paper ("we focus here on the
internal Saxon timings ... and disregard network communication cost").
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.engine import TreeEngine
from repro.soap import XRPCRequest, build_request, parse_response
from repro.workloads.modules import GETPERSON_MODULE, GETPERSON_MODULE_LOCATION
from repro.workloads.xmark import XMarkConfig, generate_persons
from repro.wrapper import XRPCWrapper
from repro.xdm.atomic import string


@dataclass
class Table3Row:
    function: str        # "echoVoid" | "getPerson"
    calls: int           # $x
    total_ms: float
    compile_ms: float
    treebuild_ms: float
    exec_ms: float


class Table3Experiment:
    """Regenerates Table 3 against a wrapped Saxon-profile engine."""

    def __init__(self, calls: tuple[int, ...] = (1, 1000),
                 xmark: XMarkConfig | None = None) -> None:
        self.calls = calls
        # A person-heavy document: big enough that the single-call
        # selection cost is visible against per-call marshaling overhead
        # (the paper used a 50 MB XMark document).
        self.xmark = xmark or XMarkConfig(persons=5000)

    def _make_wrapper(self) -> XRPCWrapper:
        wrapper = XRPCWrapper(engine=TreeEngine())
        wrapper.engine.registry.register_source(
            GETPERSON_MODULE, location=GETPERSON_MODULE_LOCATION)
        wrapper.register_document("auctions.xml",
                                  generate_persons(self.xmark))
        return wrapper

    def _request(self, method: str, calls: int) -> str:
        if method == "echoVoid":
            request = XRPCRequest(module="functions", method="echoVoid",
                                  arity=0,
                                  location=GETPERSON_MODULE_LOCATION)
            for _ in range(calls):
                request.add_call([])
        else:
            request = XRPCRequest(module="functions", method="getPerson",
                                  arity=2,
                                  location=GETPERSON_MODULE_LOCATION)
            for index in range(calls):
                pid = f"person{index % self.xmark.persons}"
                request.add_call([[string("auctions.xml")], [string(pid)]])
        return build_request(request)

    def measure(self, method: str, calls: int) -> Table3Row:
        wrapper = self._make_wrapper()
        payload = self._request(method, calls)
        response = parse_response(wrapper.handle(payload))
        assert len(response.results) == calls
        timings = wrapper.last_timings
        return Table3Row(
            function=method,
            calls=calls,
            total_ms=timings.total_seconds * 1000.0,
            compile_ms=timings.compile_seconds * 1000.0,
            treebuild_ms=timings.treebuild_seconds * 1000.0,
            exec_ms=timings.exec_seconds * 1000.0,
        )

    def run(self) -> list[Table3Row]:
        rows = []
        for method in ("echoVoid", "getPerson"):
            for calls in self.calls:
                rows.append(self.measure(method, calls))
        return rows

    @staticmethod
    def render(rows: list[Table3Row]) -> str:
        lines = [
            "Table 3: Saxon-profile latency via the XRPC wrapper (msec)",
            "",
            f"{'':24}{'total':>10}{'compile':>10}{'treebuild':>11}{'exec':>10}",
        ]
        for row in rows:
            label = f"{row.function} $x={row.calls}"
            lines.append(
                f"{label:<24}{row.total_ms:>10.1f}{row.compile_ms:>10.1f}"
                f"{row.treebuild_ms:>11.1f}{row.exec_ms:>10.1f}")
        return "\n".join(lines)
