"""Table 4 — distributed execution of Q7 (section 5).

Setup mirrors the paper: peer A runs the MonetDB-profile engine with
``persons.xml``; peer B runs a Saxon-profile engine behind the XRPC
wrapper with ``auctions.xml``; all communication flows over XRPC (the
wrapper turns incoming requests into XQuery on B).  Four strategies are
timed:

* data shipping — A pulls auctions.xml whole;
* predicate push-down — ``b:Q_B1()`` ships only closed auctions;
* execution relocation — ``b:Q_B2()`` moves the whole join to B (which
  in turn fetches persons.xml from A);
* distributed semi-join — ``b:Q_B3($pid)`` probes per person; Bulk RPC
  ships all probes in one message.

Times are wall-clock; the remote share ("Saxon Time") is measured by
the wrapper's accumulated busy time plus communication, matching the
paper's "measured by subtracting MonetDB time from total".
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.engine import MonetEngine, TreeEngine
from repro.net import SimulatedNetwork
from repro.rpc import XRPCPeer
from repro.strategies import STRATEGY_NAMES, run_strategy
from repro.workloads.modules import FUNCTIONS_B_LOCATION, FUNCTIONS_B_MODULE
from repro.workloads.xmark import XMarkConfig, generate_auctions, generate_persons
from repro.wrapper import XRPCWrapper


@dataclass
class Table4Row:
    strategy: str
    total_ms: float
    local_ms: float      # "MonetDB Time"
    remote_ms: float     # "Saxon Time" (includes communication)
    results: int
    messages: int
    bytes_shipped: int


@dataclass
class EngineCostConstants:
    """Calibrated per-operation costs for the analytical ("modeled") mode.

    All constants come from rates the paper itself reports or implies:

    * protocol CPU: shredding 8 MB/s, serialization 14 MB/s (section 3.3);
    * Saxon: 178 ms compile per request, treebuild at 25 MB/s
      (Table 3: 1956 ms for the ~50 MB document), ~0.5 ms per wrapper
      call (Table 3: exec grows ~4 s for 1000 calls);
    * Saxon nested-loop join: ~43 µs per candidate pair (Table 4:
      53 s of Saxon time for 250x4875 pairs under relocation);
    * MonetDB relational hash join: ~10 µs per input row (Table 4:
      16.5 s MonetDB time for data shipping, dominated by the 50 MB
      shred; join share a few seconds over ~5000 rows at their scale);
    * network: 1 ms one-way latency per message, 1 Gb/s bandwidth.
    """

    shred_per_byte: float = 1.0 / 8e6
    serialize_per_byte: float = 1.0 / 14e6
    saxon_compile: float = 0.178
    saxon_treebuild_per_byte: float = 1.0 / 25e6
    saxon_per_call: float = 0.0005
    saxon_join_per_pair: float = 43e-6
    monet_join_per_row: float = 10e-6
    latency_per_message: float = 0.001
    bandwidth_per_byte: float = 1.0 / 125e6


class Table4Experiment:
    """Regenerates Table 4 (Q7 under four strategies).

    Two measurement modes:

    * ``mode="modeled"`` (default) — the strategies *really execute* over
      the simulated network (results verified, every byte/message/call
      counted), and times are computed from the measured volumes with
      :class:`EngineCostConstants`.  Deterministic; this is what the
      shape tests assert and what lands closest to the paper's numbers.
    * ``mode="measured"`` — wall/CPU time of this Python implementation.
      Useful as a reality check; absolute numbers depend on the host.
    """

    def __init__(self, xmark: XMarkConfig | None = None,
                 mode: str = "modeled",
                 constants: EngineCostConstants | None = None) -> None:
        self.xmark = xmark or XMarkConfig()
        if mode not in ("modeled", "measured"):
            raise ValueError("mode must be 'modeled' or 'measured'")
        self.mode = mode
        self.constants = constants or EngineCostConstants()

    def _build_site(self):
        network = SimulatedNetwork()
        peer_a = XRPCPeer("A", network, engine=MonetEngine())
        peer_a.registry.register_source(FUNCTIONS_B_MODULE,
                                        location=FUNCTIONS_B_LOCATION)
        peer_a.store.register("persons.xml", generate_persons(self.xmark))

        wrapper = XRPCWrapper(engine=TreeEngine(), transport=network,
                              host="B")
        wrapper.engine.registry.register_source(
            FUNCTIONS_B_MODULE, location=FUNCTIONS_B_LOCATION)
        wrapper.register_document("auctions.xml",
                                  generate_auctions(self.xmark))

        # B additionally answers plain document fetches (data shipping)
        # through a native peer endpoint sharing the wrapper's store —
        # in the paper this is Saxon's HTTP document service.
        doc_server = XRPCPeer("B", network, engine=MonetEngine())
        doc_server.store = wrapper.store
        doc_server.isolation._store = wrapper.store

        import time

        def routed_handle(payload: str) -> str:
            if "xrpc:request" in payload and 'module="functions_b"' in payload:
                started = time.process_time()
                response = wrapper.handle(payload)
                routed_handle.busy_seconds += time.process_time() - started
                return response
            started = time.process_time()
            response = doc_server.server.handle(payload)
            routed_handle.busy_seconds += time.process_time() - started
            return response

        routed_handle.busy_seconds = 0.0
        network.register_peer("B", routed_handle)
        return network, peer_a, wrapper, routed_handle

    def measure(self, strategy: str, repeats: int = 1) -> Table4Row:
        """One Table 4 row; with ``repeats`` > 1 in measured mode the best
        (minimum-time) run is reported, suppressing allocator/GC noise.
        Modeled mode is deterministic, so one run suffices.
        """
        if self.mode == "modeled":
            return self._measure_modeled(strategy)
        import gc
        best: Table4Row | None = None
        for _ in range(max(1, repeats)):
            # XDM trees are cyclic (parent<->children); reclaim the
            # previous run's documents now so gen-2 collections triggered
            # mid-measurement don't scan a heap full of dead nodes.
            gc.collect()
            network, peer_a, wrapper, handle = self._build_site()
            run = run_strategy(strategy, peer_a, "B", network=network,
                               remote_seconds_fn=lambda: handle.busy_seconds)
            assert run.results == self.xmark.matches, (
                f"{strategy}: expected {self.xmark.matches} join results, "
                f"got {run.results}")
            row = Table4Row(
                strategy=strategy,
                total_ms=run.total_seconds * 1000.0,
                local_ms=run.local_cpu_seconds * 1000.0,
                remote_ms=run.remote_seconds * 1000.0,
                results=run.results,
                messages=run.messages_sent,
                bytes_shipped=run.bytes_shipped,
            )
            if best is None or row.total_ms < best.total_ms:
                best = row
        assert best is not None
        return best

    def _measure_modeled(self, strategy: str) -> Table4Row:
        """Execute the strategy for real; compute times analytically.

        The execution verifies correctness (6 join results) and yields
        the exact message/byte/call volumes; the calibrated constants
        convert volumes into deterministic MonetDB/Saxon/communication
        times the way the paper's hardware would have charged them.
        """
        network, peer_a, wrapper, handle = self._build_site()
        run = run_strategy(strategy, peer_a, "B", network=network)
        assert run.results == self.xmark.matches, (
            f"{strategy}: expected {self.xmark.matches} join results, "
            f"got {run.results}")

        c = self.constants
        persons = self.xmark.persons
        auctions = self.xmark.closed_auctions
        auctions_bytes = len(wrapper._document_sources["auctions.xml"])

        monet = 0.0
        saxon = 0.0  # includes communication, like the paper's column
        for dest, req_bytes, resp_bytes in network.message_log:
            net = (2 * c.latency_per_message
                   + (req_bytes + resp_bytes) * c.bandwidth_per_byte)
            if dest == "B":
                monet += req_bytes * c.serialize_per_byte \
                    + resp_bytes * c.shred_per_byte
                saxon += req_bytes * c.shred_per_byte \
                    + resp_bytes * c.serialize_per_byte + net
            else:  # nested fetch B -> A (relocation pulling persons.xml)
                monet += req_bytes * c.shred_per_byte \
                    + resp_bytes * c.serialize_per_byte
                saxon += req_bytes * c.serialize_per_byte \
                    + resp_bytes * c.shred_per_byte + net

        # Wrapper-served requests: Saxon recompiles and rebuilds the
        # auctions tree per request; every call pays marshal overhead.
        saxon += wrapper.request_count * (
            c.saxon_compile + auctions_bytes * c.saxon_treebuild_per_byte)
        saxon += wrapper.accumulated.calls * c.saxon_per_call

        # Join work placement per strategy.
        if strategy == "execution relocation":
            saxon += persons * auctions * c.saxon_join_per_pair
        elif strategy == "distributed semi-join":
            saxon += auctions * c.monet_join_per_row  # index build at B
            monet += persons * c.monet_join_per_row
        else:  # the join runs relationally at A
            monet += (persons + auctions) * c.monet_join_per_row

        return Table4Row(
            strategy=strategy,
            total_ms=(monet + saxon) * 1000.0,
            local_ms=monet * 1000.0,
            remote_ms=saxon * 1000.0,
            results=run.results,
            messages=run.messages_sent,
            bytes_shipped=run.bytes_shipped,
        )

    def run(self, repeats: int = 1) -> list[Table4Row]:
        return [self.measure(strategy, repeats=repeats)
                for strategy in STRATEGY_NAMES]

    @staticmethod
    def render(rows: list[Table4Row]) -> str:
        lines = [
            "Table 4: Execution time (msec) of query Q7 distributed over",
            "         a MonetDB-profile and a wrapped Saxon-profile peer",
            "",
            f"{'':26}{'Total':>10}{'MonetDB':>10}{'Saxon':>10}"
            f"{'msgs':>6}{'KB shipped':>12}",
        ]
        for row in rows:
            lines.append(
                f"{row.strategy:<26}{row.total_ms:>10.0f}{row.local_ms:>10.0f}"
                f"{row.remote_ms:>10.0f}{row.messages:>6}"
                f"{row.bytes_shipped / 1024:>12.1f}")
        return "\n".join(lines)
