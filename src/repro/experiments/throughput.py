"""Throughput experiment (section 3.3 prose).

The paper scales request and response payloads and observes ~8 MB/s on
the request path (bounded by document shredding) versus ~14 MB/s on the
response path (bounded by serialization) on a 1 Gb/s network — i.e. the
protocol is CPU-bound, not network-bound, on a fast LAN.

We reproduce both directions:

* *request-heavy*: ``tst:echo($payload)`` with a large node parameter —
  the server must shred the incoming message;
* *response-heavy*: ``tst:produce($n)`` returning a large sequence —
  the server must serialize the outgoing message.

Run over the real loopback HTTP transport the measured rates are wall
time; over the simulated network the rates follow the calibrated cost
model (8 and 14 MB/s).  The invariant to check is the *shape*: response
throughput exceeds request throughput.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

from repro.engine import MonetEngine
from repro.net import SimulatedNetwork
from repro.rpc import XRPCPeer
from repro.workloads.modules import TEST_MODULE, TEST_MODULE_LOCATION


@dataclass
class ThroughputRow:
    direction: str           # "request" | "response"
    payload_bytes: int
    seconds: float
    mb_per_second: float


def _make_pair(network):
    origin = XRPCPeer("p0", network)
    server = XRPCPeer("y", network, engine=MonetEngine(),
                      cost_model=None)
    for peer in (origin, server):
        peer.registry.register_source(TEST_MODULE,
                                      location=TEST_MODULE_LOCATION)
    return origin, server


class ThroughputExperiment:
    """Request vs response path throughput."""

    def __init__(self, rows_per_payload: int = 2000,
                 simulated: bool = True) -> None:
        self.rows_per_payload = rows_per_payload
        self.simulated = simulated

    def _payload_query(self, direction: str) -> str:
        n = self.rows_per_payload
        if direction == "request":
            # Build the payload locally, ship it, server echoes a count.
            return f"""
            import module namespace t="test" at "{TEST_MODULE_LOCATION}";
            let $payload := for $i in (1 to {n}) return <row>chunk-{{$i}}</row>
            return count(execute at {{"xrpc://y"}} {{ t:echo($payload) }})
            """
        return f"""
        import module namespace t="test" at "{TEST_MODULE_LOCATION}";
        count(execute at {{"xrpc://y"}} {{ t:produce({n}) }})
        """

    def measure(self, direction: str) -> ThroughputRow:
        if self.simulated:
            from repro.net.cost import PeerCostModel
            network = SimulatedNetwork()
            origin, server = _make_pair(network)
            server.cost_model = PeerCostModel()
            # Warm the function cache so compile cost doesn't pollute the
            # bandwidth measurement.
            origin.execute_query(self._payload_query(direction))
            network.reset_stats()
            started = network.clock.now()
            origin.execute_query(self._payload_query(direction))
            seconds = network.clock.now() - started
        else:
            network = SimulatedNetwork()  # zero-cost in-process channel
            network.cost_model.latency_seconds = 0.0
            origin, server = _make_pair(network)
            network.reset_stats()
            started = time.perf_counter()
            origin.execute_query(self._payload_query(direction))
            seconds = time.perf_counter() - started
        # Both payload queries are outside the lifted core (element
        # construction / fn:count), so the unified pipeline must have
        # fallen back with a recorded reason — assert the telemetry so
        # the shape can't silently change.
        assert origin.engine.last_plan == "interpreter"
        assert origin.engine.last_fallback_reason is not None
        payload = network.bytes_sent if direction == "request" \
            else network.bytes_received
        return ThroughputRow(
            direction=direction,
            payload_bytes=payload,
            seconds=seconds,
            mb_per_second=payload / seconds / 1e6 if seconds > 0 else 0.0,
        )

    def run(self) -> list[ThroughputRow]:
        return [self.measure("request"), self.measure("response")]

    @staticmethod
    def render(rows: list[ThroughputRow]) -> str:
        lines = [
            "Throughput (section 3.3): request vs response path",
            "",
            f"{'direction':<12}{'payload MB':>12}{'seconds':>10}{'MB/s':>8}",
        ]
        for row in rows:
            lines.append(
                f"{row.direction:<12}{row.payload_bytes / 1e6:>12.2f}"
                f"{row.seconds:>10.3f}{row.mb_per_second:>8.1f}")
        return "\n".join(lines)
