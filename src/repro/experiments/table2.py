"""Table 2 — XRPC performance: loop-lifted vs one-at-a-time RPC,
with and without the function cache (section 3.3).

The echoVoid function is called over XRPC inside a for-loop with
``$x`` iterations.  Four mechanisms × cache settings are measured on the
simulated network (virtual milliseconds), so the latency-amortisation
shape reproduces deterministically:

* one-at-a-time pays the full request round-trip per iteration;
* Bulk RPC sends one message regardless of ``$x``;
* a cold function cache charges the 130 ms module translation on the
  first request; a warm cache charges nothing.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.engine import MonetEngine
from repro.net import NetworkCostModel, PeerCostModel, SimulatedNetwork
from repro.rpc import XRPCPeer
from repro.workloads.modules import TEST_MODULE, TEST_MODULE_LOCATION


@dataclass
class Table2Row:
    mechanism: str        # "one-at-a-time" | "bulk"
    function_cache: bool
    iterations: int       # $x
    milliseconds: float


def _echo_query(iterations: int) -> str:
    return f"""
    import module namespace t="test" at "{TEST_MODULE_LOCATION}";
    for $i in (1 to {iterations})
    return execute at {{"xrpc://y.example.org"}} {{ t:echoVoid() }}
    """


class Table2Experiment:
    """Regenerates Table 2 on the simulated network."""

    def __init__(self, iterations: tuple[int, ...] = (1, 1000),
                 network_cost: NetworkCostModel | None = None,
                 peer_cost: PeerCostModel | None = None) -> None:
        self.iterations = iterations
        self.network_cost = network_cost or NetworkCostModel()
        self.peer_cost = peer_cost or PeerCostModel()

    def measure(self, mechanism: str, warm_cache: bool,
                iterations: int) -> float:
        """One cell of Table 2, in simulated milliseconds."""
        network = SimulatedNetwork(cost_model=self.network_cost)
        origin = XRPCPeer("p0.example.org", network)
        server = XRPCPeer("y.example.org", network,
                          engine=MonetEngine(function_cache=True),
                          cost_model=self.peer_cost)
        for peer in (origin, server):
            peer.registry.register_source(TEST_MODULE,
                                          location=TEST_MODULE_LOCATION)
        query = _echo_query(iterations)
        one_at_a_time = mechanism == "one-at-a-time"
        if warm_cache:
            # Pre-warm: one throwaway request compiles the module, as in
            # the paper's "With Function Cache" column.
            origin.execute_query(_echo_query(1),
                                 force_one_at_a_time=one_at_a_time)
        result = origin.execute_query(query,
                                      force_one_at_a_time=one_at_a_time)
        assert result.sequence == []  # echoVoid returns ()
        expected_messages = 1 if mechanism == "bulk" else iterations
        assert result.messages_sent == expected_messages
        # The unified pipeline serves the bulk mechanism from the lifted
        # relational plan (the echo loop is inside the lifted core);
        # forcing one-at-a-time pins the interpreter.
        expected_plan = "lifted" if mechanism == "bulk" else "interpreter"
        assert result.explain().plan == expected_plan
        return result.elapsed_seconds * 1000.0

    def run(self) -> list[Table2Row]:
        rows: list[Table2Row] = []
        for warm_cache in (False, True):
            for mechanism in ("one-at-a-time", "bulk"):
                for iterations in self.iterations:
                    rows.append(Table2Row(
                        mechanism=mechanism,
                        function_cache=warm_cache,
                        iterations=iterations,
                        milliseconds=self.measure(
                            mechanism, warm_cache, iterations),
                    ))
        return rows

    @staticmethod
    def render(rows: list[Table2Row]) -> str:
        """Print the Table 2 grid the paper shows."""
        def cell(mechanism: str, cache: bool, iterations: int) -> float:
            for row in rows:
                if (row.mechanism, row.function_cache, row.iterations) == \
                        (mechanism, cache, iterations):
                    return row.milliseconds
            raise KeyError((mechanism, cache, iterations))

        xs_values = sorted({row.iterations for row in rows})
        lines = [
            "Table 2: XRPC Performance (msec): loop-lifted vs one-at-a-time;",
            "         function cache vs no function cache",
            "",
            "                 No Function Cache      With Function Cache",
            "              " + "".join(f"  $x={x:<8}" for x in xs_values)
            + "".join(f"  $x={x:<8}" for x in xs_values),
        ]
        for mechanism in ("one-at-a-time", "bulk"):
            cells = [cell(mechanism, False, x) for x in xs_values] + \
                    [cell(mechanism, True, x) for x in xs_values]
            lines.append(f"{mechanism:<14}" +
                         "".join(f"  {value:>9.1f}" for value in cells))
        return "\n".join(lines)
