"""Run every experiment and print the paper-shaped tables.

Usage::

    python -m repro.experiments [--quick]

``--quick`` runs reduced workload scales (useful as a smoke test);
without it, the default scales match the regime discussed in
EXPERIMENTS.md.
"""

from __future__ import annotations

import sys

from repro.experiments import (
    Table2Experiment,
    Table3Experiment,
    Table4Experiment,
    ThroughputExperiment,
)
from repro.workloads.xmark import XMarkConfig


def main(argv: list[str]) -> int:
    quick = "--quick" in argv

    table2 = Table2Experiment(iterations=(1, 100) if quick else (1, 1000))
    print(Table2Experiment.render(table2.run()))
    print()

    table3 = Table3Experiment(
        calls=(1, 100) if quick else (1, 1000),
        xmark=XMarkConfig(persons=500 if quick else 5000))
    print(Table3Experiment.render(table3.run()))
    print()

    table4 = Table4Experiment(
        xmark=XMarkConfig(persons=50, closed_auctions=400, matches=6)
        if quick else
        XMarkConfig(persons=250, closed_auctions=4875, matches=6))
    print(Table4Experiment.render(table4.run()))
    print()

    throughput = ThroughputExperiment(
        rows_per_payload=500 if quick else 5000)
    print(ThroughputExperiment.render(throughput.run()))
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
