"""XQuery node constructor tests (direct + computed)."""

import pytest

from repro.errors import TypeError_
from repro.xdm.nodes import AttributeNode, ElementNode
from tests.helpers import run, single_node, strings, values, xml


class TestDirectElements:
    def test_empty_element(self):
        assert xml(run("<a/>")) == "<a/>"

    def test_literal_content(self):
        assert xml(run("<a>text</a>")) == "<a>text</a>"

    def test_nested_elements(self):
        assert xml(run("<a><b>x</b><c/></a>")) == "<a><b>x</b><c/></a>"

    def test_enclosed_expression(self):
        assert xml(run("<a>{1 + 2}</a>")) == "<a>3</a>"

    def test_adjacent_atomics_space_separated(self):
        assert xml(run("<a>{1, 2, 3}</a>")) == "<a>1 2 3</a>"

    def test_mixed_literal_and_enclosed(self):
        assert xml(run("<a>x{1}y</a>")) == "<a>x1y</a>"

    def test_boundary_whitespace_stripped(self):
        result = xml(run("<a>\n  <b/>\n</a>"))
        assert result == "<a><b/></a>"

    def test_significant_text_preserved(self):
        assert xml(run("<a> x </a>")) == "<a> x </a>"

    def test_curly_escapes(self):
        assert xml(run("<a>{{literal}}</a>")) == "<a>{literal}</a>"

    def test_attributes_literal(self):
        assert xml(run('<a x="1" y="z"/>')) == '<a x="1" y="z"/>'

    def test_attribute_enclosed_expr(self):
        assert xml(run('<a x="{1 + 1}"/>')) == '<a x="2"/>'

    def test_attribute_mixed_value(self):
        assert xml(run('<a x="v{1}w"/>')) == '<a x="v1w"/>'

    def test_node_copy_into_constructor(self):
        query = "let $b := <b>1</b> return <a>{$b}</a>"
        assert xml(run(query)) == "<a><b>1</b></a>"

    def test_copied_node_gets_new_identity(self):
        query = "let $b := <b/> let $a := <a>{$b}</a> return $a/b is $b"
        assert values(run(query)) == [False]

    def test_constructed_node_navigable(self):
        query = "<a><b>7</b></a>/b"
        assert strings(run(query)) == ["7"]

    def test_paper_q1_films_wrapper(self):
        query = "<films>{(<name>The Rock</name>, <name>Goldfinger</name>)}</films>"
        assert xml(run(query)) == \
            "<films><name>The Rock</name><name>Goldfinger</name></films>"

    def test_sequence_in_content(self):
        query = "<r>{for $i in (1, 2) return <v>{$i}</v>}</r>"
        assert xml(run(query)) == "<r><v>1</v><v>2</v></r>"

    def test_entity_in_content(self):
        assert xml(run("<a>&amp;</a>")) == "<a>&amp;</a>"

    def test_comment_in_constructor(self):
        result = single_node(run("<a><!--note--></a>"))
        assert result.children[0].kind == "comment"

    def test_namespace_declaration_attribute(self):
        node = single_node(run('<p:a xmlns:p="urn:p"/>'))
        assert isinstance(node, ElementNode)
        assert node.ns_uri == "urn:p"

    def test_atomized_node_content(self):
        query = "let $b := <b>5</b> return <a>{data($b)}</a>"
        assert xml(run(query)) == "<a>5</a>"

    def test_document_node_spliced(self):
        query = "<w>{doc('d.xml')}</w>"
        assert xml(run(query, docs={"d.xml": "<r>1</r>"})) == "<w><r>1</r></w>"


class TestComputedConstructors:
    def test_computed_element(self):
        assert xml(run("element foo { 'x' }")) == "<foo>x</foo>"

    def test_computed_element_dynamic_name(self):
        assert xml(run("element { concat('a', 'b') } { 1 }")) == "<ab>1</ab>"

    def test_computed_attribute(self):
        node = run("attribute year { 1996 }")[0]
        assert isinstance(node, AttributeNode)
        assert node.name == "year"
        assert node.value == "1996"

    def test_computed_attribute_in_element(self):
        query = "<film>{attribute year { 1964 }}</film>"
        assert xml(run(query)) == '<film year="1964"/>'

    def test_attribute_after_content_rejected(self):
        with pytest.raises(TypeError_):
            run("<a>{'text', attribute x { 1 }}</a>")

    def test_computed_text(self):
        node = run("text { 'hello' }")[0]
        assert node.kind == "text"
        assert node.string_value() == "hello"

    def test_computed_comment(self):
        node = run("comment { 'c' }")[0]
        assert node.kind == "comment"

    def test_computed_pi(self):
        node = run("processing-instruction target { 'data' }")[0]
        assert node.kind == "processing-instruction"
        assert node.target == "target"

    def test_computed_document(self):
        node = run("document { <r/> }")[0]
        assert node.kind == "document"
        assert node.root_element.name == "r"


class TestConstructorsWithNamespaces:
    def test_static_prefix_resolution(self):
        query = "declare namespace p = 'urn:p'; <p:x/>"
        node = single_node(run(query))
        assert node.ns_uri == "urn:p"

    def test_constructor_scope_nesting(self):
        query = '<p:a xmlns:p="urn:p"><p:b/></p:a>'
        node = single_node(run(query))
        assert node.children[0].ns_uri == "urn:p"

    def test_serialized_envelope_round_trip(self):
        # The shape the SOAP layer constructs.
        query = """
        declare namespace env = "http://www.w3.org/2003/05/soap-envelope";
        <env:Envelope xmlns:env="http://www.w3.org/2003/05/soap-envelope">
          <env:Body><x/></env:Body>
        </env:Envelope>
        """
        node = single_node(run(query))
        assert node.local_name == "Envelope"
        assert node.ns_uri == "http://www.w3.org/2003/05/soap-envelope"
        body = node.children[0]
        assert body.local_name == "Body"
        assert body.ns_uri == "http://www.w3.org/2003/05/soap-envelope"
