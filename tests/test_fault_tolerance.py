"""Fault-tolerance layer tests: retry matrix, breakers, deadlines,
partial results, and the pool/transport satellite regressions."""

import pytest

from repro.errors import (
    CircuitOpenError,
    DeadlineExceeded,
    FatalTransportError,
    RetryableTransportError,
    TransportError,
)
from repro.net import SimulatedNetwork
from repro.net.clock import VirtualClock
from repro.net.faults import FaultInjectingTransport, FaultPlan
from repro.net.pool import ConnectionPool
from repro.net.retry import (
    BreakerRegistry,
    CircuitBreaker,
    Deadline,
    NetEvents,
    ResilientChannel,
    RetryPolicy,
)
from repro.net.transport import ExchangeSpec, Transport
from repro.rpc import XRPCPeer
from repro.session import Database
from tests.helpers import strings


class ScriptedTransport(Transport):
    """Replays a scripted outcome (string or exception) per exchange."""

    def __init__(self, outcomes):
        self.outcomes = list(outcomes)
        self.clock = VirtualClock()
        self.exchanges = 0

    def send(self, destination, payload):
        return self.exchange(ExchangeSpec(destination, payload))

    def exchange(self, spec):
        self.exchanges += 1
        outcome = self.outcomes.pop(0) if self.outcomes else "ok"
        if isinstance(outcome, Exception):
            raise outcome
        return outcome


def make_channel(transport, **policy_kwargs):
    policy_kwargs.setdefault("jitter", 0.0)
    policy_kwargs.setdefault("base_delay", 0.01)
    return ResilientChannel(transport, policy=RetryPolicy(**policy_kwargs))


def passthrough(attempt, remaining):
    return "payload"


class TestRetryPolicy:
    def test_backoff_grows_and_caps(self):
        policy = RetryPolicy(base_delay=0.1, multiplier=2.0, max_delay=0.5,
                             jitter=0.0)
        assert policy.backoff(1) == pytest.approx(0.1)
        assert policy.backoff(2) == pytest.approx(0.2)
        assert policy.backoff(3) == pytest.approx(0.4)
        assert policy.backoff(4) == pytest.approx(0.5)  # capped
        assert policy.backoff(10) == pytest.approx(0.5)

    def test_seeded_jitter_is_deterministic(self):
        a = [RetryPolicy(seed=7).backoff(n) for n in range(1, 6)]
        b = [RetryPolicy(seed=7).backoff(n) for n in range(1, 6)]
        c = [RetryPolicy(seed=8).backoff(n) for n in range(1, 6)]
        assert a == b
        assert a != c

    def test_jitter_bounded(self):
        policy = RetryPolicy(base_delay=1.0, multiplier=1.0, max_delay=1.0,
                             jitter=0.25, seed=3)
        for attempt in range(1, 50):
            assert 0.75 <= policy.backoff(attempt) <= 1.25


class TestDeadline:
    def test_remaining_and_expiry_on_virtual_clock(self):
        clock = VirtualClock()
        deadline = Deadline.after(5.0, clock)
        assert deadline.remaining() == pytest.approx(5.0)
        assert not deadline.expired()
        clock.advance(4.0)
        assert deadline.remaining() == pytest.approx(1.0)
        clock.advance(2.0)
        assert deadline.expired()
        assert deadline.remaining() == 0.0  # clamped, never negative


class TestCircuitBreaker:
    def test_opens_after_threshold_consecutive_failures(self):
        breaker = CircuitBreaker(failure_threshold=3, cooldown=10.0)
        assert not breaker.record_failure(now=0.0)
        assert not breaker.record_failure(now=1.0)
        assert breaker.record_failure(now=2.0)  # third failure opens
        assert breaker.state == "open"
        assert not breaker.allow(now=3.0)
        assert breaker.retry_after(now=3.0) == pytest.approx(9.0)

    def test_success_resets_the_failure_streak(self):
        breaker = CircuitBreaker(failure_threshold=2, cooldown=10.0)
        breaker.record_failure(now=0.0)
        breaker.record_success()
        breaker.record_failure(now=1.0)
        assert breaker.state == "closed"  # streak broken by the success

    def test_half_open_probe_after_cooldown(self):
        breaker = CircuitBreaker(failure_threshold=1, cooldown=10.0)
        breaker.record_failure(now=0.0)
        assert not breaker.allow(now=5.0)
        assert breaker.allow(now=11.0)      # the half-open probe
        assert not breaker.allow(now=11.0)  # only one probe at a time
        breaker.record_success()
        assert breaker.state == "closed"
        assert breaker.allow(now=12.0)

    def test_failed_probe_reopens(self):
        breaker = CircuitBreaker(failure_threshold=1, cooldown=10.0)
        breaker.record_failure(now=0.0)
        assert breaker.allow(now=11.0)
        assert breaker.record_failure(now=11.0)  # probe failed: re-open
        assert breaker.state == "open"
        assert not breaker.allow(now=12.0)
        assert breaker.allow(now=22.0)

    def test_registry_keys_by_normalized_uri(self):
        registry = BreakerRegistry()
        assert registry.get("xrpc://y.example.org/db") \
            is registry.get("y.example.org")
        assert registry.get("y.example.org") \
            is not registry.get("z.example.org")

    def test_disabled_registry_never_opens(self):
        registry = BreakerRegistry(failure_threshold=1, enabled=False)
        breaker = registry.get("y")
        assert not breaker.record_failure(now=0.0)
        assert breaker.allow(now=0.0)
        assert registry.snapshot() == {}


class TestRetryMatrix:
    """Error class x request_sent x retry_safe -> retry or fail."""

    def test_drop_before_delivery_retried_even_when_not_retry_safe(self):
        # request_sent=False: the peer never saw it, replay is safe even
        # for updating exchanges.
        transport = ScriptedTransport([
            RetryableTransportError("dropped", request_sent=False), "ok"])
        channel = make_channel(transport)
        result = channel.exchange("y", passthrough, lambda raw: raw,
                                  retry_safe=False)
        assert result == "ok"
        assert transport.exchanges == 2

    def test_reset_after_delivery_not_retried_when_not_retry_safe(self):
        # request_sent=True + updating: the peer may have applied the
        # call — never replay.
        transport = ScriptedTransport([
            RetryableTransportError("reset", request_sent=True), "ok"])
        channel = make_channel(transport)
        with pytest.raises(RetryableTransportError):
            channel.exchange("y", passthrough, lambda raw: raw,
                             retry_safe=False)
        assert transport.exchanges == 1

    def test_reset_retried_when_retry_safe(self):
        transport = ScriptedTransport([
            RetryableTransportError("reset", request_sent=True), "ok"])
        channel = make_channel(transport)
        assert channel.exchange("y", passthrough, lambda raw: raw,
                                retry_safe=True) == "ok"
        assert transport.exchanges == 2

    def test_fatal_never_retried(self):
        transport = ScriptedTransport([FatalTransportError("bad addr"), "ok"])
        channel = make_channel(transport)
        with pytest.raises(FatalTransportError):
            channel.exchange("y", passthrough, lambda raw: raw)
        assert transport.exchanges == 1

    def test_gives_up_after_max_attempts(self):
        errors = [RetryableTransportError("down", request_sent=False)
                  for _ in range(10)]
        transport = ScriptedTransport(errors)
        channel = make_channel(transport, max_attempts=3)
        events = NetEvents()
        with pytest.raises(RetryableTransportError):
            channel.exchange("y", passthrough, lambda raw: raw, events=events)
        assert transport.exchanges == 3
        assert events.get("retries") == 2
        assert events.get("retry_giveups") == 1

    def test_fresh_payload_built_per_attempt(self):
        transport = ScriptedTransport([
            RetryableTransportError("dropped", request_sent=False), "ok"])
        channel = make_channel(transport)
        attempts = []
        channel.exchange("y", lambda attempt, remaining:
                         attempts.append(attempt) or f"p{attempt}",
                         lambda raw: raw)
        assert attempts == [1, 2]

    def test_unparseable_response_reenters_retry_loop(self):
        transport = ScriptedTransport(["garbage", "fine"])
        channel = make_channel(transport)

        def parse(raw):
            if raw == "garbage":
                raise RetryableTransportError("undecodable",
                                              request_sent=True)
            return raw

        assert channel.exchange("y", passthrough, parse) == "fine"
        assert transport.exchanges == 2


class TestChannelBreakerAndDeadline:
    def test_breaker_opens_and_fast_fails_without_touching_network(self):
        errors = [RetryableTransportError("down", request_sent=False)
                  for _ in range(10)]
        transport = ScriptedTransport(errors)
        breakers = BreakerRegistry(failure_threshold=3, cooldown=60.0)
        channel = ResilientChannel(
            transport, policy=RetryPolicy(max_attempts=3, jitter=0.0,
                                          base_delay=0.01),
            breakers=breakers)
        events = NetEvents()
        with pytest.raises(RetryableTransportError):
            channel.exchange("y", passthrough, lambda raw: raw,
                             events=events)
        assert events.get("breaker_opens") == 1
        sent_before = transport.exchanges
        with pytest.raises(CircuitOpenError) as info:
            channel.exchange("y", passthrough, lambda raw: raw,
                             events=events)
        assert transport.exchanges == sent_before  # refused at the gate
        assert events.get("breaker_fast_fails") == 1
        assert info.value.retry_after > 0

    def test_half_open_probe_recovers_through_channel(self):
        transport = ScriptedTransport([
            RetryableTransportError("down", request_sent=False), "ok"])
        breakers = BreakerRegistry(failure_threshold=1, cooldown=5.0)
        channel = ResilientChannel(
            transport, policy=RetryPolicy(max_attempts=1, jitter=0.0),
            breakers=breakers)
        with pytest.raises(RetryableTransportError):
            channel.exchange("y", passthrough, lambda raw: raw)
        assert breakers.get("y").state == "open"
        transport.clock.advance(6.0)
        assert channel.exchange("y", passthrough, lambda raw: raw) == "ok"
        assert breakers.get("y").state == "closed"

    def test_soap_fault_counts_as_peer_alive(self):
        # A decoded application fault means the peer answered: the
        # breaker must NOT count it as a transport failure.
        transport = ScriptedTransport(["fault"] * 5)
        breakers = BreakerRegistry(failure_threshold=2)
        channel = ResilientChannel(transport, policy=RetryPolicy(jitter=0.0),
                                   breakers=breakers)

        def parse(raw):
            raise ValueError("application-level fault")

        for _ in range(5):
            with pytest.raises(ValueError):
                channel.exchange("y", passthrough, parse)
        assert breakers.get("y").state == "closed"

    def test_expired_deadline_refuses_exchange(self):
        transport = ScriptedTransport(["ok"])
        channel = make_channel(transport)
        deadline = Deadline.after(1.0, transport.clock)
        transport.clock.advance(2.0)
        events = NetEvents()
        with pytest.raises(DeadlineExceeded):
            channel.exchange("y", passthrough, lambda raw: raw,
                             deadline=deadline, events=events)
        assert transport.exchanges == 0
        assert events.get("deadline_expired") == 1

    def test_backoff_capped_by_deadline(self):
        transport = ScriptedTransport([
            RetryableTransportError("down", request_sent=False)] * 5)
        channel = make_channel(transport, base_delay=10.0, max_delay=60.0,
                               max_attempts=5)
        deadline = Deadline.after(5.0, transport.clock)
        with pytest.raises(DeadlineExceeded):
            channel.exchange("y", passthrough, lambda raw: raw,
                             deadline=deadline)
        assert transport.exchanges == 1  # no point sleeping 10s of a 5s budget

    def test_remaining_budget_threaded_into_build(self):
        transport = ScriptedTransport(["ok"])
        channel = make_channel(transport)
        deadline = Deadline.after(8.0, transport.clock)
        seen = {}

        def build(attempt, remaining):
            seen["remaining"] = remaining
            return "p"

        channel.exchange("y", build, lambda raw: raw, deadline=deadline)
        assert seen["remaining"] == pytest.approx(8.0)


class _FakeConnection:
    """Stands in for http.client.HTTPConnection inside the pool."""

    def __init__(self, fail_with=None):
        self.fail_with = fail_with
        self.closed = False
        self.sock = None

    def request(self, *args, **kwargs):
        if self.fail_with is not None:
            raise self.fail_with

    def getresponse(self):  # pragma: no cover - only reached on success
        raise AssertionError("not used")

    def close(self):
        self.closed = True


class TestPoolErrorPaths:
    """Satellite: every pool error path closes and drops the socket."""

    def _pool_with_idle(self, connection):
        pool = ConnectionPool()
        pool._idle["peer:80"] = [connection]
        return pool

    def test_oserror_path_closes_connection(self):
        # Two stale connections: the first failure takes the one-shot
        # stale retry, the second exhausts it.  Both must end up closed
        # and dropped from the idle list.
        first = _FakeConnection(fail_with=OSError("boom"))
        second = _FakeConnection(fail_with=OSError("boom again"))
        pool = ConnectionPool()
        pool._idle["peer:80"] = [second, first]  # checkout pops the end
        with pytest.raises(TransportError):
            pool.request("peer:80", "/", b"x", {}, retry_safe=False)
        assert first.closed and second.closed
        assert pool._idle.get("peer:80", []) == []

    def test_unexpected_error_path_closes_connection(self):
        # Regression: a non-HTTPException/OSError failure (handler bug,
        # KeyboardInterrupt, ...) must also close-and-drop — never
        # return the connection to the idle pool in unknown state.
        connection = _FakeConnection(fail_with=RuntimeError("bug"))
        pool = self._pool_with_idle(connection)
        with pytest.raises(RuntimeError):
            pool.request("peer:80", "/", b"x", {})
        assert connection.closed
        assert pool._idle.get("peer:80", []) == []

    def test_not_retry_safe_skips_stale_retry_after_send(self):
        # request went out (sent=True simulated by failing in
        # getresponse) on a reused connection: an updating exchange must
        # not be replayed.
        class _SentThenFail(_FakeConnection):
            def request(self, *args, **kwargs):
                pass

            def getresponse(self):
                raise OSError("reset after send")

        connection = _SentThenFail()
        pool = self._pool_with_idle(connection)
        with pytest.raises(RetryableTransportError) as info:
            pool.request("peer:80", "/", b"x", {}, retry_safe=False)
        assert info.value.request_sent
        assert connection.closed

    def test_pool_breaker_fast_fails(self):
        breakers = BreakerRegistry(failure_threshold=1, cooldown=1000.0)
        pool = ConnectionPool(breakers=breakers)
        # Nothing listens on this port: first dial fails and opens.
        with pytest.raises(TransportError):
            pool.request("127.0.0.1:9", "/", b"x", {})
        with pytest.raises(CircuitOpenError):
            pool.request("127.0.0.1:9", "/", b"x", {})


class _FlakyOnce(Transport):
    """Fails the first exchange per destination, then delegates."""

    def __init__(self, inner, error=None):
        self.inner = inner
        self.error = error or RetryableTransportError(
            "first attempt reset", request_sent=True)
        self.failed = set()

    def send(self, destination, payload):
        return self.exchange(ExchangeSpec(destination, payload))

    def exchange(self, spec):
        key = spec.destination
        if key not in self.failed:
            self.failed.add(key)
            raise self.error
        return self.inner.exchange(spec)

    def __getattr__(self, name):
        return getattr(self.inner, name)


FILM_MODULE = """
module namespace film = "films";
declare function film:filmsByActor($actor as xs:string) as node()*
{ doc("filmDB.xml")//name[../actor = $actor] };
"""
FILM_LOCATION = "http://x.example.org/film.xq"
FILMS_Y = """<films>
<film><name>The Rock</name><actor>Sean Connery</actor></film>
</films>"""
COUNTER_MODULE = """
module namespace c = "urn:counter";
declare function c:read() as xs:string
{ string(doc("counter.xml")/counter) };
declare updating function c:bump($v as xs:string)
{ replace value of node doc("counter.xml")/counter with $v };
"""


def film_peers(transport, hosts=("y.example.org",)):
    origin = XRPCPeer("p0.example.org", transport)
    origin.registry.register_source(FILM_MODULE, location=FILM_LOCATION)
    served = []
    for host in hosts:
        peer = XRPCPeer(host, transport)
        peer.registry.register_source(FILM_MODULE, location=FILM_LOCATION)
        peer.store.register("filmDB.xml", FILMS_Y)
        served.append(peer)
    return origin, served


class TestNoPayloadSniffRegression:
    """Satellite: retry-safety comes from the analyzer verdict, never
    from sniffing the payload for ``updCall="true"``."""

    def test_read_only_query_containing_sniff_literal_is_retried(self):
        network = SimulatedNetwork()
        flaky = _FlakyOnce(network)
        origin, _ = film_peers(flaky)
        # The argument carries the exact byte pattern the old sniff
        # matched; the call is read-only, so the post-send reset must
        # still be retried and the query succeed.
        query = f"""
        import module namespace f="films" at "{FILM_LOCATION}";
        execute at {{"xrpc://y.example.org"}}
        {{ f:filmsByActor(concat('updCall="true"', "Sean Connery")) }}
        """
        result = origin.execute_query(query)
        assert result.sequence == []  # no actor by that name
        assert result.net_retries >= 1

    def test_updating_call_not_retried_after_send(self):
        network = SimulatedNetwork()
        flaky = _FlakyOnce(network)
        origin = XRPCPeer("p0.example.org", flaky)
        origin.registry.register_source(COUNTER_MODULE, location="c.xq")
        server = XRPCPeer("u.example.org", flaky)
        server.registry.register_source(COUNTER_MODULE, location="c.xq")
        server.store.register("counter.xml", "<counter>0</counter>")
        query = """
        import module namespace c = "urn:counter" at "c.xq";
        execute at {"xrpc://u.example.org"} { c:bump("5") }
        """
        with pytest.raises(RetryableTransportError):
            origin.execute_query(query)
        # The reset was injected before the handler could run; crucially
        # the client made exactly one attempt — no replay of an update.
        assert server.store.get("counter.xml").string_value() == "0"


MULTI_SITE_QUERY = f"""
import module namespace f="films" at "{FILM_LOCATION}";
<films> {{
  execute at {{"xrpc://y.example.org"}} {{ f:filmsByActor("Sean Connery") }},
  execute at {{"xrpc://dead.example.org"}} {{ f:filmsByActor("Sean Connery") }}
}} </films>
"""


class TestPartialResults:
    def test_degrade_returns_reachable_peers_results(self):
        network = SimulatedNetwork()
        origin, _ = film_peers(network)  # dead.example.org not registered
        result = origin.execute_query(MULTI_SITE_QUERY,
                                      on_peer_failure="degrade")
        assert result.degraded
        assert result.failed_peers == ["dead.example.org"]
        assert result.net_degraded_peers == 1
        assert strings(result.sequence[0].children) == ["The Rock"]

    def test_default_fail_closed(self):
        network = SimulatedNetwork()
        origin, _ = film_peers(network)
        with pytest.raises(TransportError):
            origin.execute_query(MULTI_SITE_QUERY)

    def test_invalid_policy_rejected(self):
        network = SimulatedNetwork()
        origin, _ = film_peers(network)
        with pytest.raises(ValueError):
            origin.execute_query(MULTI_SITE_QUERY, on_peer_failure="maybe")

    def test_updating_call_never_degrades(self):
        network = SimulatedNetwork()
        origin = XRPCPeer("p0.example.org", network)
        origin.registry.register_source(COUNTER_MODULE, location="c.xq")
        query = """
        import module namespace c = "urn:counter" at "c.xq";
        execute at {"xrpc://gone.example.org"} { c:bump("5") }
        """
        with pytest.raises(TransportError):
            origin.execute_query(query, on_peer_failure="degrade")

    def test_keyword_search_degrades(self):
        network = SimulatedNetwork()
        origin = XRPCPeer("p0.example.org", network)
        peer = XRPCPeer("y.example.org", network)
        peer.store.register("d.xml", "<d><item>vintage clock</item></d>")
        result = origin.keyword_search(
            "vintage",
            peers=["xrpc://y.example.org", "xrpc://dead.example.org"],
            on_peer_failure="degrade")
        assert result.degraded
        assert result.failed_peers == ["dead.example.org"]
        assert [hit.uri for hit in result.hits] == ["d.xml"]

    def test_keyword_search_fails_closed_by_default(self):
        network = SimulatedNetwork()
        origin = XRPCPeer("p0.example.org", network)
        with pytest.raises(TransportError):
            origin.keyword_search("x", peers=["xrpc://dead.example.org"])


class TestDeadlineEndToEnd:
    def test_blackholed_peer_exhausts_query_deadline(self):
        network = SimulatedNetwork()
        plan = FaultPlan(blackhole=frozenset({"y.example.org"}),
                         blackhole_seconds=1.0)
        transport = FaultInjectingTransport(network, plan)
        origin, _ = film_peers(transport)
        query = f"""
        import module namespace f="films" at "{FILM_LOCATION}";
        declare option xrpc:timeout "1.5";
        execute at {{"xrpc://y.example.org"}}
        {{ f:filmsByActor("Sean Connery") }}
        """
        with pytest.raises(DeadlineExceeded):
            origin.execute_query(query)

    def test_explicit_timeout_argument_wins(self):
        network = SimulatedNetwork()
        plan = FaultPlan(blackhole=frozenset({"y.example.org"}),
                         blackhole_seconds=1.0)
        transport = FaultInjectingTransport(network, plan)
        origin, _ = film_peers(transport)
        query = f"""
        import module namespace f="films" at "{FILM_LOCATION}";
        execute at {{"xrpc://y.example.org"}}
        {{ f:filmsByActor("Sean Connery") }}
        """
        with pytest.raises(DeadlineExceeded):
            origin.execute_query(query, timeout=0.5)

    def test_no_timeout_means_no_deadline(self):
        network = SimulatedNetwork()
        origin, _ = film_peers(network)
        query = f"""
        import module namespace f="films" at "{FILM_LOCATION}";
        execute at {{"xrpc://y.example.org"}}
        {{ f:filmsByActor("Sean Connery") }}
        """
        result = origin.execute_query(query)
        assert result.net_deadline_expired == 0


class TestTelemetry:
    def test_query_result_counters_and_explain_net_line(self):
        network = SimulatedNetwork()
        flaky = _FlakyOnce(network)
        origin, _ = film_peers(flaky)
        query = f"""
        import module namespace f="films" at "{FILM_LOCATION}";
        execute at {{"xrpc://y.example.org"}}
        {{ f:filmsByActor("Sean Connery") }}
        """
        result = origin.execute_query(query)
        assert result.net_retries >= 1
        rendered = result.explain().render()
        assert "net:" in rendered
        assert "retries=" in rendered

    def test_quiet_query_renders_no_net_line(self):
        network = SimulatedNetwork()
        origin, _ = film_peers(network)
        query = f"""
        import module namespace f="films" at "{FILM_LOCATION}";
        execute at {{"xrpc://y.example.org"}}
        {{ f:filmsByActor("Sean Connery") }}
        """
        result = origin.execute_query(query)
        assert "net:" not in result.explain().render()

    def test_database_stats_expose_net_counters(self):
        db = Database()
        db.register("d.xml", "<d/>")
        db.execute("doc('d.xml')")
        stats = db.stats()
        for name in ("net_exchanges", "net_retries", "net_retry_giveups",
                     "net_breaker_opens", "net_breaker_fast_fails",
                     "net_deadline_expired", "net_degraded_peers",
                     "net_faults_injected"):
            assert isinstance(getattr(stats, name), int)

    def test_database_search_validates_policy(self):
        db = Database()
        db.register("d.xml", "<d>needle</d>")
        assert db.search("needle", on_peer_failure="degrade")
        with pytest.raises(ValueError):
            db.search("needle", on_peer_failure="nope")

    def test_database_timeout_budget_enforced(self):
        db = Database()
        db.register("d.xml", "<d/>")
        assert db.execute("doc('d.xml')", timeout=30.0)
        with pytest.raises(DeadlineExceeded):
            db.execute("doc('d.xml')", timeout=-1.0)
