"""Property-based tests (hypothesis) on core invariants.

Each strategy generates structured random inputs and checks invariants
the system's correctness hinges on:

* XML parse/serialize round-trips preserve tree structure;
* SOAP marshaling (s2n/n2s) round-trips arbitrary XDM sequences by value;
* the algebra's ρ/π/∪ obey their relational laws;
* atomic casting round-trips through lexical space;
* Bulk RPC grouping never changes results vs one-at-a-time execution.
"""

import string as stringmod

from hypothesis import given, settings, strategies as st

from repro.algebra import Table
from repro.soap import n2s, s2n
from repro.xdm import deep_equal, xs
from repro.xdm.atomic import AtomicValue, cast
from repro.xml import parse_document, serialize
from repro.xml.serializer import escape_attribute, escape_text

# ---------------------------------------------------------------------------
# Generators

_NAME_START = stringmod.ascii_letters + "_"
_NAME_CHARS = stringmod.ascii_letters + stringmod.digits + "_-."

xml_names = st.builds(
    lambda first, rest: first + rest,
    st.sampled_from(_NAME_START),
    st.text(alphabet=_NAME_CHARS, max_size=8),
)

# Text without control characters the XML 1.0 grammar rejects.
xml_text = st.text(
    alphabet=st.characters(blacklist_categories=("Cc", "Cs"),
                           blacklist_characters="\r"),
    max_size=40,
)


@st.composite
def xml_trees(draw, depth=2):
    name = draw(xml_names)
    attributes = draw(st.dictionaries(xml_names, xml_text, max_size=3))
    attr_text = "".join(
        f' {key}="{escape_attribute(value)}"'
        for key, value in attributes.items())
    if depth == 0:
        content = escape_text(draw(xml_text))
    else:
        parts = draw(st.lists(
            st.one_of(xml_text.map(escape_text),
                      xml_trees(depth=depth - 1)),
            max_size=3))
        content = "".join(parts)
    return f"<{name}{attr_text}>{content}</{name}>"


atomic_values = st.one_of(
    st.integers(min_value=-10**12, max_value=10**12)
      .map(lambda v: AtomicValue(v, xs.integer)),
    st.booleans().map(lambda v: AtomicValue(v, xs.boolean)),
    xml_text.map(lambda v: AtomicValue(v, xs.string)),
    st.floats(allow_nan=False, allow_infinity=False, width=32)
      .map(lambda v: AtomicValue(float(v), xs.double)),
)


# ---------------------------------------------------------------------------
# XML round-trip


class TestXMLRoundTripProperties:
    @given(xml_trees())
    @settings(max_examples=60, deadline=None)
    def test_parse_serialize_parse_is_identity(self, xml):
        first = parse_document(xml)
        reparsed = parse_document(serialize(first))
        assert deep_equal([first], [reparsed])

    @given(xml_text)
    @settings(max_examples=60, deadline=None)
    def test_text_content_round_trip(self, text):
        doc = parse_document(f"<a>{escape_text(text)}</a>")
        assert doc.root_element.string_value() == text

    @given(xml_text)
    @settings(max_examples=60, deadline=None)
    def test_attribute_value_round_trip(self, text):
        doc = parse_document(f'<a x="{escape_attribute(text)}"/>')
        assert doc.root_element.get_attribute("x").value == text

    @given(xml_trees())
    @settings(max_examples=40, deadline=None)
    def test_document_order_keys_strictly_ascend(self, xml):
        doc = parse_document(xml)
        keys = [n.order_key for n in doc.descendants(include_self=True)]
        assert keys == sorted(keys)
        assert len(set(keys)) == len(keys)


# ---------------------------------------------------------------------------
# SOAP marshaling


class TestMarshalingProperties:
    @given(st.lists(atomic_values, max_size=8))
    @settings(max_examples=80, deadline=None)
    def test_atomic_sequences_round_trip(self, sequence):
        assert n2s(s2n(sequence)) == sequence

    @given(st.lists(atomic_values, max_size=5))
    @settings(max_examples=40, deadline=None)
    def test_round_trip_through_wire_text(self, sequence):
        """Marshal -> serialize -> reparse -> unmarshal == identity."""
        wire = serialize(s2n(sequence))
        from repro.xml import parse_fragment
        assert n2s(parse_fragment(wire)) == sequence

    @given(xml_trees())
    @settings(max_examples=40, deadline=None)
    def test_nodes_ship_by_value(self, xml):
        doc = parse_document(xml)
        element = doc.root_element
        [copy] = n2s(s2n([element]))
        assert copy is not element
        assert copy.parent is None
        assert deep_equal([copy], [element])

    @given(st.lists(atomic_values, max_size=4), st.lists(atomic_values, max_size=4))
    @settings(max_examples=40, deadline=None)
    def test_marshaling_preserves_sequence_boundaries(self, left, right):
        wrapper_left, wrapper_right = s2n(left), s2n(right)
        assert n2s(wrapper_left) == left
        assert n2s(wrapper_right) == right


# ---------------------------------------------------------------------------
# Casting


class TestCastingProperties:
    @given(st.integers(min_value=-10**15, max_value=10**15))
    @settings(max_examples=80, deadline=None)
    def test_integer_lexical_round_trip(self, value):
        atom = AtomicValue(value, xs.integer)
        assert cast(cast(atom, xs.string), xs.integer).value == value

    @given(st.booleans())
    def test_boolean_lexical_round_trip(self, value):
        atom = AtomicValue(value, xs.boolean)
        assert cast(cast(atom, xs.string), xs.boolean).value is value

    @given(st.floats(allow_nan=False, allow_infinity=False))
    @settings(max_examples=80, deadline=None)
    def test_double_lexical_round_trip(self, value):
        atom = AtomicValue(value, xs.double)
        assert cast(cast(atom, xs.string), xs.double).value == value


# ---------------------------------------------------------------------------
# Algebra laws


rows_strategy = st.lists(
    st.tuples(st.integers(1, 5), st.integers(1, 9),
              st.text(alphabet="abc", max_size=2)),
    max_size=20)


class TestAlgebraProperties:
    @given(rows_strategy)
    @settings(max_examples=60, deadline=None)
    def test_projection_preserves_cardinality(self, rows):
        table = Table(("iter", "pos", "item"), rows)
        assert len(table.project("iter", "item")) == len(table)

    @given(rows_strategy)
    @settings(max_examples=60, deadline=None)
    def test_distinct_idempotent(self, rows):
        table = Table(("iter", "pos", "item"), rows)
        once = table.distinct()
        assert once.distinct() == once

    @given(rows_strategy, rows_strategy)
    @settings(max_examples=60, deadline=None)
    def test_union_cardinality(self, left_rows, right_rows):
        left = Table(("iter", "pos", "item"), left_rows)
        right = Table(("iter", "pos", "item"), right_rows)
        assert len(left.union(right)) == len(left) + len(right)

    @given(rows_strategy)
    @settings(max_examples=60, deadline=None)
    def test_rownum_is_dense_per_partition(self, rows):
        table = Table(("iter", "pos", "item"), rows)
        numbered = table.rownum("n", order_by=("pos", "item"),
                                partition_by="iter")
        per_partition: dict = {}
        for row in numbered.rows:
            per_partition.setdefault(row[0], []).append(row[-1])
        for numbers in per_partition.values():
            assert sorted(numbers) == list(range(1, len(numbers) + 1))

    @given(rows_strategy)
    @settings(max_examples=60, deadline=None)
    def test_select_subset_of_rows(self, rows):
        table = Table(("iter", "pos", "item"), rows)
        flagged = table.fun("keep", lambda i: i % 2 == 0, "iter")
        selected = flagged.select("keep")
        assert all(row[0] % 2 == 0 for row in selected.rows)
        assert len(selected) <= len(table)


# ---------------------------------------------------------------------------
# Bulk RPC equivalence


class TestBulkEquivalenceProperty:
    @given(st.lists(st.sampled_from(
        ["Sean Connery", "Julie Andrews", "Gerard Depardieu"]),
        min_size=1, max_size=6))
    @settings(max_examples=20, deadline=None)
    def test_bulk_equals_one_at_a_time(self, actors):
        """Grouping calls into bulk messages never changes results."""
        from repro.net import SimulatedNetwork
        from repro.rpc import XRPCPeer
        from repro.workloads.films import FILM_MODULE, FILM_MODULE_LOCATION

        films = """<films>
        <film><name>A</name><actor>Sean Connery</actor></film>
        <film><name>B</name><actor>Julie Andrews</actor></film>
        </films>"""

        network = SimulatedNetwork()
        origin = XRPCPeer("p0", network)
        server = XRPCPeer("y", network)
        for peer in (origin, server):
            peer.registry.register_source(FILM_MODULE,
                                          location=FILM_MODULE_LOCATION)
        server.store.register("filmDB.xml", films)

        actor_list = ", ".join(f'"{actor}"' for actor in actors)
        query = f"""
        import module namespace f="films" at "{FILM_MODULE_LOCATION}";
        for $a in ({actor_list})
        return execute at {{"xrpc://y"}} {{ f:filmsByActor($a) }}
        """
        bulk = origin.execute_query(query)
        single = origin.execute_query(query, force_one_at_a_time=True)
        assert deep_equal(bulk.sequence, single.sequence)
        assert bulk.messages_sent == 1
        assert single.messages_sent == len(actors)


# ---------------------------------------------------------------------------
# Interleaved update/query equivalence (gapped pre-plane)


# A known document shape so update targets can be drawn by index: three
# sections, each with three items carrying values.
def _sections_xml() -> str:
    sections = []
    for section in range(3):
        items = "".join(
            f'<item v="s{section}i{item}">t{section}{item}</item>'
            for item in range(3))
        sections.append(f'<sec n="{section}">{items}</sec>')
    return f"<root>{''.join(sections)}</root>"


_update_ops = st.one_of(
    st.builds(lambda j, tag: ("insert-first", j, tag),
              st.integers(1, 3), xml_names),
    st.builds(lambda j, tag: ("insert-last", j, tag),
              st.integers(1, 3), xml_names),
    st.builds(lambda j, k, tag: ("insert-before", j, k, tag),
              st.integers(1, 3), st.integers(1, 3), xml_names),
    st.builds(lambda j, k, tag: ("insert-after", j, k, tag),
              st.integers(1, 3), st.integers(1, 3), xml_names),
    st.builds(lambda j: ("delete-sec-child", j), st.integers(1, 3)),
    st.builds(lambda j, name: ("rename-sec", j, name),
              st.integers(1, 3), xml_names),
    st.builds(lambda j, value: ("set-attr", j, value),
              st.integers(1, 3), st.text(
                  alphabet=stringmod.ascii_letters, max_size=6)),
    st.builds(lambda j, value: ("replace-value", j, value),
              st.integers(1, 3), st.text(
                  alphabet=stringmod.ascii_letters, max_size=6)),
)


def _op_query(op: tuple) -> str:
    kind = op[0]
    if kind == "insert-first":
        return (f"insert node <{op[2]}/> as first into "
                f"(doc('r.xml')//*)[{op[1]}]")
    if kind == "insert-last":
        return (f"insert node <{op[2]} m='1'/> as last into "
                f"(doc('r.xml')//*)[{op[1]}]")
    if kind == "insert-before":
        return (f"insert node <{op[3]}/> before "
                f"doc('r.xml')/root/*[{op[1]}]/*[{op[2]}]")
    if kind == "insert-after":
        return (f"insert node <{op[3]}/> after "
                f"doc('r.xml')/root/*[{op[1]}]/*[{op[2]}]")
    if kind == "delete-sec-child":
        return f"delete nodes doc('r.xml')/root/*[{op[1]}]/*[1]"
    if kind == "rename-sec":
        return f"rename node doc('r.xml')/root/*[{op[1]}] as '{op[2]}'"
    if kind == "set-attr":
        return (f"replace value of node doc('r.xml')/root/*[{op[1]}]/@n "
                f"with '{op[2]}'")
    assert kind == "replace-value"
    return (f"replace value of node doc('r.xml')/root/*[{op[1]}] "
            f"with '{op[2]}'")


_PROBE_QUERIES = (
    "doc('r.xml')//item",
    "doc('r.xml')//@*",
    "count(doc('r.xml')//node())",
    "doc('r.xml')//item/parent::*",
    "doc('r.xml')//item[@v = 's1i1']",
    "doc('r.xml')/root/*/*",
    "doc('r.xml')//text()",
    # The axes closed by the lifted window kernels, plus positional
    # predicates — probed between updates so the incremental index
    # patches must keep every window formula correct.
    "doc('r.xml')//item/ancestor::*",
    "doc('r.xml')//item/ancestor-or-self::node()",
    "doc('r.xml')//item/following::item",
    "doc('r.xml')//item/preceding::item",
    "doc('r.xml')//item/following-sibling::*",
    "doc('r.xml')//item/preceding-sibling::*",
    "doc('r.xml')//item[1]",
    "doc('r.xml')//item[last()]",
    "doc('r.xml')/root/*[position() >= 2]",
    "doc('r.xml')//item/ancestor::*[2]",
    "doc('r.xml')//item/preceding::item[1]",
)


class TestInterleavedUpdateQueryEquivalence:
    """Random PUL + path-query sequences must agree across the gapped
    O(change) update path (accelerator on and off, lifted-first engine
    and plain interpreter) and the dense full-restamp baseline."""

    @given(st.lists(_update_ops, min_size=1, max_size=6))
    @settings(max_examples=30, deadline=None)
    def test_all_paths_agree(self, operations):
        from repro.engine import Engine
        from repro.xquery.context import ExecutionContext
        from repro.xquery.evaluator import evaluate_query

        def run(stride, incremental, accelerator, lifted):
            document = parse_document(_sections_xml(), uri="r.xml",
                                      stride=stride)
            resolver = {"r.xml": document}.get
            engine = Engine(accelerator=accelerator) if lifted else None
            outputs = []
            for operation in operations:
                update = _op_query(operation)
                try:
                    evaluate_query(update, doc_resolver=resolver,
                                   accelerator=accelerator,
                                   incremental_updates=incremental)
                    outputs.append("ok")
                except Exception as error:  # dynamic update errors must
                    outputs.append(type(error).__name__)  # agree too
                for probe in _PROBE_QUERIES:
                    if lifted:
                        result, _ = engine.execute(probe, ExecutionContext(
                            doc_resolver=resolver, accelerator=accelerator,
                            incremental_updates=incremental))
                    else:
                        result = evaluate_query(probe, doc_resolver=resolver,
                                                accelerator=accelerator)
                    outputs.append(serialize(s2n(result)))
            return outputs

        gapped_accel = run(None, True, True, False)
        gapped_naive = run(None, True, False, False)
        gapped_lifted = run(None, True, True, True)
        dense_full = run(1, False, True, False)
        assert gapped_accel == gapped_naive
        assert gapped_accel == gapped_lifted
        assert gapped_accel == dense_full
