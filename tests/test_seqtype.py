"""Unit tests for SequenceType matching and function conversion rules."""

import pytest

from repro.errors import TypeError_
from repro.xdm import integer, string, untyped, xs
from repro.xdm.atomic import AtomicValue
from repro.xml import parse_document, parse_fragment
from repro.xquery import xast as A
from repro.xquery.seqtype import convert_value, describe, sequence_matches


def atomic_type(ts, occurrence=""):
    return A.SequenceType(A.ItemType("atomic", atomic_type=ts), occurrence)


def kind_type(kind, occurrence="", name=None):
    return A.SequenceType(A.ItemType(kind, name=name), occurrence)


class TestSequenceMatches:
    def test_exact_one(self):
        assert sequence_matches([integer(1)], atomic_type(xs.integer))
        assert not sequence_matches([], atomic_type(xs.integer))
        assert not sequence_matches([integer(1), integer(2)],
                                    atomic_type(xs.integer))

    def test_occurrence_star(self):
        st = atomic_type(xs.integer, "*")
        assert sequence_matches([], st)
        assert sequence_matches([integer(1), integer(2)], st)

    def test_occurrence_plus(self):
        st = atomic_type(xs.integer, "+")
        assert not sequence_matches([], st)
        assert sequence_matches([integer(1)], st)

    def test_occurrence_question(self):
        st = atomic_type(xs.integer, "?")
        assert sequence_matches([], st)
        assert sequence_matches([integer(1)], st)
        assert not sequence_matches([integer(1), integer(2)], st)

    def test_subtype_matches(self):
        # xs:integer derives from xs:decimal.
        assert sequence_matches([integer(1)], atomic_type(xs.decimal))
        assert not sequence_matches(
            [AtomicValue(1, xs.decimal)], atomic_type(xs.integer))

    def test_node_kinds(self):
        element = parse_fragment("<a><b/></a>")
        doc = parse_document("<r/>")
        assert sequence_matches([element], kind_type("element"))
        assert sequence_matches([element], kind_type("node"))
        assert sequence_matches([doc], kind_type("document"))
        assert not sequence_matches([element], kind_type("document"))
        assert not sequence_matches([integer(1)], kind_type("node"))

    def test_named_element_test(self):
        element = parse_fragment("<person/>")
        assert sequence_matches([element], kind_type("element", name="person"))
        assert not sequence_matches([element], kind_type("element", name="film"))

    def test_empty_sequence_type(self):
        st = A.SequenceType(A.ItemType("empty"))
        assert sequence_matches([], st)
        assert not sequence_matches([integer(1)], st)

    def test_item_any(self):
        st = A.SequenceType(A.ItemType("item"), "*")
        assert sequence_matches([integer(1), parse_fragment("<a/>")], st)


class TestConvertValue:
    def test_untyped_cast_to_target(self):
        [converted] = convert_value([untyped("5")],
                                    atomic_type(xs.integer), "t")
        assert converted.type is xs.integer
        assert converted.value == 5

    def test_node_atomized_then_cast(self):
        node = parse_fragment("<a>7</a>")
        [converted] = convert_value([node], atomic_type(xs.integer), "t")
        assert converted.value == 7

    def test_numeric_promotion_to_double(self):
        [converted] = convert_value([integer(3)], atomic_type(xs.double), "t")
        assert converted.type is xs.double

    def test_anyuri_promotes_to_string(self):
        [converted] = convert_value(
            [AtomicValue("http://x", xs.anyURI)], atomic_type(xs.string), "t")
        assert converted.type is xs.string

    def test_incompatible_type_rejected(self):
        with pytest.raises(TypeError_):
            convert_value([string("x")], atomic_type(xs.integer), "t")

    def test_cardinality_enforced(self):
        with pytest.raises(TypeError_):
            convert_value([integer(1), integer(2)],
                          atomic_type(xs.integer), "t")
        with pytest.raises(TypeError_):
            convert_value([], atomic_type(xs.integer), "t")

    def test_node_kind_enforced(self):
        with pytest.raises(TypeError_):
            convert_value([integer(1)], kind_type("element"), "t")

    def test_empty_type_rejects_content(self):
        with pytest.raises(TypeError_):
            convert_value([integer(1)],
                          A.SequenceType(A.ItemType("empty")), "t")

    def test_item_star_passes_anything(self):
        items = [integer(1), parse_fragment("<a/>")]
        assert convert_value(items, A.SequenceType(A.ItemType("item"), "*"),
                             "t") == items


class TestDescribe:
    @pytest.mark.parametrize("st,expected", [
        (atomic_type(xs.integer), "xs:integer"),
        (atomic_type(xs.string, "*"), "xs:string*"),
        (kind_type("element", "?"), "element()?"),
        (A.SequenceType(A.ItemType("empty")), "empty-sequence()"),
        (A.SequenceType(A.ItemType("item"), "+"), "item()+"),
    ])
    def test_rendering(self, st, expected):
        assert describe(st) == expected
