"""Builtin function library and user-defined function/module tests."""

import pytest

from repro.errors import DynamicError, StaticError, TypeError_
from tests.helpers import run, strings, values, xml

FILM_MODULE = """
module namespace film = "films";
declare function film:filmsByActor($actor as xs:string) as node()*
{ doc("filmDB.xml")//name[../actor = $actor] };
"""

FILMS = """<films>
<film><name>The Rock</name><actor>Sean Connery</actor></film>
<film><name>Goldfinger</name><actor>Sean Connery</actor></film>
<film><name>Green Card</name><actor>Gerard Depardieu</actor></film>
</films>"""


class TestBuiltins:
    @pytest.mark.parametrize("query,expected", [
        ("count((1, 2, 3))", [3]),
        ("count(())", [0]),
        ("empty(())", [True]),
        ("exists((1))", [True]),
        ("string(42)", ["42"]),
        ("concat('a', 'b', 'c')", ["abc"]),
        ("string-join(('a', 'b'), '-')", ["a-b"]),
        ("substring('hello', 2)", ["ello"]),
        ("substring('hello', 2, 3)", ["ell"]),
        ("string-length('abc')", [3]),
        ("normalize-space('  a  b ')", ["a b"]),
        ("contains('hello', 'ell')", [True]),
        ("starts-with('hello', 'he')", [True]),
        ("ends-with('hello', 'lo')", [True]),
        ("substring-before('a=b', '=')", ["a"]),
        ("substring-after('a=b', '=')", ["b"]),
        ("upper-case('ab')", ["AB"]),
        ("lower-case('AB')", ["ab"]),
        ("translate('abc', 'ab', 'xy')", ["xyc"]),
        ("sum((1, 2, 3))", [6]),
        ("sum(())", [0]),
        ("avg((2, 4))", [3.0]),
        ("max((1, 5, 3))", [5]),
        ("min((4, 2, 8))", [2]),
        ("abs(-3)", [3]),
        ("floor(2.7)", [2]),
        ("ceiling(2.1)", [3]),
        ("round(2.5)", [3]),
        ("distinct-values((1, 2, 1, 3))", [1, 2, 3]),
        ("reverse((1, 2, 3))", [3, 2, 1]),
        ("subsequence((1, 2, 3, 4), 2, 2)", [2, 3]),
        ("insert-before((1, 3), 2, (2))", [1, 2, 3]),
        ("remove((1, 2, 3), 2)", [1, 3]),
        ("index-of((10, 20, 10), 10)", [1, 3]),
        ("zero-or-one(())", []),
        ("exactly-one((5))", [5]),
        ("one-or-more((1, 2))", [1, 2]),
        ("deep-equal((1, 2), (1, 2))", [True]),
        ("matches('abc', 'b')", [True]),
        ("replace('banana', 'a', 'o')", ["bonono"]),
        ("tokenize('a,b,c', ',')", ["a", "b", "c"]),
        ("number('5')", [5.0]),
        ("boolean((1))", [True]),
    ])
    def test_builtin(self, query, expected):
        assert values(run(query)) == expected

    def test_number_nan(self):
        [result] = run("number('abc')")
        assert result.value != result.value  # NaN

    def test_cardinality_violations(self):
        with pytest.raises(DynamicError):
            run("exactly-one(())")
        with pytest.raises(DynamicError):
            run("zero-or-one((1, 2))")
        with pytest.raises(DynamicError):
            run("one-or-more(())")

    def test_name_functions(self):
        assert values(run("name(<foo/>)")) == ["foo"]
        assert values(run("local-name(<p:foo xmlns:p='u'/>)")) == ["foo"]
        assert values(run("namespace-uri(<p:foo xmlns:p='u'/>)")) == ["u"]

    def test_doc_and_root(self):
        docs = {"x.xml": "<r><c/></r>"}
        result = run("doc('x.xml')//c/root()", docs=docs)
        assert result[0].kind == "document"

    def test_doc_available(self):
        docs = {"x.xml": "<r/>"}
        assert values(run("doc-available('x.xml')", docs=docs)) == [True]
        assert values(run("doc-available('y.xml')", docs=docs)) == [False]

    def test_missing_doc_raises(self):
        with pytest.raises(DynamicError):
            run("doc('nothere.xml')", docs={})

    def test_position_and_last_in_predicates(self):
        assert values(run("(10, 20, 30)[position() = 2]")) == [20]
        assert values(run("(10, 20, 30)[position() = last()]")) == [30]

    def test_xrpc_host_and_path(self):
        assert values(run("xrpc:host('xrpc://y.example.org:8080/db')")) == \
            ["y.example.org:8080"]
        assert values(run("xrpc:path('xrpc://y.example.org/data/f.xml')")) == \
            ["data/f.xml"]
        assert values(run("xrpc:host('plain.xml')")) == ["localhost"]
        assert values(run("xrpc:path('plain.xml')")) == ["plain.xml"]


class TestUserFunctions:
    def test_local_function(self):
        query = """
        declare function local:double($x as xs:integer) as xs:integer
        { $x * 2 };
        local:double(21)
        """
        assert values(run(query)) == [42]

    def test_recursion(self):
        query = """
        declare function local:fact($n as xs:integer) as xs:integer
        { if ($n <= 1) then 1 else $n * local:fact($n - 1) };
        local:fact(5)
        """
        assert values(run(query)) == [120]

    def test_untyped_arg_cast_to_param_type(self):
        query = """
        declare function local:f($x as xs:integer) { $x + 1 };
        local:f(<a>4</a>)
        """
        assert values(run(query)) == [5]

    def test_arity_overloading(self):
        query = """
        declare function local:f($x as xs:integer) { $x };
        declare function local:f($x as xs:integer, $y as xs:integer) { $x + $y };
        (local:f(1), local:f(1, 2))
        """
        assert values(run(query)) == [1, 3]

    def test_wrong_arg_type_raises(self):
        query = """
        declare function local:f($x as element()) { $x };
        local:f(1)
        """
        with pytest.raises(TypeError_):
            run(query)

    def test_cardinality_enforced(self):
        query = """
        declare function local:f($x as xs:integer) { $x };
        local:f((1, 2))
        """
        with pytest.raises(TypeError_):
            run(query)

    def test_return_type_enforced(self):
        query = """
        declare function local:f() as xs:integer { 'nope' };
        local:f()
        """
        with pytest.raises(TypeError_):
            run(query)

    def test_declared_variable(self):
        query = "declare variable $x := 10; $x * 2"
        assert values(run(query)) == [20]

    def test_external_variable(self):
        query = "declare variable $x external; $x + 1"
        assert values(run(query, variables={"x": run("41")})) == [42]

    def test_unknown_arity_raises(self):
        query = """
        declare function local:f($x as xs:integer) { $x };
        local:f(1, 2)
        """
        with pytest.raises(StaticError):
            run(query)


class TestModules:
    def test_import_module(self):
        query = """
        import module namespace f = "films" at "http://x.example.org/film.xq";
        f:filmsByActor("Sean Connery")
        """
        result = run(query,
                     docs={"filmDB.xml": FILMS},
                     modules={"http://x.example.org/film.xq": FILM_MODULE})
        assert strings(result) == ["The Rock", "Goldfinger"]

    def test_paper_q1(self):
        query = """
        import module namespace f = "films" at "http://x.example.org/film.xq";
        <films> { f:filmsByActor("Sean Connery") } </films>
        """
        result = run(query,
                     docs={"filmDB.xml": FILMS},
                     modules={"http://x.example.org/film.xq": FILM_MODULE})
        assert xml(result) == \
            "<films><name>The Rock</name><name>Goldfinger</name></films>"

    def test_missing_module_raises(self):
        query = 'import module namespace f = "nope" at "missing.xq"; 1'
        with pytest.raises(StaticError):
            run(query)

    def test_module_function_must_be_in_namespace(self):
        bad = """
        module namespace m = "m";
        declare function other:f() { 1 };
        """
        from repro.xquery.modules import ModuleRegistry
        with pytest.raises(StaticError):
            ModuleRegistry().register_source(
                'module namespace m = "m";\n'
                'declare namespace other = "o";\n'
                'declare function other:f() { 1 };\n')

    def test_transitive_module_import(self):
        base = """
        module namespace base = "urn:base";
        declare function base:one() { 1 };
        """
        upper = """
        module namespace upper = "urn:upper";
        import module namespace base = "urn:base";
        declare function upper:two() { base:one() + 1 };
        """
        query = 'import module namespace u = "urn:upper"; u:two()'
        from repro.xquery.modules import ModuleRegistry
        from repro.xquery.evaluator import evaluate_query
        registry = ModuleRegistry()
        registry.register_source(base)
        registry.register_source(upper)
        assert values(evaluate_query(query, registry=registry)) == [2]

    def test_module_compiled_once(self):
        from repro.xquery.modules import ModuleRegistry
        registry = ModuleRegistry()
        module = registry.register_source(FILM_MODULE)
        assert registry.load("films", []) is module
