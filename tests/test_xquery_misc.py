"""Additional XQuery evaluator coverage: edge cases across features."""

import pytest

from repro.errors import DynamicError, TypeError_
from tests.helpers import run, values, xml


class TestOrderByEdgeCases:
    def test_empty_least_default(self):
        query = """
        for $x in (<a>2</a>, <a/>, <a>1</a>)
        order by $x/text() return string($x)
        """
        assert values(run(query)) == ["", "1", "2"]

    def test_empty_greatest(self):
        query = """
        for $x in (<a>2</a>, <a/>, <a>1</a>)
        order by $x/text() empty greatest return string($x)
        """
        assert values(run(query)) == ["1", "2", ""]

    def test_multiple_keys(self):
        query = """
        for $p in (<p><a>1</a><b>2</b></p>, <p><a>1</a><b>1</b></p>,
                   <p><a>0</a><b>9</b></p>)
        order by number($p/a), number($p/b)
        return concat($p/a, '-', $p/b)
        """
        assert values(run(query)) == ["0-9", "1-1", "1-2"]

    def test_descending_numeric(self):
        query = "for $x in (1.5, 3, 2) order by $x descending return $x"
        assert [float(v) for v in values(run(query))] == [3.0, 2.0, 1.5]

    def test_order_by_untyped_sorts_as_string(self):
        query = """
        for $x in (<v>10</v>, <v>9</v>) order by data($x) return string($x)
        """
        assert values(run(query)) == ["10", "9"]


class TestFLWOREdgeCases:
    def test_empty_for_source_yields_nothing(self):
        assert run("for $x in () return 'never'") == []

    def test_where_before_bind_use(self):
        query = ("for $x in (1, 2, 3) let $y := $x * $x "
                 "where $y > 2 return $y")
        assert values(run(query)) == [4, 9]

    def test_shadowing_in_nested_loops(self):
        query = "for $x in (1, 2) return (for $x in (10) return $x)"
        assert values(run(query)) == [10, 10]

    def test_let_rebinding(self):
        query = "let $x := 1 let $x := $x + 1 return $x"
        assert values(run(query)) == [2]

    def test_hash_join_path_with_positional_var(self):
        # join optimization must preserve 'at' positions of the source.
        query = """
        let $db := <db><i k="b"/><i k="a"/><i k="b"/></db>
        for $probe in ('b')
        for $i at $n in $db/i
        where $i/@k = $probe
        return $n
        """
        assert values(run(query)) == [1, 3]

    def test_join_with_numeric_keys_falls_back_correctly(self):
        # Numeric keys make string-hashing unsound; results must still be
        # right via the nested-loop fallback.
        query = """
        for $x in (1, 2, 3)
        for $y in (<v>2</v>, <v>3.0</v>)
        where $y = $x
        return concat($x, ':', $y)
        """
        assert values(run(query)) == ["2:2", "3:3.0"]


class TestArithmeticEdgeCases:
    def test_idiv_truncates_toward_zero(self):
        assert values(run("(-7) idiv 2")) == [-3]

    def test_mod_sign_follows_dividend(self):
        assert values(run("(-7) mod 2")) == [-1]
        assert values(run("7 mod -2")) == [1]

    def test_decimal_precision(self):
        from decimal import Decimal
        assert values(run("0.1 + 0.2")) == [Decimal("0.3")]

    def test_unary_minus_stacking(self):
        assert values(run("- - 5")) == [5]

    def test_mixed_decimal_integer(self):
        from decimal import Decimal
        [result] = run("1.5 * 2")
        assert result.value == Decimal("3.0")


class TestStringEdgeCases:
    def test_substring_fractional_positions(self):
        # round() semantics of fn:substring.
        assert values(run("substring('12345', 1.5, 2.6)")) == ["234"]

    def test_substring_negative_start(self):
        assert values(run("substring('12345', 0)")) == ["12345"]

    def test_concat_atomizes_nodes(self):
        assert values(run("concat(<a>x</a>, <b>y</b>)")) == ["xy"]

    def test_string_join_empty_sequence(self):
        assert values(run("string-join((), '-')")) == [""]

    def test_normalize_space_tabs_newlines(self):
        assert values(run("normalize-space('a\t\n b')")) == ["a b"]


class TestContextItem:
    def test_dot_in_predicate(self):
        assert values(run("('a', 'bb', 'ccc')[string-length(.) = 2]")) == ["bb"]

    def test_dot_in_path(self):
        query = "<a><b>x</b></a>/b/string(.)"
        assert values(run(query)) == ["x"]

    def test_missing_context_raises(self):
        with pytest.raises(DynamicError) as info:
            run("position()")
        assert info.value.code == "XPDY0002"


class TestConstructorEdgeCases:
    def test_nested_enclosed_constructors(self):
        query = "<o>{ <i>{ 1 + 1 }</i> }</o>"
        assert xml(run(query)) == "<o><i>2</i></o>"

    def test_attribute_from_variable(self):
        query = 'let $y := 1996 return <film year="{$y}"/>'
        assert xml(run(query)) == '<film year="1996"/>'

    def test_multiple_attribute_parts(self):
        query = '<a v="{1}-{2}"/>'
        assert xml(run(query)) == '<a v="1-2"/>'

    def test_empty_enclosed_content(self):
        assert xml(run("<a>{()}</a>")) == "<a/>"

    def test_text_node_between_enclosed(self):
        assert xml(run("<a>{1} and {2}</a>")) == "<a>1 and 2</a>"

    def test_constructed_tree_fully_navigable(self):
        query = """
        let $tree := <r><x i="1"/><x i="2"/></r>
        return $tree/x[@i = '2']/@i/string(.)
        """
        assert values(run(query)) == ["2"]

    def test_constructor_copies_do_not_alias(self):
        query = """
        let $leaf := <leaf/>
        let $one := <a>{$leaf}</a>
        let $two := <b>{$leaf}</b>
        return $one/leaf is $two/leaf
        """
        assert values(run(query)) == [False]


class TestExecuteAtErrors:
    def test_no_handler_installed(self):
        query = """
        declare function local:f() { 1 };
        execute at {"xrpc://x"} { local:f() }
        """
        with pytest.raises(DynamicError) as info:
            run(query)
        assert info.value.code == "XRPC0001"

    def test_multi_item_destination_rejected(self):
        query = """
        declare function local:f() { 1 };
        execute at {("a", "b")} { local:f() }
        """
        with pytest.raises((TypeError_, DynamicError)):
            run(query, xrpc_handler=lambda call: [])


class TestIsolationOptionParsing:
    def test_options_surface_on_compiled_query(self):
        from repro.xquery.evaluator import CompiledQuery
        compiled = CompiledQuery("""
        declare option xrpc:isolation "repeatable";
        declare option xrpc:timeout "30";
        1
        """)
        assert compiled.options["xrpc:isolation"] == "repeatable"
        assert compiled.options["xrpc:timeout"] == "30"


class TestDataShippingQueries:
    def test_doc_function_in_path_inside_flwor(self):
        docs = {"db.xml": "<db><v>1</v><v>2</v></db>"}
        query = "for $v in doc('db.xml')//v return number($v) * 10"
        assert values(run(query, docs=docs)) == [10.0, 20.0]

    def test_two_docs_joined(self):
        docs = {
            "l.xml": '<l><e k="a">left-a</e><e k="b">left-b</e></l>',
            "r.xml": '<r><e k="b">right-b</e></r>',
        }
        query = """
        for $l in doc('l.xml')//e, $r in doc('r.xml')//e
        where $l/@k = $r/@k
        return concat($l, '+', $r)
        """
        assert values(run(query, docs=docs)) == ["left-b+right-b"]
