"""Unit tests for the from-scratch XML parser."""

import pytest

from repro.xdm.nodes import CommentNode, ElementNode
from repro.xml import XMLSyntaxError, parse_document, parse_fragment, serialize


class TestBasicParsing:
    def test_single_element(self):
        doc = parse_document("<a/>")
        assert doc.root_element.name == "a"
        assert doc.root_element.children == []

    def test_nested_elements(self):
        doc = parse_document("<a><b><c/></b></a>")
        root = doc.root_element
        assert root.children[0].name == "b"
        assert root.children[0].children[0].name == "c"

    def test_text_content(self):
        doc = parse_document("<a>hello</a>")
        assert doc.root_element.string_value() == "hello"

    def test_mixed_content(self):
        doc = parse_document("<a>x<b>y</b>z</a>")
        root = doc.root_element
        kinds = [child.kind for child in root.children]
        assert kinds == ["text", "element", "text"]
        assert root.string_value() == "xyz"

    def test_attributes(self):
        doc = parse_document('<a x="1" y="two"/>')
        root = doc.root_element
        assert root.get_attribute("x").value == "1"
        assert root.get_attribute("y").value == "two"

    def test_attribute_single_quotes(self):
        doc = parse_document("<a x='v'/>")
        assert doc.root_element.get_attribute("x").value == "v"

    def test_xml_declaration_skipped(self):
        doc = parse_document('<?xml version="1.0" encoding="utf-8"?><a/>')
        assert doc.root_element.name == "a"

    def test_comment(self):
        doc = parse_document("<a><!-- note --></a>")
        comment = doc.root_element.children[0]
        assert isinstance(comment, CommentNode)
        assert comment.content == " note "

    def test_processing_instruction(self):
        doc = parse_document("<a><?target data?></a>")
        pi = doc.root_element.children[0]
        assert pi.kind == "processing-instruction"
        assert pi.target == "target"
        assert pi.content == "data"

    def test_cdata(self):
        doc = parse_document("<a><![CDATA[<not-markup>]]></a>")
        assert doc.root_element.string_value() == "<not-markup>"

    def test_entities(self):
        doc = parse_document("<a>&lt;&amp;&gt;&quot;&apos;</a>")
        assert doc.root_element.string_value() == "<&>\"'"

    def test_numeric_character_references(self):
        doc = parse_document("<a>&#65;&#x42;</a>")
        assert doc.root_element.string_value() == "AB"

    def test_doctype_skipped(self):
        doc = parse_document("<!DOCTYPE films><films/>")
        assert doc.root_element.name == "films"

    def test_document_uri(self):
        doc = parse_document("<a/>", uri="file:///x.xml")
        assert doc.uri == "file:///x.xml"

    def test_fragment(self):
        element = parse_fragment("<film><name>The Rock</name></film>")
        assert isinstance(element, ElementNode)
        assert element.parent is None
        assert element.string_value() == "The Rock"


class TestNamespaces:
    def test_default_namespace(self):
        doc = parse_document('<a xmlns="urn:x"><b/></a>')
        assert doc.root_element.ns_uri == "urn:x"
        assert doc.root_element.children[0].ns_uri == "urn:x"

    def test_prefixed_namespace(self):
        doc = parse_document('<p:a xmlns:p="urn:p"><p:b/></p:a>')
        root = doc.root_element
        assert root.ns_uri == "urn:p"
        assert root.local_name == "a"
        assert root.children[0].ns_uri == "urn:p"

    def test_attribute_namespace_no_default(self):
        doc = parse_document('<a xmlns="urn:x" y="1"/>')
        # Unprefixed attributes never take the default namespace.
        assert doc.root_element.get_attribute("y").ns_uri is None

    def test_prefixed_attribute(self):
        doc = parse_document('<a xmlns:p="urn:p" p:y="1"/>')
        attr = doc.root_element.get_attribute("p:y")
        assert attr.ns_uri == "urn:p"
        assert attr.local_name == "y"

    def test_undeclared_prefix_rejected(self):
        with pytest.raises(XMLSyntaxError):
            parse_document("<p:a/>")

    def test_nested_scope_override(self):
        doc = parse_document('<a xmlns="urn:1"><b xmlns="urn:2"/></a>')
        assert doc.root_element.children[0].ns_uri == "urn:2"


class TestWellFormednessErrors:
    @pytest.mark.parametrize("bad", [
        "<a>",
        "<a></b>",
        "<a",
        "<a x=1/>",
        '<a x="1" x="2"/>',
        "<a>&unknown;</a>",
        "<a/><b/>",
        "text only",
        "<a><!-- -- --></a>",
    ])
    def test_rejects(self, bad):
        with pytest.raises(XMLSyntaxError):
            parse_document(bad)

    def test_error_has_location(self):
        with pytest.raises(XMLSyntaxError) as info:
            parse_document("<a>\n<b></c>\n</a>")
        assert info.value.line == 2


class TestDocumentOrder:
    def test_order_keys_ascend(self):
        doc = parse_document("<a><b/><c><d/></c></a>")
        nodes = list(doc.descendants(include_self=True))
        keys = [node.order_key for node in nodes]
        assert keys == sorted(keys)

    def test_cross_document_order_stable(self):
        first = parse_document("<a/>")
        second = parse_document("<b/>")
        assert first.order_key[0] != second.order_key[0]


class TestRoundTrip:
    @pytest.mark.parametrize("xml", [
        "<a/>",
        "<a>text</a>",
        '<a x="1"><b>y</b></a>',
        "<a>&lt;escaped&gt;</a>",
        '<films><film><name>The Rock</name><actor>Sean Connery</actor></film></films>',
    ])
    def test_parse_serialize_parse(self, xml):
        doc1 = parse_document(xml)
        text = serialize(doc1)
        doc2 = parse_document(text)
        from repro.xdm.sequence import deep_equal
        assert deep_equal([doc1], [doc2])

    def test_namespace_round_trip(self):
        xml = '<p:a xmlns:p="urn:p"><p:b/></p:a>'
        text = serialize(parse_document(xml))
        reparsed = parse_document(text)
        assert reparsed.root_element.ns_uri == "urn:p"
