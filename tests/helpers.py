"""Shared test helpers."""

from __future__ import annotations

from typing import Optional

from repro.xdm.atomic import AtomicValue
from repro.xdm.nodes import Node
from repro.xml import parse_document
from repro.xquery.evaluator import evaluate_query
from repro.xquery.modules import ModuleRegistry


def run(source: str, docs: Optional[dict[str, str]] = None,
        modules: Optional[dict[str, str]] = None, **kwargs):
    """Evaluate an XQuery; docs maps uri->xml text, modules location->source."""
    registry = ModuleRegistry()
    for location, module_source in (modules or {}).items():
        registry.register_source(module_source, location=location)
    parsed = {uri: parse_document(text, uri=uri) for uri, text in (docs or {}).items()}
    resolver = parsed.get if docs else None
    return evaluate_query(source, registry=registry, doc_resolver=resolver, **kwargs)


def values(sequence) -> list:
    """Python values of an all-atomic result sequence."""
    result = []
    for item in sequence:
        assert isinstance(item, AtomicValue), f"expected atomic, got {item!r}"
        result.append(item.value)
    return result


def strings(sequence) -> list[str]:
    return [item.string_value() for item in sequence]


def xml(sequence) -> str:
    """Serialize a result sequence to a single XML string."""
    from repro.xml.serializer import serialize_sequence
    return serialize_sequence(sequence)


def single_node(sequence) -> Node:
    assert len(sequence) == 1 and isinstance(sequence[0], Node), sequence
    return sequence[0]
