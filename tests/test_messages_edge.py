"""Edge-case tests for the SOAP message layer and peer document routing."""

import pytest

from repro.errors import DynamicError, XRPCFault
from repro.net import SimulatedNetwork
from repro.rpc import XRPCPeer
from repro.soap import (
    QueryID,
    XRPCRequest,
    XRPCResponse,
    build_request,
    build_response,
    parse_message,
    parse_request,
    parse_response,
)
from repro.xdm import integer, string
from tests.helpers import values


class TestMessageEdgeCases:
    def test_request_without_calls_rejected_on_parse(self):
        text = build_request(_one_call_request()).replace(
            "<xrpc:call>", "<xrpc:dropped>").replace(
            "</xrpc:call>", "</xrpc:dropped>")
        with pytest.raises(XRPCFault):
            parse_request(text)

    def test_missing_module_attribute(self):
        text = build_request(_one_call_request()).replace(
            ' module="films"', "")
        with pytest.raises(XRPCFault):
            parse_request(text)

    def test_parse_request_rejects_response(self):
        response = build_response(XRPCResponse(module="m", method="f"))
        with pytest.raises(XRPCFault):
            parse_request(response)

    def test_parse_response_rejects_request(self):
        with pytest.raises(XRPCFault):
            parse_response(build_request(_one_call_request()))

    def test_unicode_content_round_trip(self):
        request = XRPCRequest(module="m", method="f", arity=1)
        request.add_call([[string("héllo – ✓ 日本語")]])
        parsed = parse_request(build_request(request))
        assert parsed.calls[0][0][0].value == "héllo – ✓ 日本語"

    def test_whitespace_only_string_preserved(self):
        request = XRPCRequest(module="m", method="f", arity=1)
        request.add_call([[string("  ")]])
        parsed = parse_request(build_request(request))
        assert parsed.calls[0][0][0].value == "  "

    def test_queryid_key_identity(self):
        first = QueryID("h", 1.5, 60)
        second = QueryID("h", 1.5, 90)  # timeout not part of identity
        assert first.key == second.key

    def test_large_bulk_request(self):
        request = XRPCRequest(module="m", method="f", arity=1)
        for index in range(500):
            request.add_call([[integer(index)]])
        parsed = parse_request(build_request(request))
        assert len(parsed.calls) == 500
        assert parsed.calls[499][0] == [integer(499)]

    def test_bytes_input_accepted(self):
        text = build_request(_one_call_request())
        parsed = parse_message(text.encode("utf-8"))
        assert isinstance(parsed, XRPCRequest)


def _one_call_request() -> XRPCRequest:
    request = XRPCRequest(module="films", method="filmsByActor", arity=1,
                          location="f.xq")
    request.add_call([[string("Sean Connery")]])
    return request


class TestPeerDocumentRouting:
    def test_local_xrpc_uri_resolves_locally(self):
        network = SimulatedNetwork()
        peer = XRPCPeer("self.example.org", network)
        peer.store.register("d.xml", "<d>local</d>")
        result = peer.execute_query("string(doc('xrpc://self.example.org/d.xml'))")
        assert values(result.sequence) == ["local"]

    def test_plain_uri_resolves_in_store(self):
        peer = XRPCPeer("a", SimulatedNetwork())
        peer.store.register("d.xml", "<d/>")
        result = peer.execute_query("count(doc('d.xml'))")
        assert values(result.sequence) == [1]

    def test_missing_local_doc_errors(self):
        peer = XRPCPeer("a", SimulatedNetwork())
        with pytest.raises(DynamicError):
            peer.execute_query("doc('ghost.xml')")

    def test_nested_path_in_remote_uri(self):
        network = SimulatedNetwork()
        a = XRPCPeer("a", network)
        b = XRPCPeer("b", network)
        b.store.register("data/deep/file.xml", "<x>deep</x>")
        result = a.execute_query("string(doc('xrpc://b/data/deep/file.xml'))")
        assert values(result.sequence) == ["deep"]

    def test_fn_put_stores_into_peer_store(self):
        peer = XRPCPeer("a", SimulatedNetwork())
        peer.store.register("src.xml", "<src>payload</src>")
        peer.execute_query("put(doc('src.xml'), 'dst.xml')")
        assert peer.store.get("dst.xml").root_element.string_value() == \
            "payload"

    def test_remote_fetch_is_by_value(self):
        network = SimulatedNetwork()
        a = XRPCPeer("a", network)
        b = XRPCPeer("b", network)
        b.store.register("d.xml", "<d><leaf/></d>")
        result = a.execute_query("doc('xrpc://b/d.xml')//leaf")
        [leaf] = result.sequence
        # The fetched tree is a fresh copy, not b's stored instance.
        b_leaf = b.store.get("d.xml").root_element.children[0]
        assert leaf is not b_leaf
