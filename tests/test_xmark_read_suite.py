"""XMark read-suite coverage: 100% lifted, interpreter-identical.

The acceptance gate for the closed lifted core: every query in
:data:`repro.workloads.xmark.READ_SUITE` must execute with ``plan ==
"lifted"`` and no fallback, and return exactly the interpreter's
sequence — across accelerator on/off and gapped/dense pre-plane
encodings.  A query that starts recording a fallback fails here, so a
regression in any window kernel is visible per axis.
"""

import pytest

from repro.engine.base import Engine
from repro.workloads.xmark import (
    READ_SUITE,
    XMarkConfig,
    generate_auctions,
    generate_persons,
)
from repro.xdm.nodes import Node
from repro.xml import parse_document
from repro.xml.serializer import serialize_sequence
from repro.xquery.context import ExecutionContext
from repro.xquery.evaluator import evaluate_query

CONFIG = XMarkConfig(persons=10, closed_auctions=20, open_auctions=5,
                     matches=3)


@pytest.fixture(scope="module", params=[None, 1], ids=["gapped", "dense"])
def resolver(request):
    stride = request.param
    documents = {
        "persons.xml": parse_document(generate_persons(CONFIG),
                                      uri="persons.xml", stride=stride),
        "auctions.xml": parse_document(generate_auctions(CONFIG),
                                       uri="auctions.xml", stride=stride),
    }
    return documents.get


@pytest.mark.parametrize("accelerator", [True, False],
                         ids=["accel", "naive"])
@pytest.mark.parametrize("name", sorted(READ_SUITE))
def test_read_suite_runs_lifted(resolver, name, accelerator):
    query = READ_SUITE[name]
    engine = Engine(accelerator=accelerator)
    result, explain = engine.execute(query, ExecutionContext(
        doc_resolver=resolver, accelerator=accelerator))
    assert explain.plan == "lifted", (name, explain.fallback_reason)
    assert explain.fallback_reason is None
    assert explain.fallback_code is None
    assert engine.fallback_stats() == {}
    interpreted = evaluate_query(query, doc_resolver=resolver,
                                 accelerator=accelerator)
    assert len(result) == len(interpreted)
    for left, right in zip(result, interpreted):
        if isinstance(left, Node) or isinstance(right, Node):
            assert left is right  # node identity, not just equal text
    assert serialize_sequence(result) == serialize_sequence(interpreted)
    assert result, f"read-suite query unexpectedly empty: {name}"
