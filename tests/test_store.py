"""Unit tests for the versioned document store and snapshots."""

import pytest

from repro.errors import DynamicError, TransactionError
from repro.rpc.store import DocumentStore
from repro.xml import parse_document


class TestDocumentStore:
    def test_register_and_get(self):
        store = DocumentStore()
        store.register("a.xml", "<a/>")
        assert store.get("a.xml").root_element.name == "a"

    def test_register_parsed_document(self):
        store = DocumentStore()
        doc = parse_document("<b/>")
        store.register("b.xml", doc)
        assert store.get("b.xml") is doc
        assert doc.uri == "b.xml"

    def test_missing_document(self):
        with pytest.raises(DynamicError):
            DocumentStore().get("nope.xml")

    def test_contains(self):
        store = DocumentStore()
        store.register("a.xml", "<a/>")
        assert store.contains("a.xml")
        assert not store.contains("b.xml")

    def test_version_increments_on_register(self):
        store = DocumentStore()
        assert store.version("a.xml") == 0
        store.register("a.xml", "<a/>")
        assert store.version("a.xml") == 1
        store.register("a.xml", "<a2/>")
        assert store.version("a.xml") == 2

    def test_bump_version(self):
        store = DocumentStore()
        store.register("a.xml", "<a/>")
        store.bump_version("a.xml")
        assert store.version("a.xml") == 2

    def test_uris(self):
        store = DocumentStore()
        store.register("a.xml", "<a/>")
        store.register("b.xml", "<b/>")
        assert sorted(store.uris()) == ["a.xml", "b.xml"]


class TestSnapshot:
    def test_snapshot_is_stable_view(self):
        store = DocumentStore()
        store.register("a.xml", "<a>old</a>")
        snapshot = store.snapshot()
        old = snapshot.get("a.xml")
        store.register("a.xml", "<a>new</a>")
        # The snapshot still sees the old content.
        assert snapshot.get("a.xml") is old
        assert old.root_element.string_value() == "old"
        assert store.get("a.xml").root_element.string_value() == "new"

    def test_snapshot_copies_have_fresh_identity(self):
        store = DocumentStore()
        store.register("a.xml", "<a/>")
        snapshot = store.snapshot()
        assert snapshot.get("a.xml") is not store.get("a.xml")

    def test_lazy_copy_records_base_version(self):
        store = DocumentStore()
        store.register("a.xml", "<a/>")
        snapshot = store.snapshot()
        assert snapshot.base_version("a.xml") is None  # not accessed yet
        snapshot.get("a.xml")
        assert snapshot.base_version("a.xml") == 1

    def test_conflict_detection(self):
        store = DocumentStore()
        store.register("a.xml", "<a/>")
        snapshot = store.snapshot()
        snapshot.get("a.xml")
        assert snapshot.has_conflicts(["a.xml"]) == []
        store.register("a.xml", "<a2/>")  # competing commit
        assert snapshot.has_conflicts(["a.xml"]) == ["a.xml"]

    def test_commit_into_store_swaps_version(self):
        store = DocumentStore()
        store.register("a.xml", "<a>v1</a>")
        snapshot = store.snapshot()
        copy = snapshot.get("a.xml")
        copy.root_element.children[0].content = "v2"
        snapshot.commit_into_store(["a.xml"])
        assert store.get("a.xml").root_element.string_value() == "v2"
        assert store.version("a.xml") == 2

    def test_commit_conflict_raises(self):
        store = DocumentStore()
        store.register("a.xml", "<a/>")
        snapshot = store.snapshot()
        snapshot.get("a.xml")
        store.register("a.xml", "<other/>")
        with pytest.raises(TransactionError):
            snapshot.commit_into_store(["a.xml"])

    def test_touched_uris(self):
        store = DocumentStore()
        store.register("a.xml", "<a/>")
        store.register("b.xml", "<b/>")
        snapshot = store.snapshot()
        snapshot.get("a.xml")
        assert snapshot.touched_uris() == ["a.xml"]
