"""Tests for the Bulk RPC batching executor's hard cases.

The two-phase executor (record -> bulk ship -> replay) must stay
correct when calls depend on other calls' results, when phase 1 fails,
and when updating calls are in play — these are the paths where naive
batching would break semantics.
"""

import pytest

from repro.net import SimulatedNetwork
from repro.rpc import XRPCPeer
from tests.helpers import values

CHAIN_MODULE = """
module namespace c = "urn:chain";
declare function c:step1() as xs:string { "alpha" };
declare function c:step2($token as xs:string) as xs:string
{ concat($token, "-beta") };
declare function c:whoami() as xs:string
{ string(doc("self.xml")/self) };
declare function c:tag($v as xs:string) as xs:string
{ concat("tag-", $v) };
"""


@pytest.fixture
def site():
    network = SimulatedNetwork()
    origin = XRPCPeer("origin", network)
    served = XRPCPeer("served", network)
    for peer in (origin, served):
        peer.registry.register_source(CHAIN_MODULE, location="c.xq")
    served.store.register("self.xml", "<self>served</self>")
    return network, origin, served


class TestDependentCalls:
    def test_second_call_depends_on_first(self, site):
        """step2's argument is step1's result: phase 1 records step2 with
        a wrong (placeholder-derived) argument; phase 3 must detect the
        mismatch and ship it directly."""
        network, origin, served = site
        query = """
        import module namespace c = "urn:chain" at "c.xq";
        let $token := execute at {"xrpc://served"} { c:step1() }
        return execute at {"xrpc://served"} { c:step2($token) }
        """
        result = origin.execute_query(query)
        assert values(result.sequence) == ["alpha-beta"]

    def test_dependent_chain_in_loop(self, site):
        network, origin, served = site
        query = """
        import module namespace c = "urn:chain" at "c.xq";
        for $i in (1, 2)
        let $token := execute at {"xrpc://served"} { c:step1() }
        return execute at {"xrpc://served"} { c:step2($token) }
        """
        result = origin.execute_query(query)
        assert values(result.sequence) == ["alpha-beta", "alpha-beta"]

    def test_result_used_in_control_flow(self, site):
        network, origin, served = site
        query = """
        import module namespace c = "urn:chain" at "c.xq";
        if (execute at {"xrpc://served"} { c:step1() } = "alpha")
        then execute at {"xrpc://served"} { c:step2("yes") }
        else "never"
        """
        result = origin.execute_query(query)
        assert values(result.sequence) == ["yes-beta"]

    def test_phase1_error_falls_back_to_direct(self, site):
        """exactly-one() fails on phase 1's empty placeholder; the
        executor must fall back to direct execution and still succeed."""
        network, origin, served = site
        query = """
        import module namespace c = "urn:chain" at "c.xq";
        exactly-one(execute at {"xrpc://served"} { c:step1() })
        """
        result = origin.execute_query(query)
        assert values(result.sequence) == ["alpha"]


class TestBulkWithUpdates:
    UPDATE_MODULE = """
    module namespace u = "urn:u";
    declare updating function u:append($v as xs:string)
    { insert node <e>{$v}</e> into doc("log.xml")/log };
    declare function u:size() as xs:integer
    { count(doc("log.xml")/log/e) };
    """

    def test_bulk_updating_calls_apply_once(self):
        """Phase 1 records without sending; phase 3 replays without
        re-sending — each update must land exactly once."""
        network = SimulatedNetwork()
        origin = XRPCPeer("origin", network)
        served = XRPCPeer("served", network)
        for peer in (origin, served):
            peer.registry.register_source(self.UPDATE_MODULE, location="u.xq")
        served.store.register("log.xml", "<log/>")
        query = """
        import module namespace u = "urn:u" at "u.xq";
        for $v in ("a", "b", "c")
        return execute at {"xrpc://served"} { u:append($v) }
        """
        result = origin.execute_query(query)
        assert result.messages_sent == 1  # one bulk updating message
        entries = served.store.get("log.xml").root_element.children
        assert [e.string_value() for e in entries] == ["a", "b", "c"]

    def test_read_after_update_sees_rfu_semantics(self):
        """Without isolation (rule R_Fu) updates apply per-request, so a
        later read in the same query observes them."""
        network = SimulatedNetwork()
        origin = XRPCPeer("origin", network)
        served = XRPCPeer("served", network)
        for peer in (origin, served):
            peer.registry.register_source(self.UPDATE_MODULE, location="u.xq")
        served.store.register("log.xml", "<log/>")
        query = """
        import module namespace u = "urn:u" at "u.xq";
        ( execute at {"xrpc://served"} { u:append("x") },
          execute at {"xrpc://served"} { u:size() } )
        """
        result = origin.execute_query(query, force_one_at_a_time=True)
        assert values(result.sequence) == [1]


class TestGroupingBoundaries:
    def test_different_functions_different_messages(self, site):
        network, origin, served = site
        query = """
        import module namespace c = "urn:chain" at "c.xq";
        ( execute at {"xrpc://served"} { c:step1() },
          execute at {"xrpc://served"} { c:whoami() } )
        """
        result = origin.execute_query(query)
        assert values(result.sequence) == ["alpha", "served"]
        # Bulk groups by (destination, function): two groups here.
        assert result.messages_sent == 2

    def test_same_function_same_args_multiple_iterations(self, site):
        network, origin, served = site
        query = """
        import module namespace c = "urn:chain" at "c.xq";
        for $i in (1 to 4)
        return execute at {"xrpc://served"} { c:step1() }
        """
        result = origin.execute_query(query)
        assert values(result.sequence) == ["alpha"] * 4
        assert result.messages_sent == 1
        assert result.calls_shipped == 4

    def test_duplicate_argument_lists_replay_in_order(self, site):
        """Calls with identical arguments share a replayer fingerprint;
        each phase-3 occurrence must consume exactly one bulk result."""
        network, origin, served = site
        query = """
        import module namespace c = "urn:chain" at "c.xq";
        for $v in ("a", "a", "b", "a")
        return execute at {"xrpc://served"} { c:tag($v) }
        """
        result = origin.execute_query(query)
        assert values(result.sequence) == \
            ["tag-a", "tag-a", "tag-b", "tag-a"]
        # All four calls (duplicates included) ride one bulk message.
        assert result.messages_sent == 1
        assert result.calls_shipped == 4

    def test_duplicate_args_mixed_with_dependent_call(self, site):
        """Duplicates answer from the bulk results while the dependent
        call (placeholder-derived argument) falls back to direct send."""
        network, origin, served = site
        query = """
        import module namespace c = "urn:chain" at "c.xq";
        let $token := execute at {"xrpc://served"} { c:step1() }
        return (
          execute at {"xrpc://served"} { c:tag("x") },
          execute at {"xrpc://served"} { c:tag("x") },
          execute at {"xrpc://served"} { c:step2($token) }
        )
        """
        result = origin.execute_query(query)
        assert values(result.sequence) == ["tag-x", "tag-x", "alpha-beta"]
        # Two bulk groups (step1; tag+step2 split by function => three
        # groups total: step1, tag, step2) plus the direct re-send of the
        # dependent step2 call.
        assert result.calls_shipped >= 4

    def test_empty_loop_sends_nothing(self, site):
        network, origin, served = site
        network.reset_stats()
        query = """
        import module namespace c = "urn:chain" at "c.xq";
        for $i in () return execute at {"xrpc://served"} { c:step1() }
        """
        result = origin.execute_query(query)
        assert result.sequence == []
        assert network.messages_sent == 0
